#include "ingest/live_table.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "data/json.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "store/store_writer.h"
#include "util/csv.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace urbane::ingest {

namespace {

constexpr char kManifestFile[] = "MANIFEST.json";
constexpr char kManifestFormat[] = "urbane.ingest.manifest.v1";

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) {
    return Status::OK();
  }
  if (errno == EEXIST) {
    struct stat st {};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IoError("ingest path exists but is not a directory: " +
                           path);
  }
  return Status::IoError("cannot create ingest directory: " + path + ": " +
                         std::strerror(errno));
}

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// Deep copy of a (possibly view-mode) batch for the retained append log.
std::shared_ptr<const data::PointTable> CopyOwned(
    const data::PointTable& batch) {
  auto copy = std::make_shared<data::PointTable>(batch.schema());
  copy->Reserve(batch.size());
  std::vector<float> attrs(batch.schema().attribute_count(), 0.0f);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t c = 0; c < attrs.size(); ++c) {
      attrs[c] = batch.attribute(i, c);
    }
    (void)copy->AppendRow(batch.x(i), batch.y(i), batch.t(i), attrs);
  }
  return copy;
}

std::pair<std::int64_t, std::int64_t> BatchTimeExtent(
    const data::PointTable& batch) {
  std::int64_t lo = batch.t(0);
  std::int64_t hi = lo;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    lo = std::min(lo, batch.t(i));
    hi = std::max(hi, batch.t(i));
  }
  return {lo, hi};
}

/// Opens a flushed UST1 run file as an immutable store-backed run.
StatusOr<std::shared_ptr<const LiveRun>> OpenStoreRun(
    std::uint64_t generation, const std::string& path, std::uint64_t wal_lo,
    std::uint64_t wal_hi) {
  URBANE_ASSIGN_OR_RETURN(store::StoreReader opened,
                          store::StoreReader::Open(path));
  auto run = std::make_shared<LiveRun>();
  run->generation = generation;
  run->path = path;
  run->wal_lo = wal_lo;
  run->wal_hi = wal_hi;
  run->reader = std::make_unique<store::StoreReader>(std::move(opened));
  run->rows = run->reader->row_count();
  run->bounds = run->reader->zone_maps().Bounds();
  run->time_range = run->reader->zone_maps().TimeRange();
  auto mapped = run->reader->MappedTable();
  if (mapped.ok()) {
    run->table = std::move(mapped).value();
  } else {
    // pread-only file system: fall back to an owning copy.
    URBANE_ASSIGN_OR_RETURN(run->table, run->reader->Materialize());
    run->table.SetCachedExtents(run->bounds, run->time_range);
  }
  return std::shared_ptr<const LiveRun>(std::move(run));
}

/// Seals `mem` (shared with the previous hot run) into a memory-backed run.
StatusOr<std::shared_ptr<const LiveRun>> MakeMemRun(
    std::uint64_t generation, std::shared_ptr<Memtable> mem,
    std::uint64_t wal_lo, std::uint64_t wal_hi) {
  auto run = std::make_shared<LiveRun>();
  run->generation = generation;
  run->wal_lo = wal_lo;
  run->wal_hi = wal_hi;
  run->rows = mem->size();
  run->bounds = mem->bounds();
  run->time_range = mem->time_range();
  URBANE_ASSIGN_OR_RETURN(run->table, mem->View(mem->size()));
  run->table.SetCachedExtents(run->bounds, run->time_range);
  run->mem = std::move(mem);
  return std::shared_ptr<const LiveRun>(std::move(run));
}

}  // namespace

LiveTable::LiveTable(std::string directory, data::Schema schema,
                     const data::PointTable* base,
                     const core::ZoneMapIndex* base_zone_maps,
                     IngestOptions options)
    : directory_(std::move(directory)),
      schema_(std::move(schema)),
      base_(base),
      base_zone_maps_(base_zone_maps),
      options_(options),
      base_rows_(base == nullptr ? 0 : base->size()) {}

LiveTable::~LiveTable() {
  if (background_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    flush_cv_.notify_all();
    background_.join();
  }
  // Make the active segment durable, but deliberately do NOT flush runs:
  // reopening must reach the same state through manifest + WAL replay (the
  // recovery tests rely on it).
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_.open()) {
    (void)wal_.Close();
  }
}

std::string LiveTable::WalPath(std::uint64_t generation) const {
  return directory_ + "/" +
         StringPrintf("wal-%06llu.log",
                      static_cast<unsigned long long>(generation));
}

std::string LiveTable::RunPath(std::uint64_t generation) const {
  return directory_ + "/" +
         StringPrintf("run-%06llu.ust1",
                      static_cast<unsigned long long>(generation));
}

StatusOr<std::unique_ptr<LiveTable>> LiveTable::Open(
    const std::string& directory, data::Schema schema,
    const data::PointTable* base, const core::ZoneMapIndex* base_zone_maps,
    const IngestOptions& options) {
  if (base != nullptr &&
      base->schema().attribute_count() != schema.attribute_count()) {
    return Status::InvalidArgument(
        "base table attribute arity does not match the ingest schema");
  }
  URBANE_RETURN_IF_ERROR(EnsureDirectory(directory));
  std::unique_ptr<LiveTable> table(new LiveTable(
      directory, std::move(schema), base, base_zone_maps, options));

  // 1. The manifest names the committed store runs and the WAL floor.
  std::uint64_t max_run_generation = 0;
  const std::string manifest_path = directory + "/" + kManifestFile;
  if (FileExists(manifest_path)) {
    URBANE_ASSIGN_OR_RETURN(const std::string content,
                            ReadFileToString(manifest_path));
    URBANE_ASSIGN_OR_RETURN(const data::JsonValue manifest,
                            data::ParseJson(content));
    const data::JsonValue* format = manifest.Find("format");
    if (format == nullptr || !format->is_string() ||
        format->AsString() != kManifestFormat) {
      return Status::IoError("unrecognized ingest manifest format: " +
                             manifest_path);
    }
    const data::JsonValue* floor = manifest.Find("wal_floor");
    if (floor == nullptr || !floor->is_number()) {
      return Status::IoError("ingest manifest missing wal_floor: " +
                             manifest_path);
    }
    table->wal_floor_ = static_cast<std::uint64_t>(floor->AsNumber());
    const data::JsonValue* runs = manifest.Find("runs");
    if (runs != nullptr && runs->is_array()) {
      for (const data::JsonValue& entry : runs->AsArray()) {
        const data::JsonValue* file = entry.Find("file");
        const data::JsonValue* generation = entry.Find("generation");
        const data::JsonValue* wal_lo = entry.Find("wal_lo");
        const data::JsonValue* wal_hi = entry.Find("wal_hi");
        if (file == nullptr || !file->is_string() || generation == nullptr ||
            !generation->is_number()) {
          return Status::IoError("malformed run entry in ingest manifest: " +
                                 manifest_path);
        }
        const auto gen = static_cast<std::uint64_t>(generation->AsNumber());
        URBANE_ASSIGN_OR_RETURN(
            std::shared_ptr<const LiveRun> run,
            OpenStoreRun(
                gen, directory + "/" + file->AsString(),
                wal_lo == nullptr
                    ? 0
                    : static_cast<std::uint64_t>(wal_lo->AsNumber()),
                wal_hi == nullptr
                    ? 0
                    : static_cast<std::uint64_t>(wal_hi->AsNumber())));
        table->runs_.push_back(std::move(run));
        max_run_generation = std::max(max_run_generation, gen);
      }
    }
  }
  table->next_run_generation_ = max_run_generation + 1;

  // 2. Scan the directory: run files the manifest does not name are flush
  // crash artifacts (their rows are still WAL-covered) — delete them; WAL
  // segments below the floor are fully flushed — delete those too.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  {
    DIR* dir = ::opendir(directory.c_str());
    if (dir == nullptr) {
      return Status::IoError("cannot list ingest directory: " + directory);
    }
    std::vector<std::string> orphans;
    for (struct dirent* entry = ::readdir(dir); entry != nullptr;
         entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      unsigned long long generation = 0;
      if (std::sscanf(name.c_str(), "run-%6llu.ust1", &generation) == 1 &&
          name.size() == 15) {
        bool listed = false;
        for (const auto& run : table->runs_) {
          listed = listed || run->path == directory + "/" + name;
        }
        if (!listed) {
          orphans.push_back(directory + "/" + name);
        }
      } else if (std::sscanf(name.c_str(), "wal-%6llu.log", &generation) ==
                     1 &&
                 name.size() == 14) {
        if (generation < table->wal_floor_) {
          orphans.push_back(directory + "/" + name);
        } else {
          segments.emplace_back(generation, directory + "/" + name);
        }
      }
    }
    ::closedir(dir);
    for (const std::string& orphan : orphans) {
      ::unlink(orphan.c_str());
    }
  }
  std::sort(segments.begin(), segments.end());

  // 3. Replay the live WAL segments (seal order, arrival order within each)
  // into a fresh memtable — the pre-crash hot + sealed rows.
  std::uint64_t replayed_rows = 0;
  std::vector<WalReplayResult> replays;
  replays.reserve(segments.size());
  std::uint64_t max_wal_generation = table->wal_floor_ - 1;
  for (const auto& [generation, path] : segments) {
    URBANE_ASSIGN_OR_RETURN(
        WalReplayResult replay,
        ReplayWal(path, table->schema_, /*truncate_invalid_tail=*/true));
    replayed_rows += replay.rows.size();
    replays.push_back(std::move(replay));
    max_wal_generation = std::max(max_wal_generation, generation);
  }
  table->hot_ = std::make_shared<Memtable>(
      table->schema_,
      std::max<std::size_t>(options.memtable_rows, replayed_rows));
  for (const WalReplayResult& replay : replays) {
    if (!replay.rows.empty()) {
      URBANE_RETURN_IF_ERROR(table->hot_->Append(replay.rows));
    }
  }
  table->counters_.replayed_rows = replayed_rows;
  table->hot_wal_lo_ = table->wal_floor_;
  table->wal_generation_ = max_wal_generation + 1;

  // 4. Open a fresh segment for new appends.
  URBANE_ASSIGN_OR_RETURN(
      table->wal_, WalWriter::Create(table->WalPath(table->wal_generation_),
                                     table->schema_.attribute_count()));
  table->wal_record_seq_ = 0;

  table->watermark_ = table->base_rows_ + table->hot_->size();
  for (const auto& run : table->runs_) {
    table->watermark_ += run->rows;
  }

  if (options.auto_flush_rows > 0) {
    table->background_ = std::thread([raw = table.get()] {
      raw->BackgroundLoop();
    });
  }
  return table;
}

StatusOr<std::uint64_t> LiveTable::Append(const data::PointTable& batch) {
  if (batch.schema().attribute_count() != schema_.attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "ingest batch has %zu attributes, live table expects %zu",
        batch.schema().attribute_count(), schema_.attribute_count()));
  }
  URBANE_RETURN_IF_ERROR(batch.Validate());
  std::unique_lock<std::mutex> lock(mu_);
  if (batch.empty()) {
    return watermark_;
  }
  if (batch.size() > options_.memtable_rows) {
    return Status::InvalidArgument(StringPrintf(
        "ingest batch of %zu rows exceeds the memtable capacity of %zu; "
        "split the batch",
        batch.size(), options_.memtable_rows));
  }
  if (!hot_->Fits(batch.size())) {
    std::size_t sealed = 0;
    for (const auto& run : runs_) {
      sealed += run->store_backed() ? 0 : 1;
    }
    if (sealed >= options_.max_sealed_runs) {
      ++counters_.rejected;
      if (obs::MetricsEnabled()) {
        obs::MetricsRegistry::Global().GetCounter("ingest.rejected").Add(1);
      }
      return Status::ResourceExhausted(StringPrintf(
          "ingest write path saturated: %zu sealed runs awaiting flush "
          "(max %zu); retry after a flush",
          sealed, options_.max_sealed_runs));
    }
    URBANE_RETURN_IF_ERROR(SealLocked());
  }

  // WAL before publication: the batch is durable (or at least framed for
  // the page cache) before any reader can see it.
  ++wal_record_seq_;
  URBANE_RETURN_IF_ERROR(wal_.Append(batch, wal_record_seq_));
  if (options_.sync_wal_each_append) {
    URBANE_RETURN_IF_ERROR(wal_.Sync());
  }
  URBANE_RETURN_IF_ERROR(hot_->Append(batch));
  watermark_ += batch.size();
  ++hot_sequence_;
  ++counters_.appends;
  counters_.rows_appended += batch.size();

  const auto [t_lo, t_hi] = BatchTimeExtent(batch);
  AppendLogEntry entry;
  entry.seq = ++append_seq_;
  entry.t_begin = t_lo;
  entry.t_end = t_hi + 1;
  entry.rows = CopyOwned(batch);
  LogLocked(std::move(entry));

  const std::uint64_t watermark = watermark_;
  const bool wake_flusher =
      options_.auto_flush_rows > 0 && hot_->size() >= options_.auto_flush_rows;
  lock.unlock();

  if (wake_flusher) {
    flush_cv_.notify_all();
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("ingest.appends").Add(1);
    registry.GetCounter("ingest.rows_appended").Add(batch.size());
  }
  if (obs::JournalEnabled()) {
    obs::Event event;
    event.kind = obs::EventKind::kIngestAppend;
    event.fingerprint = watermark;
    event.value = static_cast<double>(batch.size());
    obs::EmitEvent(event);
  }
  return watermark;
}

Status LiveTable::SealLocked() {
  if (hot_->empty()) {
    return Status::OK();
  }
  URBANE_RETURN_IF_ERROR(wal_.Close());
  URBANE_ASSIGN_OR_RETURN(
      std::shared_ptr<const LiveRun> run,
      MakeMemRun(next_run_generation_, hot_, hot_wal_lo_, wal_generation_));
  ++next_run_generation_;
  runs_.push_back(std::move(run));
  hot_ = std::make_shared<Memtable>(schema_, options_.memtable_rows);
  ++hot_generation_;
  ++wal_generation_;
  hot_wal_lo_ = wal_generation_;
  URBANE_ASSIGN_OR_RETURN(wal_,
                          WalWriter::Create(WalPath(wal_generation_),
                                            schema_.attribute_count()));
  wal_record_seq_ = 0;
  return Status::OK();
}

Status LiveTable::CommitManifest(
    const std::vector<std::shared_ptr<const LiveRun>>& runs,
    std::uint64_t wal_floor) {
  data::JsonValue::Array run_entries;
  for (const auto& run : runs) {
    if (!run->store_backed()) {
      continue;
    }
    data::JsonValue entry = data::JsonValue::Object{};
    const std::size_t slash = run->path.find_last_of('/');
    entry.Set("file", slash == std::string::npos
                          ? run->path
                          : run->path.substr(slash + 1));
    entry.Set("generation", static_cast<double>(run->generation));
    entry.Set("rows", static_cast<double>(run->rows));
    entry.Set("wal_lo", static_cast<double>(run->wal_lo));
    entry.Set("wal_hi", static_cast<double>(run->wal_hi));
    run_entries.push_back(std::move(entry));
  }
  data::JsonValue manifest = data::JsonValue::Object{};
  manifest.Set("format", std::string(kManifestFormat));
  manifest.Set("wal_floor", static_cast<double>(wal_floor));
  manifest.Set("runs", std::move(run_entries));
  const std::string content = manifest.Dump(2);

  URBANE_ASSIGN_OR_RETURN(
      AtomicFileWriter writer,
      AtomicFileWriter::Open(directory_ + "/" + kManifestFile));
  URBANE_RETURN_IF_ERROR(writer.Write(content.data(), content.size()));
  return writer.Commit();
}

StatusOr<bool> LiveTable::FlushOldestSealed() {
  // flush_mu_ is held by the caller; only SealLocked can mutate runs_
  // concurrently, and it only appends.
  std::shared_ptr<const LiveRun> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& run : runs_) {
      if (!run->store_backed()) {
        sealed = run;
        break;
      }
    }
  }
  if (sealed == nullptr) {
    return false;
  }

  // Write the UST1 run outside the stack mutex — queries keep executing
  // against the sealed memtable until the swap.
  const std::string path = RunPath(sealed->generation);
  store::StoreWriterOptions writer_options;
  writer_options.block_rows = options_.run_block_rows;
  URBANE_ASSIGN_OR_RETURN(
      store::StoreWriter writer,
      store::StoreWriter::Create(path, schema_, writer_options));
  URBANE_RETURN_IF_ERROR(writer.Append(sealed->table));
  URBANE_ASSIGN_OR_RETURN(const store::StoreWriterStats stats,
                          writer.Finish());
  if (stats.rows_written != sealed->rows) {
    return Status::Internal("flushed run row count mismatch");
  }
  URBANE_ASSIGN_OR_RETURN(
      std::shared_ptr<const LiveRun> store_run,
      OpenStoreRun(sealed->generation, path, sealed->wal_lo, sealed->wal_hi));

  std::vector<std::shared_ptr<const LiveRun>> runs_snapshot;
  std::uint64_t new_floor = 0;
  std::uint64_t old_floor = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool swapped = false;
    for (auto& run : runs_) {
      if (run == sealed) {
        run = store_run;
        swapped = true;
        break;
      }
    }
    if (!swapped) {
      return Status::Internal("sealed run vanished during flush");
    }
    // The floor is the lowest WAL generation still feeding an un-flushed
    // component (a remaining sealed run or the hot memtable).
    new_floor = hot_wal_lo_;
    for (const auto& run : runs_) {
      if (!run->store_backed()) {
        new_floor = std::min(new_floor, run->wal_lo);
      }
    }
    old_floor = wal_floor_;
    runs_snapshot = runs_;
    ++counters_.flushes;

    AppendLogEntry entry;
    entry.seq = ++append_seq_;
    entry.t_begin = store_run->time_range.first;
    entry.t_end = store_run->time_range.second + 1;
    // No rows: the row *set* is unchanged — but the Morton re-order changes
    // float summation order, so cached results over this interval must drop.
    LogLocked(std::move(entry));
  }

  URBANE_RETURN_IF_ERROR(CommitManifest(runs_snapshot, new_floor));
  for (std::uint64_t generation = old_floor; generation < new_floor;
       ++generation) {
    ::unlink(WalPath(generation).c_str());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    wal_floor_ = new_floor;
  }

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("ingest.flushes").Add(1);
    registry.GetCounter("ingest.rows_flushed").Add(store_run->rows);
  }
  if (obs::JournalEnabled()) {
    obs::Event event;
    event.kind = obs::EventKind::kIngestFlush;
    event.fingerprint = store_run->generation;
    event.value = static_cast<double>(store_run->rows);
    obs::EmitEvent(event);
  }
  return true;
}

Status LiveTable::Flush() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    URBANE_RETURN_IF_ERROR(SealLocked());
  }
  for (;;) {
    URBANE_ASSIGN_OR_RETURN(const bool flushed, FlushOldestSealed());
    if (!flushed) {
      return Status::OK();
    }
  }
}

Status LiveTable::Compact() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::vector<std::shared_ptr<const LiveRun>> prefix;
  std::uint64_t generation = 0;
  std::uint64_t wal_floor = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& run : runs_) {
      if (!run->store_backed()) {
        break;
      }
      prefix.push_back(run);
    }
    if (prefix.size() < 2) {
      return Status::OK();
    }
    generation = next_run_generation_++;
    wal_floor = wal_floor_;
  }

  const std::string path = RunPath(generation);
  store::StoreWriterOptions writer_options;
  writer_options.block_rows = options_.run_block_rows;
  URBANE_ASSIGN_OR_RETURN(
      store::StoreWriter writer,
      store::StoreWriter::Create(path, schema_, writer_options));
  for (const auto& run : prefix) {
    URBANE_RETURN_IF_ERROR(writer.Append(run->table));
  }
  URBANE_ASSIGN_OR_RETURN(const store::StoreWriterStats stats,
                          writer.Finish());
  (void)stats;
  URBANE_ASSIGN_OR_RETURN(
      std::shared_ptr<const LiveRun> merged,
      OpenStoreRun(generation, path, prefix.front()->wal_lo,
                   prefix.back()->wal_hi));

  std::vector<std::shared_ptr<const LiveRun>> runs_snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_.erase(runs_.begin(), runs_.begin() + prefix.size());
    runs_.insert(runs_.begin(), merged);
    runs_snapshot = runs_;
    ++counters_.compactions;

    AppendLogEntry entry;
    entry.seq = ++append_seq_;
    entry.t_begin = merged->time_range.first;
    entry.t_end = merged->time_range.second + 1;
    LogLocked(std::move(entry));
  }
  URBANE_RETURN_IF_ERROR(CommitManifest(runs_snapshot, wal_floor));
  for (const auto& run : prefix) {
    ::unlink(run->path.c_str());
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().GetCounter("ingest.compactions").Add(1);
  }
  return Status::OK();
}

LiveSnapshot LiveTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveSnapshot snapshot;
  snapshot.base = base_;
  snapshot.base_zone_maps = base_zone_maps_;
  snapshot.runs = runs_;
  snapshot.hot_owner = hot_;
  snapshot.hot_rows = hot_->size();
  auto view = hot_->View(hot_->size());
  snapshot.hot = std::move(view).value();  // rows == size() never fails
  snapshot.hot_generation = hot_generation_;
  snapshot.hot_sequence = hot_sequence_;
  snapshot.hot_bounds = hot_->bounds();
  snapshot.hot_time_range = hot_->time_range();
  snapshot.watermark = watermark_;
  snapshot.append_seq = append_seq_;
  return snapshot;
}

std::uint64_t LiveTable::watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watermark_;
}

IngestStats LiveTable::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats stats = counters_;
  stats.watermark = watermark_;
  stats.base_rows = base_rows_;
  stats.hot_rows = hot_->size();
  for (const auto& run : runs_) {
    if (run->store_backed()) {
      ++stats.store_runs;
    } else {
      ++stats.sealed_runs;
    }
  }
  stats.wal_bytes = wal_.open() ? wal_.bytes() : 0;
  return stats;
}

void LiveTable::LogLocked(AppendLogEntry entry) {
  append_log_bytes_ +=
      entry.rows == nullptr ? 0 : entry.rows->MemoryBytes();
  append_log_.push_back(std::move(entry));
  while (append_log_.size() > options_.append_log_entries ||
         (append_log_bytes_ > options_.append_log_bytes &&
          !append_log_.empty())) {
    const AppendLogEntry& oldest = append_log_.front();
    append_log_bytes_ -=
        oldest.rows == nullptr ? 0 : oldest.rows->MemoryBytes();
    append_log_floor_ = oldest.seq;
    append_log_.pop_front();
  }
}

std::vector<AppendLogEntry> LiveTable::EntriesSince(std::uint64_t since,
                                                    bool* overflowed) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (overflowed != nullptr) {
    *overflowed = since < append_log_floor_;
  }
  std::vector<AppendLogEntry> entries;
  for (const AppendLogEntry& entry : append_log_) {
    if (entry.seq > since) {
      entries.push_back(entry);
    }
  }
  return entries;
}

void LiveTable::BackgroundLoop() {
  for (;;) {
    bool seal_due = false;
    bool sealed_pending = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      flush_cv_.wait_for(lock, std::chrono::milliseconds(20), [&] {
        return stop_ || hot_->size() >= options_.auto_flush_rows;
      });
      if (stop_) {
        return;
      }
      seal_due = hot_->size() >= options_.auto_flush_rows;
      if (seal_due) {
        // Errors surface through the explicit Flush()/Append() paths; the
        // background loop just retries on its next tick.
        (void)SealLocked();
      }
      for (const auto& run : runs_) {
        sealed_pending = sealed_pending || !run->store_backed();
      }
    }
    if (sealed_pending) {
      std::lock_guard<std::mutex> flush_lock(flush_mu_);
      (void)FlushOldestSealed();
    }
  }
}

}  // namespace urbane::ingest
