#include "ingest/memtable.h"

#include <algorithm>

#include "util/string_util.h"

namespace urbane::ingest {

Memtable::Memtable(data::Schema schema, std::size_t capacity)
    : schema_(std::move(schema)), capacity_(std::max<std::size_t>(1, capacity)) {
  xs_.resize(capacity_);
  ys_.resize(capacity_);
  ts_.resize(capacity_);
  attrs_.resize(schema_.attribute_count());
  for (auto& column : attrs_) {
    column.resize(capacity_);
  }
}

Status Memtable::Append(const data::PointTable& batch) {
  if (batch.schema().attribute_count() != schema_.attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "batch has %zu attributes, memtable expects %zu",
        batch.schema().attribute_count(), schema_.attribute_count()));
  }
  if (!Fits(batch.size())) {
    return Status::ResourceExhausted(StringPrintf(
        "memtable full: %zu rows held, %zu appended, capacity %zu",
        size_, batch.size(), capacity_));
  }
  const std::size_t rows = batch.size();
  std::copy_n(batch.xs(), rows, xs_.begin() + size_);
  std::copy_n(batch.ys(), rows, ys_.begin() + size_);
  std::copy_n(batch.ts(), rows, ts_.begin() + size_);
  for (std::size_t c = 0; c < attrs_.size(); ++c) {
    std::copy_n(batch.attribute_data(c), rows, attrs_[c].begin() + size_);
  }
  for (std::size_t i = 0; i < rows; ++i) {
    bounds_.Extend({batch.x(i), batch.y(i)});
    const std::int64_t t = batch.t(i);
    if (size_ + i == 0) {
      min_t_ = max_t_ = t;
    } else {
      min_t_ = std::min(min_t_, t);
      max_t_ = std::max(max_t_, t);
    }
  }
  size_ += rows;
  return Status::OK();
}

StatusOr<data::PointTable> Memtable::View(std::size_t rows) const {
  if (rows > size_) {
    return Status::InvalidArgument("memtable view beyond published rows");
  }
  std::vector<const float*> attribute_columns;
  attribute_columns.reserve(attrs_.size());
  for (const auto& column : attrs_) {
    attribute_columns.push_back(column.data());
  }
  return data::PointTable::View(schema_, xs_.data(), ys_.data(), ts_.data(),
                                std::move(attribute_columns), rows);
}

std::size_t Memtable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this) + xs_.capacity() * sizeof(float) +
                      ys_.capacity() * sizeof(float) +
                      ts_.capacity() * sizeof(std::int64_t);
  for (const auto& column : attrs_) {
    bytes += column.capacity() * sizeof(float);
  }
  return bytes;
}

}  // namespace urbane::ingest
