#ifndef URBANE_INGEST_MEMTABLE_H_
#define URBANE_INGEST_MEMTABLE_H_

// The in-memory hot run of the ingest path: a bounded, append-only
// columnar buffer of recent points.
//
// Columns are allocated to full capacity up front and never reallocate, so
// a PointTable view over the first `size()` rows stays valid for the
// memtable's lifetime. Synchronization is external (LiveTable's mutex):
// the writer appends rows and advances `size()` under the lock, readers
// obtain `size()` under the same lock and then scan the immutable prefix
// lock-free — published rows are never mutated again, so a reader and the
// writer can never touch the same element.

#include <cstdint>
#include <utility>
#include <vector>

#include "data/point_table.h"
#include "data/schema.h"
#include "geometry/bounding_box.h"
#include "util/status.h"

namespace urbane::ingest {

class Memtable {
 public:
  Memtable(data::Schema schema, std::size_t capacity);

  Memtable(const Memtable&) = delete;
  Memtable& operator=(const Memtable&) = delete;

  const data::Schema& schema() const { return schema_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool Fits(std::size_t rows) const { return size_ + rows <= capacity_; }

  /// Copies the batch's rows in arrival order. InvalidArgument on an arity
  /// mismatch, ResourceExhausted when the batch does not fit.
  Status Append(const data::PointTable& batch);

  /// Borrowed view over the first `rows` rows (pass size() for all).
  /// Column pointers never move, so the view stays valid while the
  /// memtable is alive — including rows published after the view was taken
  /// (the view's extent is fixed, the storage is shared).
  StatusOr<data::PointTable> View(std::size_t rows) const;

  /// Exact extents over the current rows, folded like PointTable::Bounds /
  /// TimeRange over the same prefix (min/max are associative, so the
  /// incremental fold is bit-identical to a scan).
  geometry::BoundingBox bounds() const { return bounds_; }
  std::pair<std::int64_t, std::int64_t> time_range() const {
    return size_ == 0 ? std::pair<std::int64_t, std::int64_t>{0, 0}
                      : std::pair<std::int64_t, std::int64_t>{min_t_, max_t_};
  }

  std::size_t MemoryBytes() const;

 private:
  data::Schema schema_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::vector<float> xs_;
  std::vector<float> ys_;
  std::vector<std::int64_t> ts_;
  std::vector<std::vector<float>> attrs_;
  geometry::BoundingBox bounds_;
  std::int64_t min_t_ = 0;
  std::int64_t max_t_ = 0;
};

}  // namespace urbane::ingest

#endif  // URBANE_INGEST_MEMTABLE_H_
