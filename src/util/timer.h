#ifndef URBANE_UTIL_TIMER_H_
#define URBANE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace urbane {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Collects repeated latency samples and summarizes them. Used by the
/// benchmark harnesses to report min/median/mean/p95 per configuration.
class LatencyStats {
 public:
  void AddSample(double seconds) { samples_.push_back(seconds); }
  void Clear() { samples_.clear(); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double MinSeconds() const;
  double MaxSeconds() const;
  double MeanSeconds() const;
  /// Interpolated percentile in [0, 100]. Returns 0 when empty.
  double PercentileSeconds(double pct) const;
  double MedianSeconds() const { return PercentileSeconds(50.0); }

  /// e.g. "12.3ms (p95 15.0ms, n=8)".
  std::string Summary() const;

 private:
  std::vector<double> samples_;
};

/// Formats a duration with an adaptive unit, e.g. "1.24s", "18.2ms", "640us".
std::string FormatDuration(double seconds);

}  // namespace urbane

#endif  // URBANE_UTIL_TIMER_H_
