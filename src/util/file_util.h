#ifndef URBANE_UTIL_FILE_UTIL_H_
#define URBANE_UTIL_FILE_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace urbane {

/// Size of a regular file in bytes; IoError if it cannot be stat'ed.
StatusOr<std::uint64_t> FileSizeBytes(const std::string& path);

/// fsyncs a directory so directory-entry mutations inside it (rename,
/// create, unlink) are on stable storage. IoError when the directory cannot
/// be opened or the fsync fails — callers that need a durability guarantee
/// (AtomicFileWriter::Commit, the ingest WAL) must treat that as a failed
/// commit, not a warning.
Status FsyncDirectory(const std::string& directory);

/// Crash-safe whole-file writer: all bytes go to `<path>.tmp`; Commit()
/// flushes, fsyncs, atomically renames onto `path`, and then fsyncs the
/// parent directory. A writer destroyed without a successful Commit unlinks
/// the temp file, so a failed or interrupted save can never leave a
/// half-written file at the final path — readers either see the old
/// complete file or the new complete file.
///
/// Crash-safety contract of a successful Commit(): after it returns OK, the
/// complete file is durably reachable at `path` even across power loss.
/// The file data is fsynced before the rename, and the rename itself is
/// made durable by fsyncing the parent directory — without that last step
/// the kernel may persist the data pages but lose the directory entry, so a
/// "committed" store/WAL/manifest file could silently vanish on power loss.
/// A directory-fsync failure therefore fails the Commit (the renamed file
/// is left in place — the rename already happened — but the caller must not
/// act as if the write were durable).
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens `<path>.tmp` for writing (truncating any stale temp file left by
  /// an earlier crash).
  static StatusOr<AtomicFileWriter> Open(const std::string& path);

  Status Write(const void* data, std::size_t size);

  /// Bytes written so far (the would-be file offset).
  std::uint64_t offset() const { return offset_; }

  /// Flush + fsync + close + rename. After an error the temp file is
  /// removed and the final path is untouched.
  Status Commit();

  /// Final destination path.
  const std::string& path() const { return path_; }

 private:
  void Abandon();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string temp_path_;
  std::uint64_t offset_ = 0;
};

}  // namespace urbane

#endif  // URBANE_UTIL_FILE_UTIL_H_
