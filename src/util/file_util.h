#ifndef URBANE_UTIL_FILE_UTIL_H_
#define URBANE_UTIL_FILE_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace urbane {

/// Size of a regular file in bytes; IoError if it cannot be stat'ed.
StatusOr<std::uint64_t> FileSizeBytes(const std::string& path);

/// Crash-safe whole-file writer: all bytes go to `<path>.tmp`; Commit()
/// flushes, fsyncs, and atomically renames onto `path` (then best-effort
/// fsyncs the parent directory). A writer destroyed without a successful
/// Commit unlinks the temp file, so a failed or interrupted save can never
/// leave a half-written file at the final path — readers either see the old
/// complete file or the new complete file.
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens `<path>.tmp` for writing (truncating any stale temp file left by
  /// an earlier crash).
  static StatusOr<AtomicFileWriter> Open(const std::string& path);

  Status Write(const void* data, std::size_t size);

  /// Bytes written so far (the would-be file offset).
  std::uint64_t offset() const { return offset_; }

  /// Flush + fsync + close + rename. After an error the temp file is
  /// removed and the final path is untouched.
  Status Commit();

  /// Final destination path.
  const std::string& path() const { return path_; }

 private:
  void Abandon();

  std::FILE* file_ = nullptr;
  std::string path_;
  std::string temp_path_;
  std::uint64_t offset_ = 0;
};

}  // namespace urbane

#endif  // URBANE_UTIL_FILE_UTIL_H_
