#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace urbane {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so interleaved messages stay line-atomic.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        basename = p + 1;
      }
    }
    stream_ << "[" << LevelTag(level) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace urbane
