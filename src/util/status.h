#ifndef URBANE_UTIL_STATUS_H_
#define URBANE_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace urbane {

/// Error categories used across the library. Mirrors the coarse categories a
/// database engine needs: user input problems, missing resources, internal
/// invariant violations, and unimplemented paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kIoError = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
};

/// Returns a stable human-readable name for a status code (e.g. "IOError").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier used instead of exceptions.
///
/// Functions that can fail return `Status` (or `StatusOr<T>` when they also
/// produce a value). An OK status carries no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A bounded resource (memtable, queue, quota) is full; the caller should
  /// back off and retry — the server layer maps this onto HTTP 429.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced. Accessing `value()` on an error aborts; check
/// `ok()` first (or use `value_or`).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status. Aborts if `status.ok()`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace urbane

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `StatusOr<T>`.
#define URBANE_RETURN_IF_ERROR(expr)           \
  do {                                         \
    ::urbane::Status _urbane_status = (expr);  \
    if (!_urbane_status.ok()) {                \
      return _urbane_status;                   \
    }                                          \
  } while (false)

/// Evaluates `rexpr` (a StatusOr), propagating errors, else assigns to `lhs`.
#define URBANE_ASSIGN_OR_RETURN(lhs, rexpr)       \
  URBANE_ASSIGN_OR_RETURN_IMPL_(                  \
      URBANE_STATUS_CONCAT_(_status_or_, __LINE__), lhs, rexpr)

#define URBANE_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) {                                     \
    return var.status();                               \
  }                                                    \
  lhs = std::move(var).value()

#define URBANE_STATUS_CONCAT_INNER_(a, b) a##b
#define URBANE_STATUS_CONCAT_(a, b) URBANE_STATUS_CONCAT_INNER_(a, b)

#endif  // URBANE_UTIL_STATUS_H_
