#ifndef URBANE_UTIL_COLOR_H_
#define URBANE_UTIL_COLOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace urbane {

/// 8-bit RGB color.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb&) const = default;
};

/// Named continuous colormaps used by the map/heatmap views.
enum class ColormapKind {
  kViridis,    // perceptually-uniform sequential (dark purple -> yellow)
  kMagma,      // sequential, dark -> light warm
  kBlueOrange, // diverging, for signed deltas
  kGrayscale,  // debugging / density rasters
};

/// Piecewise-linear colormap over control points in [0, 1].
class Colormap {
 public:
  /// Builds one of the built-in maps.
  static Colormap Make(ColormapKind kind);

  /// Builds a custom map from equally spaced control colors (>= 2).
  explicit Colormap(std::vector<Rgb> control_points);

  /// Maps t in [0, 1] (clamped) to a color by linear interpolation.
  Rgb Map(double t) const;

  /// Maps `value` within [lo, hi]; degenerate ranges map to the low color.
  Rgb MapRange(double value, double lo, double hi) const;

  const std::vector<Rgb>& control_points() const { return control_points_; }

 private:
  std::vector<Rgb> control_points_;
};

/// "#rrggbb" hex form (lowercase), e.g. for GeoJSON style properties.
std::string RgbToHex(const Rgb& color);

}  // namespace urbane

#endif  // URBANE_UTIL_COLOR_H_
