#include "util/latency.h"

#include <algorithm>

namespace urbane {

namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary summary;
  if (samples_.empty()) return summary;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  summary.count = sorted.size();
  summary.min = sorted.front();
  summary.max = sorted.back();
  double total = 0.0;
  for (const double v : sorted) total += v;
  summary.mean = total / static_cast<double>(sorted.size());
  summary.p50 = Percentile(sorted, 0.50);
  summary.p95 = Percentile(sorted, 0.95);
  summary.p99 = Percentile(sorted, 0.99);
  return summary;
}

}  // namespace urbane
