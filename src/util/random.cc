#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace urbane {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  URBANE_DCHECK(bound > 0) << "bound must be positive";
  // Lemire-style rejection: retry while in the biased tail.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = radius * std::sin(kTwoPi * u2);
  has_cached_gaussian_ = true;
  return radius * std::cos(kTwoPi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double probability_true) {
  return NextDouble() < probability_true;
}

double Rng::NextExponential(double lambda) {
  URBANE_DCHECK(lambda > 0.0) << "lambda must be positive";
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -std::log(u) / lambda;
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  URBANE_DCHECK(lo <= hi) << "empty integer range";
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(NextUint64());
  }
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace urbane
