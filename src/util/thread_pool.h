#ifndef URBANE_UTIL_THREAD_POOL_H_
#define URBANE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace urbane {

/// Fixed-size worker pool. Tasks are `std::function<void()>`; `Wait()` blocks
/// until the queue drains and all in-flight tasks finish.
///
/// The software rasterizer uses this to mimic the GPU's parallel fragment
/// processing: each render tile becomes one task.
class ThreadPool {
 public:
  /// `num_threads == 0` selects `std::thread::hardware_concurrency()`
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits `[0, count)` into contiguous chunks and runs
/// `body(begin, end)` for each chunk on the pool, blocking until done.
/// With a null pool (or a single worker and small `count`) runs inline.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_chunk = 1024);

/// Returns a lazily-constructed process-wide pool sized to the hardware.
ThreadPool* DefaultThreadPool();

}  // namespace urbane

#endif  // URBANE_UTIL_THREAD_POOL_H_
