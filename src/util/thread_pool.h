#ifndef URBANE_UTIL_THREAD_POOL_H_
#define URBANE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace urbane {

/// Fixed-size worker pool. Tasks are `std::function<void()>`.
///
/// Two waiting granularities exist:
///  * `Batch` — a wait token scoping a group of tasks. `Batch::Wait()`
///    blocks only on that group, so concurrent callers sharing one pool
///    never wait on each other's work, and a task may submit-then-wait a
///    nested batch without deadlocking (the waiter executes its own
///    queued tasks while it waits).
///  * pool-wide `Submit()`/`Wait()` — legacy drain of everything.
///
/// The software rasterizer uses this to mimic the GPU's parallel fragment
/// processing: each render tile / point partition becomes one task.
class ThreadPool {
 public:
  struct BatchState;

  /// A wait token for one group of tasks. Copyable (copies share the
  /// group); reusable (submit more tasks after a Wait).
  class Batch {
   public:
    /// Enqueues a task belonging to this batch. Never blocks.
    void Submit(std::function<void()> task);

    /// Blocks until every task submitted to THIS batch has completed.
    /// Tasks of the batch still sitting in the queue are executed by the
    /// calling thread (so waiting from inside a worker cannot deadlock);
    /// other batches' tasks are never stolen.
    void Wait();

   private:
    friend class ThreadPool;
    Batch(ThreadPool* pool, std::shared_ptr<BatchState> state)
        : pool_(pool), state_(std::move(state)) {}

    ThreadPool* pool_;
    std::shared_ptr<BatchState> state_;
  };

  /// `num_threads == 0` selects `std::thread::hardware_concurrency()`
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Creates an independent wait token.
  Batch CreateBatch();

  /// Enqueues a batch-less task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task — all batches plus batch-less
  /// tasks — has completed. Prefer `Batch::Wait()` when several callers
  /// share the pool.
  void Wait();

 private:
  struct TaskEntry {
    std::function<void()> fn;
    std::shared_ptr<BatchState> batch;  // null for batch-less tasks
  };

  void WorkerLoop();
  /// Bookkeeping after a task ran; requires `mutex_` held.
  void FinishTaskLocked(const std::shared_ptr<BatchState>& batch);

  std::vector<std::thread> workers_;
  std::deque<TaskEntry> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits `[0, count)` into contiguous chunks and runs
/// `body(begin, end)` for each chunk on the pool, blocking until done.
/// With a null pool (or a single worker and small `count`) runs inline.
/// Each call uses its own `Batch`, so concurrent ParallelFor callers on
/// one pool do not wait on each other.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_chunk = 1024);

/// Returns a lazily-constructed process-wide pool sized to the hardware.
ThreadPool* DefaultThreadPool();

}  // namespace urbane

#endif  // URBANE_UTIL_THREAD_POOL_H_
