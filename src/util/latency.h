#ifndef URBANE_UTIL_LATENCY_H_
#define URBANE_UTIL_LATENCY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace urbane {

/// Percentile summary of one latency phase. All values carry whatever unit
/// was Record()ed (the benches use milliseconds).
struct LatencySummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Phase-scoped latency samples for benchmark loops.
///
/// Grew out of a bench_server_load bug class: the closed-loop driver kept
/// one latency vector across scenarios and summarized a sorted *copy*, so
/// a missing clear between phases silently blended a previous phase's
/// tail into the next phase's p99 — plausible numbers, wrong attribution.
/// This type makes the phase boundary explicit: Record() appends,
/// Summarize() never mutates (samples stay in arrival order), and Reset()
/// is the one and only way samples leave the recorder.
class LatencyRecorder {
 public:
  void Record(double value) { samples_.push_back(value); }

  /// Merges another recorder's samples (per-client recorders folding into
  /// a per-phase total). The source is left untouched.
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  /// Starts the next phase empty. Phase isolation is the point: a
  /// summarize-then-reset pair is what the regression test pins.
  void Reset() { samples_.clear(); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Samples in arrival order — Summarize() must never reorder these.
  const std::vector<double>& samples() const { return samples_; }

  /// Percentiles over a sorted copy; the recorder itself is not mutated.
  /// Linear interpolation between order statistics; an empty phase
  /// summarizes to all zeros.
  LatencySummary Summarize() const;

 private:
  std::vector<double> samples_;
};

}  // namespace urbane

#endif  // URBANE_UTIL_LATENCY_H_
