#include "util/timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace urbane {

double LatencyStats::MinSeconds() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double LatencyStats::MaxSeconds() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::MeanSeconds() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyStats::PercentileSeconds(double pct) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string LatencyStats::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s (p95 %s, n=%zu)",
                FormatDuration(MedianSeconds()).c_str(),
                FormatDuration(PercentileSeconds(95.0)).c_str(), count());
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  }
  return buf;
}

}  // namespace urbane
