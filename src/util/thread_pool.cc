#include "util/thread_pool.h"

#include <algorithm>

namespace urbane {

/// Shared state of one batch; all fields are guarded by the pool's mutex.
struct ThreadPool::BatchState {
  std::size_t pending = 0;
  std::condition_variable done;
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool::Batch ThreadPool::CreateBatch() {
  return Batch(this, std::make_shared<BatchState>());
}

void ThreadPool::Batch::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(pool_->mutex_);
    pool_->queue_.push_back({std::move(task), state_});
    ++state_->pending;
    ++pool_->in_flight_;
  }
  pool_->work_available_.notify_one();
  // A Wait() sleeping on this batch must wake to help with the new task
  // (submit-then-wait from inside a task of the same batch).
  state_->done.notify_all();
}

void ThreadPool::Batch::Wait() {
  std::unique_lock<std::mutex> lock(pool_->mutex_);
  while (state_->pending > 0) {
    // Help: run a queued task of THIS batch on the calling thread. Other
    // batches' tasks are left alone so their latency cannot leak into
    // this wait.
    auto it = std::find_if(
        pool_->queue_.begin(), pool_->queue_.end(),
        [&](const TaskEntry& entry) { return entry.batch == state_; });
    if (it != pool_->queue_.end()) {
      TaskEntry entry = std::move(*it);
      pool_->queue_.erase(it);
      lock.unlock();
      entry.fn();
      lock.lock();
      pool_->FinishTaskLocked(entry.batch);
      continue;
    }
    // Nothing of ours queued: the rest is in flight on workers. Wake on
    // completion (pending -> 0) or on new same-batch submissions.
    state_->done.wait(lock, [&] {
      if (state_->pending == 0) return true;
      return std::any_of(
          pool_->queue_.begin(), pool_->queue_.end(),
          [&](const TaskEntry& entry) { return entry.batch == state_; });
    });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back({std::move(task), nullptr});
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::FinishTaskLocked(const std::shared_ptr<BatchState>& batch) {
  --in_flight_;
  if (in_flight_ == 0) {
    all_done_.notify_all();
  }
  if (batch != nullptr) {
    --batch->pending;
    if (batch->pending == 0) {
      batch->done.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskEntry entry;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    entry.fn();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      FinishTaskLocked(entry.batch);
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_chunk) {
  if (count == 0) {
    return;
  }
  const std::size_t workers = pool == nullptr ? 1 : pool->num_threads();
  if (workers <= 1 || count <= min_chunk) {
    body(0, count);
    return;
  }
  // Aim for a few chunks per worker for load balance, but respect min_chunk.
  const std::size_t target_chunks = workers * 4;
  std::size_t chunk = std::max(min_chunk, (count + target_chunks - 1) / target_chunks);
  ThreadPool::Batch batch = pool->CreateBatch();
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    batch.Submit([&body, begin, end] { body(begin, end); });
  }
  batch.Wait();
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

}  // namespace urbane
