#include "util/thread_pool.h"

#include <algorithm>

namespace urbane {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_chunk) {
  if (count == 0) {
    return;
  }
  const std::size_t workers = pool == nullptr ? 1 : pool->num_threads();
  if (workers <= 1 || count <= min_chunk) {
    body(0, count);
    return;
  }
  // Aim for a few chunks per worker for load balance, but respect min_chunk.
  const std::size_t target_chunks = workers * 4;
  std::size_t chunk = std::max(min_chunk, (count + target_chunks - 1) / target_chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool->Submit([&body, begin, end] { body(begin, end); });
  }
  pool->Wait();
}

ThreadPool* DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

}  // namespace urbane
