#ifndef URBANE_UTIL_STRING_UTIL_H_
#define URBANE_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace urbane {

/// Splits on a single character; empty fields are preserved
/// ("a,,b" -> {"a", "", "b"}). An empty input yields one empty field.
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view input);

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view input);

/// Strict full-string numeric parses (reject trailing garbage / empty).
StatusOr<double> ParseDouble(std::string_view text);
StatusOr<std::int64_t> ParseInt64(std::string_view text);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace urbane

#endif  // URBANE_UTIL_STRING_UTIL_H_
