#ifndef URBANE_UTIL_RANDOM_H_
#define URBANE_UTIL_RANDOM_H_

#include <cstdint>

namespace urbane {

/// Deterministic, fast PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every data generator in the repo takes an explicit seed and goes through
/// this class so that datasets, tests and benchmarks are reproducible across
/// platforms (std::mt19937 distributions are not guaranteed identical across
/// standard library implementations).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached pair).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial.
  bool NextBool(double probability_true = 0.5);

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// Integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Forks an independent, deterministic child stream. Used so parallel
  /// generators stay reproducible regardless of interleaving.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64 step — also useful directly for hashing small integers.
std::uint64_t SplitMix64(std::uint64_t& state);

}  // namespace urbane

#endif  // URBANE_UTIL_RANDOM_H_
