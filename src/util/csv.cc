#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace urbane {

int CsvDocument::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

// Parses one logical CSV record starting at `pos`; advances `pos` past the
// record terminator. Quoted fields may contain delimiters and newlines.
StatusOr<std::vector<std::string>> ParseRecord(const std::string& content,
                                               std::size_t& pos,
                                               char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  const std::size_t n = content.size();
  while (pos < n) {
    const char c = content[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < n && content[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        return Status::InvalidArgument(
            "quote appearing mid-field at byte " + std::to_string(pos));
      }
      in_quotes = true;
      ++pos;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\n' || c == '\r') {
      ++pos;
      if (c == '\r' && pos < n && content[pos] == '\n') {
        ++pos;
      }
      fields.push_back(std::move(field));
      return fields;
    } else {
      field.push_back(c);
      ++pos;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field at end of input");
  }
  fields.push_back(std::move(field));
  return fields;
}

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (const char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      return true;
    }
  }
  return false;
}

void AppendField(std::string& out, const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

StatusOr<CsvDocument> ParseCsv(const std::string& content, char delimiter) {
  CsvDocument doc;
  std::size_t pos = 0;
  if (content.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }
  URBANE_ASSIGN_OR_RETURN(doc.header, ParseRecord(content, pos, delimiter));
  while (pos < content.size()) {
    URBANE_ASSIGN_OR_RETURN(std::vector<std::string> row,
                            ParseRecord(content, pos, delimiter));
    // A trailing newline manifests as a single empty field; skip it.
    if (row.size() == 1 && row[0].empty() && pos >= content.size()) {
      break;
    }
    if (row.size() != doc.header.size()) {
      return Status::InvalidArgument(StringPrintf(
          "row %zu has %zu fields, header has %zu", doc.rows.size() + 1,
          row.size(), doc.header.size()));
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

StatusOr<CsvDocument> ReadCsvFile(const std::string& path, char delimiter) {
  URBANE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsv(content, delimiter);
}

std::string WriteCsv(const CsvDocument& doc, char delimiter) {
  std::string out;
  for (std::size_t i = 0; i < doc.header.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    AppendField(out, doc.header[i], delimiter);
  }
  out.push_back('\n');
  for (const auto& row : doc.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      AppendField(out, row[i], delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter) {
  return WriteStringToFile(WriteCsv(doc, delimiter), path);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open file for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) {
    return Status::IoError("read failure on file: " + path);
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!file) {
    return Status::IoError("write failure on file: " + path);
  }
  return Status::OK();
}

}  // namespace urbane
