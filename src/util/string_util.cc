#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace urbane {

std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      fields.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view TrimWhitespace(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(separator);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

StatusOr<double> ParseDouble(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("not a valid double: '" +
                                   std::string(text) + "'");
  }
  return value;
}

StatusOr<std::int64_t> ParseInt64(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("not a valid int64: '" +
                                   std::string(text) + "'");
  }
  return value;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace urbane
