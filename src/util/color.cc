#include "util/color.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace urbane {

namespace {

// Control points sampled from the matplotlib viridis/magma ramps (8 stops is
// visually indistinguishable from the full table at map scales).
const Rgb kViridisStops[] = {
    {68, 1, 84},   {70, 50, 127},  {54, 92, 141},  {39, 127, 142},
    {31, 161, 135}, {74, 194, 109}, {159, 218, 58}, {253, 231, 37},
};
const Rgb kMagmaStops[] = {
    {0, 0, 4},      {40, 11, 84},   {101, 21, 110}, {159, 42, 99},
    {212, 72, 66},  {245, 125, 21}, {250, 193, 39}, {252, 253, 191},
};
const Rgb kBlueOrangeStops[] = {
    {5, 48, 97},    {67, 147, 195}, {209, 229, 240}, {247, 247, 247},
    {253, 219, 199}, {214, 96, 77}, {103, 0, 31},
};
const Rgb kGrayscaleStops[] = {{0, 0, 0}, {255, 255, 255}};

std::uint8_t LerpChannel(std::uint8_t a, std::uint8_t b, double t) {
  const double v = static_cast<double>(a) + (static_cast<double>(b) - a) * t;
  return static_cast<std::uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
}

}  // namespace

Colormap Colormap::Make(ColormapKind kind) {
  switch (kind) {
    case ColormapKind::kViridis:
      return Colormap(std::vector<Rgb>(std::begin(kViridisStops),
                                       std::end(kViridisStops)));
    case ColormapKind::kMagma:
      return Colormap(
          std::vector<Rgb>(std::begin(kMagmaStops), std::end(kMagmaStops)));
    case ColormapKind::kBlueOrange:
      return Colormap(std::vector<Rgb>(std::begin(kBlueOrangeStops),
                                       std::end(kBlueOrangeStops)));
    case ColormapKind::kGrayscale:
      return Colormap(std::vector<Rgb>(std::begin(kGrayscaleStops),
                                       std::end(kGrayscaleStops)));
  }
  return Colormap(std::vector<Rgb>(std::begin(kGrayscaleStops),
                                   std::end(kGrayscaleStops)));
}

Colormap::Colormap(std::vector<Rgb> control_points)
    : control_points_(std::move(control_points)) {
  URBANE_CHECK(control_points_.size() >= 2)
      << "a colormap needs at least two control points";
}

Rgb Colormap::Map(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  const double scaled = t * static_cast<double>(control_points_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(scaled));
  const std::size_t hi = std::min(lo + 1, control_points_.size() - 1);
  const double frac = scaled - static_cast<double>(lo);
  const Rgb& a = control_points_[lo];
  const Rgb& b = control_points_[hi];
  return Rgb{LerpChannel(a.r, b.r, frac), LerpChannel(a.g, b.g, frac),
             LerpChannel(a.b, b.b, frac)};
}

Rgb Colormap::MapRange(double value, double lo, double hi) const {
  if (!(hi > lo)) {
    return Map(0.0);
  }
  return Map((value - lo) / (hi - lo));
}

std::string RgbToHex(const Rgb& color) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", color.r, color.g, color.b);
  return buf;
}

}  // namespace urbane
