#ifndef URBANE_UTIL_LOGGING_H_
#define URBANE_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace urbane {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink. Emits on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace urbane

#define URBANE_LOG(level)                                              \
  ::urbane::internal_logging::LogMessage(::urbane::LogLevel::k##level, \
                                         __FILE__, __LINE__)

/// Invariant check that stays on in release builds. Streams context, then
/// aborts when the condition is false.
#define URBANE_CHECK(condition)                            \
  if (!(condition))                                        \
  URBANE_LOG(Fatal) << "Check failed: " #condition " "

#define URBANE_CHECK_OK(expr)                                       \
  do {                                                              \
    ::urbane::Status _urbane_check_status = (expr);                 \
    URBANE_CHECK(_urbane_check_status.ok())                         \
        << _urbane_check_status.ToString();                         \
  } while (false)

#ifdef NDEBUG
#define URBANE_DCHECK(condition) \
  if (false) URBANE_LOG(Fatal)
#else
#define URBANE_DCHECK(condition) URBANE_CHECK(condition)
#endif

#endif  // URBANE_UTIL_LOGGING_H_
