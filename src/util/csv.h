#ifndef URBANE_UTIL_CSV_H_
#define URBANE_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace urbane {

/// A parsed CSV document: a header row plus data rows, all as strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `name` in the header, or -1.
  int ColumnIndex(const std::string& name) const;
};

/// RFC-4180-style parsing: fields separated by `delimiter`, optional double
/// quotes with `""` escapes, \n or \r\n row terminators. The first row is
/// the header. Rows whose field count differs from the header's are an
/// error (ragged files usually indicate corruption).
StatusOr<CsvDocument> ParseCsv(const std::string& content,
                               char delimiter = ',');

/// Reads and parses a whole file.
StatusOr<CsvDocument> ReadCsvFile(const std::string& path,
                                  char delimiter = ',');

/// Serializes (quoting fields that contain the delimiter, quotes or
/// newlines).
std::string WriteCsv(const CsvDocument& doc, char delimiter = ',');

/// Writes to a file, creating/truncating it.
Status WriteCsvFile(const CsvDocument& doc, const std::string& path,
                    char delimiter = ',');

/// Reads an entire file into a string (shared helper, also used by the
/// GeoJSON loader).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, creating/truncating it.
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace urbane

#endif  // URBANE_UTIL_CSV_H_
