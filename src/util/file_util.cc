#include "util/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace urbane {

namespace {

std::string ParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status FsyncDirectory(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory for fsync: " + directory +
                           ": " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync failure on directory: " + directory + ": " +
                           error);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close failure on directory: " + directory + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<std::uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("cannot stat " + path + ": " +
                           std::strerror(errno));
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::IoError("not a regular file: " + path);
  }
  return static_cast<std::uint64_t>(st.st_size);
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      temp_path_(std::move(other.temp_path_)),
      offset_(other.offset_) {
  other.file_ = nullptr;
  other.temp_path_.clear();
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    file_ = other.file_;
    path_ = std::move(other.path_);
    temp_path_ = std::move(other.temp_path_);
    offset_ = other.offset_;
    other.file_ = nullptr;
    other.temp_path_.clear();
  }
  return *this;
}

void AtomicFileWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!temp_path_.empty()) {
    ::unlink(temp_path_.c_str());
    temp_path_.clear();
  }
}

StatusOr<AtomicFileWriter> AtomicFileWriter::Open(const std::string& path) {
  AtomicFileWriter writer;
  writer.path_ = path;
  writer.temp_path_ = path + ".tmp";
  writer.file_ = std::fopen(writer.temp_path_.c_str(), "wb");
  if (writer.file_ == nullptr) {
    const std::string temp = writer.temp_path_;
    writer.temp_path_.clear();  // nothing to unlink
    return Status::IoError("cannot open for writing: " + temp + ": " +
                           std::strerror(errno));
  }
  return writer;
}

Status AtomicFileWriter::Write(const void* data, std::size_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("write on a closed AtomicFileWriter");
  }
  if (size == 0) {
    return Status::OK();
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IoError(StringPrintf(
        "write failure at offset %llu of %s",
        static_cast<unsigned long long>(offset_), temp_path_.c_str()));
  }
  offset_ += size;
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("commit on a closed AtomicFileWriter");
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    Abandon();
    return Status::IoError("flush/fsync failure: " + path_ + ".tmp");
  }
  const int close_result = std::fclose(file_);
  file_ = nullptr;
  if (close_result != 0) {
    Abandon();
    return Status::IoError("close failure: " + path_ + ".tmp");
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    Abandon();
    return Status::IoError("rename failure: " + temp_path_ + " -> " + path_ +
                           ": " + std::strerror(errno));
  }
  temp_path_.clear();  // committed: nothing left to clean up
  // The rename only becomes durable once the parent directory's entry table
  // is on stable storage; a failure here means the commit is NOT
  // crash-safe, so it is a hard error (see the class contract).
  return FsyncDirectory(ParentDirectory(path_));
}

}  // namespace urbane
