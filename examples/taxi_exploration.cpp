// Taxi exploration: reproduces the workflow behind the paper's Figure 1 —
// visualize taxi pickups at several spatial resolutions and time slices,
// writing choropleth and heatmap images (PPM) to the working directory.
#include <cstdio>

#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/chart_view.h"
#include "urbane/heatmap_view.h"
#include "urbane/map_view.h"
#include "util/timer.h"

int main() {
  using namespace urbane;

  data::TaxiGeneratorOptions options;
  options.num_trips = 400000;
  std::printf("Generating %zu taxi trips...\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);

  // Urbane lets the user switch between resolutions: boroughs,
  // neighborhoods, census tracts.
  struct Layer {
    const char* name;
    data::RegionSet regions;
  };
  Layer layers[] = {
      {"boroughs", data::GenerateBoroughs()},
      {"neighborhoods", data::GenerateNeighborhoods()},
      {"tracts", data::GenerateCensusTracts()},
  };

  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  query.filter.WithTime(1230768000, 1233446400);  // January 2009

  for (Layer& layer : layers) {
    core::SpatialAggregation engine(taxis, layer.regions);
    WallTimer timer;
    const auto result =
        engine.Execute(query, core::ExecutionMethod::kAccurateRaster);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    std::uint64_t max_count = 0;
    for (const auto c : result->counts) max_count = std::max(max_count, c);
    std::printf("%-14s %4zu regions   query %-10s busiest region: %llu trips\n",
                layer.name, layer.regions.size(),
                FormatDuration(seconds).c_str(),
                static_cast<unsigned long long>(max_count));

    const std::string path =
        std::string("taxi_january_") + layer.name + ".ppm";
    app::MapViewOptions view;
    view.image_width = 640;
    const auto render =
        app::RenderChoroplethToFile(layer.regions, *result, path, view);
    if (render.ok()) {
      std::printf("               wrote %s (scale %.0f..%.0f)\n", path.c_str(),
                  render->legend_lo, render->legend_hi);
    }
  }

  // Raw-density heatmap of weekday evening pickups (Urbane's zoomed-in
  // point layer).
  core::FilterSpec evening;
  evening.WithTime(1230768000, 1233446400);
  app::HeatmapOptions heat;
  heat.image_width = 640;
  const auto heatmap =
      app::RenderHeatmapToFile(taxis, evening, "taxi_density.ppm", heat);
  if (heatmap.ok()) {
    std::printf("wrote taxi_density.ppm\n");
  }

  // Temporal view: pickups per 6-hour bin for the two busiest
  // neighborhoods vs the citywide average.
  {
    const data::RegionSet& hoods = layers[1].regions;
    core::SpatialAggregation engine(taxis, hoods);
    const auto totals =
        engine.Execute(query, core::ExecutionMethod::kAccurateRaster);
    if (!totals.ok()) return 1;
    std::size_t top1 = 0;
    std::size_t top2 = 1;
    for (std::size_t r = 0; r < totals->counts.size(); ++r) {
      if (totals->counts[r] > totals->counts[top1]) {
        top2 = top1;
        top1 = r;
      } else if (r != top1 && totals->counts[r] > totals->counts[top2]) {
        top2 = r;
      }
    }
    constexpr int kBins = 31 * 4;  // 6-hour bins over January
    app::ChartSeries s1{hoods[top1].name, {}};
    app::ChartSeries s2{hoods[top2].name, {}};
    app::ChartSeries avg{"city avg", {}};
    for (int b = 0; b < kBins; ++b) {
      core::AggregationQuery slice;
      slice.filter.WithTime(1230768000 + b * 21600LL,
                            1230768000 + (b + 1) * 21600LL);
      const auto result =
          engine.Execute(slice, core::ExecutionMethod::kBoundedRaster);
      if (!result.ok()) return 1;
      double total = 0.0;
      for (const double v : result->values) total += v;
      s1.values.push_back(result->values[top1]);
      s2.values.push_back(result->values[top2]);
      avg.values.push_back(total / static_cast<double>(hoods.size()));
    }
    app::ChartOptions chart;
    chart.title = "PICKUPS PER 6H BIN";
    const auto image = app::RenderTimeSeriesChartToFile(
        {s1, s2, avg}, "taxi_temporal.ppm", chart);
    if (image.ok()) {
      std::printf("wrote taxi_temporal.ppm (temporal view, %d bins)\n",
                  kBins);
    }
  }
  return 0;
}
