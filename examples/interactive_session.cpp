// Interactive session: replays a recorded exploration trace (time brushing,
// filtering, aggregate switching, panning) against each executor and reports
// frame latencies — the demo's core claim is that Raster Join keeps these
// frames interactive where baselines cannot.
#include <cstdio>

#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/session.h"

int main() {
  using namespace urbane;

  data::TaxiGeneratorOptions options;
  options.num_trips = 500000;
  std::printf("Generating %zu taxi trips...\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;
  core::SpatialAggregation engine(taxis, neighborhoods, raster_options);
  const auto [t0, t1] = taxis.TimeRange();
  app::InteractionSession session(engine, "fare_amount", t0, t1);
  const auto trace = app::GenerateInteractionTrace(40, 2018);

  std::printf("\nReplaying a %zu-event exploration trace per executor:\n\n",
              trace.size());
  std::printf("%-10s %10s %10s %10s %14s\n", "executor", "p50", "p95", "max",
              "interactive");
  const core::ExecutionMethod methods[] = {
      core::ExecutionMethod::kBoundedRaster,
      core::ExecutionMethod::kAccurateRaster,
      core::ExecutionMethod::kIndexJoin,
      core::ExecutionMethod::kScan,
  };
  for (const auto method : methods) {
    const auto frames = session.Replay(trace, method);
    if (!frames.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   frames.status().ToString().c_str());
      return 1;
    }
    const app::SessionSummary summary = app::SummarizeFrames(*frames);
    std::printf("%-10s %10s %10s %10s %9zu/%zu\n",
                core::ExecutionMethodToString(method),
                FormatDuration(summary.p50_seconds).c_str(),
                FormatDuration(summary.p95_seconds).c_str(),
                FormatDuration(summary.max_seconds).c_str(),
                summary.interactive_frames, summary.frames);
  }
  std::printf(
      "\n('interactive' counts frames under the 100 ms budget; raster joins\n"
      " reuse their canvases across frames, which is what makes brushing\n"
      " fluid in the demo.)\n");
  return 0;
}
