// Neighborhood comparison: the architect workflow from the paper's
// introduction — profile every neighborhood across several urban data sets
// (taxi activity, 311 complaints, crime), rank them, and find the
// neighborhoods most similar to a chosen site.
#include <cstdio>

#include "data/event_generator.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/dataset_manager.h"
#include "urbane/exploration_view.h"

int main() {
  using namespace urbane;

  app::DatasetManager manager;

  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = 300000;
  std::printf("Generating data sets (taxi, 311, crime)...\n");
  if (!manager.AddPointDataset("taxi",
                               data::GenerateTaxiTrips(taxi_options))
           .ok()) {
    return 1;
  }
  data::UrbanEventOptions opt311;
  opt311.num_events = 120000;
  (void)manager.AddPointDataset("311", data::GenerateUrbanEvents(opt311));
  data::UrbanEventOptions crime_options;
  crime_options.kind = data::UrbanEventKind::kCrimeIncidents;
  crime_options.num_events = 80000;
  (void)manager.AddPointDataset("crime",
                                data::GenerateUrbanEvents(crime_options));
  (void)manager.AddRegionLayer("neighborhoods",
                               data::GenerateNeighborhoods());

  // The exploration view: one column per metric.
  app::DataExplorationView view(manager, "neighborhoods");
  auto metric = [](const char* label, const char* dataset,
                   core::AggregateSpec aggregate) {
    app::ProfileMetric m;
    m.label = label;
    m.dataset = dataset;
    m.aggregate = std::move(aggregate);
    return m;
  };
  view.AddMetric(metric("pickups", "taxi", core::AggregateSpec::Count()));
  view.AddMetric(
      metric("avg fare", "taxi", core::AggregateSpec::Avg("fare_amount")));
  view.AddMetric(metric("311 complaints", "311",
                        core::AggregateSpec::Count()));
  view.AddMetric(metric("avg response h", "311",
                        core::AggregateSpec::Avg("response_hours")));
  view.AddMetric(metric("crimes", "crime", core::AggregateSpec::Count()));
  view.AddMetric(
      metric("avg severity", "crime", core::AggregateSpec::Avg("severity")));

  std::printf("Computing %zu metrics x 256 neighborhoods via Raster Join...\n",
              view.metrics().size());
  const auto profiles =
      view.ComputeProfiles(core::ExecutionMethod::kAccurateRaster);
  if (!profiles.ok()) {
    std::fprintf(stderr, "profile computation failed: %s\n",
                 profiles.status().ToString().c_str());
    return 1;
  }

  // Rank by taxi activity and show the leaders' full profiles.
  const auto ranking = app::DataExplorationView::RankByMetric(*profiles, 0);
  std::printf("\n%-10s", "region");
  for (const auto& label : profiles->metric_labels) {
    std::printf(" %14s", label.c_str());
  }
  std::printf("\n");
  for (std::size_t k = 0; k < 8; ++k) {
    const std::size_t r = ranking[k];
    std::printf("%-10s", profiles->region_names[r].c_str());
    for (std::size_t m = 0; m < profiles->metric_count(); ++m) {
      std::printf(" %14.2f", profiles->values[m][r]);
    }
    std::printf("\n");
  }

  // "Which neighborhoods feel like the busiest one?"
  const std::size_t site = ranking[0];
  const auto similar =
      app::DataExplorationView::MostSimilar(*profiles, site, 5);
  std::printf("\nNeighborhoods most similar to %s (z-score distance):\n",
              profiles->region_names[site].c_str());
  for (const auto& hit : similar) {
    std::printf("  %-10s  distance %.3f\n",
                profiles->region_names[hit.region_index].c_str(),
                hit.distance);
  }
  return 0;
}
