// Quickstart: generate a synthetic city, run the paper's spatial
// aggregation query with Raster Join, and print per-region results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"

int main() {
  using namespace urbane;

  // 1. Data: a month of synthetic NYC-style taxi pickups + neighborhoods.
  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = 200000;
  std::printf("Generating %zu taxi trips...\n", taxi_options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(taxi_options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  std::printf("Generated %zu trips over %zu neighborhoods.\n\n", taxis.size(),
              neighborhoods.size());

  // 2. Engine: one facade over all four executors.
  core::SpatialAggregation engine(taxis, neighborhoods);

  // 3. The paper's query:
  //    SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry
  //    AND P.t IN January-2009 GROUP BY R.id
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  query.filter.WithTime(1230768000, 1233446400);  // January 2009
  std::printf("Query: %s\n\n", query.ToString().c_str());

  // 4. Execute with the accurate (exact) raster join.
  const auto result =
      engine.Execute(query, core::ExecutionMethod::kAccurateRaster);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 5. Top-5 neighborhoods by pickups.
  std::vector<std::size_t> order(result->size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result->counts[a] > result->counts[b];
  });
  std::printf("Top neighborhoods by January pickups:\n");
  for (std::size_t k = 0; k < 5 && k < order.size(); ++k) {
    std::printf("  %-10s %8llu pickups\n",
                neighborhoods[order[k]].name.c_str(),
                static_cast<unsigned long long>(result->counts[order[k]]));
  }

  // 6. Same query, approximate: one order of magnitude coarser canvas.
  core::AggregationQuery approx_query = query;
  const auto approx =
      engine.Execute(approx_query, core::ExecutionMethod::kBoundedRaster);
  if (approx.ok() && !approx->error_bounds.empty()) {
    const std::size_t top = order[0];
    std::printf(
        "\nBounded raster join on %s: %.0f pickups "
        "(exact %llu, guaranteed error <= %.0f)\n",
        neighborhoods[top].name.c_str(), approx->values[top],
        static_cast<unsigned long long>(result->counts[top]),
        approx->error_bounds[top]);
  }
  return 0;
}
