#include "bench/harness.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "data/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/process_metrics.h"
#include "util/csv.h"
#include "util/timer.h"

namespace urbane::bench {

double BenchScale() {
  const char* env = std::getenv("URBANE_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double scale = std::atof(env);
  return std::max(scale, 0.05);
}

std::size_t ScaledCount(std::size_t base) {
  const double scaled = static_cast<double>(base) * BenchScale();
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

std::size_t BenchThreads() {
  const char* env = std::getenv("URBANE_BENCH_THREADS");
  if (env == nullptr) {
    return 1;
  }
  const long threads = std::atol(env);
  return threads < 1 ? 1 : static_cast<std::size_t>(threads);
}

double MeasureSeconds(const std::function<void()>& fn, int repeats) {
  fn();  // warm-up / lazy-build
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

ResultTable::ResultTable(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string ResultTable::Cell(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buf[256];
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

bool ResultTable::Finish() const {
  // Every table carries a trailing `threads` column so CSV rows from
  // different URBANE_BENCH_THREADS runs can be concatenated and still
  // distinguish the ablation axis.
  std::vector<std::string> columns = columns_;
  columns.push_back("threads");
  const std::string threads_cell = std::to_string(BenchThreads());
  std::vector<std::vector<std::string>> rows = rows_;
  for (auto& row : rows) {
    row.resize(columns_.size());
    row.push_back(threads_cell);
  }

  // Column widths.
  std::vector<std::size_t> widths(columns.size(), 0);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%s%-*s", c == 0 ? "  " : "  ",
                  static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns);
  std::size_t total = 2;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  std::printf("  %s\n", std::string(total - 2, '-').c_str());
  for (const auto& row : rows) {
    print_row(row);
  }
  std::printf("\n");

  const char* csv_dir = std::getenv("URBANE_BENCH_CSV");
  if (csv_dir == nullptr || csv_dir[0] == '\0') {
    return true;
  }
  CsvDocument doc;
  doc.header = columns;
  doc.rows = rows;
  const std::string path = std::string(csv_dir) + "/" + name_ + ".csv";
  const Status status = WriteCsvFile(doc, path);
  if (!status.ok()) {
    std::fprintf(stderr, "CSV write failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  std::printf("  (wrote %s)\n", path.c_str());

  // JSON sibling: the same table plus the metrics registry snapshot, so
  // per-pass histograms / cache counters travel with the results.
  data::JsonValue::Object root;
  root.emplace_back("name", data::JsonValue(name_));
  root.emplace_back("scale", data::JsonValue(BenchScale()));
  root.emplace_back("threads",
                    data::JsonValue(static_cast<double>(BenchThreads())));
  data::JsonValue::Array column_array;
  for (const std::string& column : columns) {
    column_array.emplace_back(column);
  }
  root.emplace_back("columns", data::JsonValue(std::move(column_array)));
  data::JsonValue::Array row_array;
  for (const auto& row : rows) {
    data::JsonValue::Array cells;
    for (const std::string& cell : row) {
      cells.emplace_back(cell);
    }
    row_array.emplace_back(std::move(cells));
  }
  root.emplace_back("rows", data::JsonValue(std::move(row_array)));
  root.emplace_back("metrics_enabled", data::JsonValue(obs::MetricsEnabled()));
  // Stamp process.* gauges (RSS, uptime, threads) so bench_report can
  // compare memory footprints across runs, not just latencies.
  if (obs::MetricsEnabled()) {
    obs::UpdateProcessGauges(obs::MetricsRegistry::Global());
  }
  root.emplace_back("metrics", obs::MetricsRegistry::Global().ToJson());

  const std::string json_path = std::string(csv_dir) + "/" + name_ + ".json";
  const Status json_status = WriteStringToFile(
      data::JsonValue(std::move(root)).Dump(2) + "\n", json_path);
  if (!json_status.ok()) {
    std::fprintf(stderr, "JSON write failed: %s\n",
                 json_status.ToString().c_str());
    return false;
  }
  std::printf("  (wrote %s)\n\n", json_path.c_str());
  return true;
}

void PrintHeader(const std::string& name, const std::string& description) {
  std::printf("== %s ==\n%s\nscale=%.2f (URBANE_BENCH_SCALE)\n\n",
              name.c_str(), description.c_str(), BenchScale());
}

}  // namespace urbane::bench
