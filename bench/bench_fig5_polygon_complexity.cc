// F5 — latency vs polygon complexity (Raster Join evaluation): two sweeps,
// (a) number of regions at fixed vertex count, (b) vertices per region at a
// fixed region count. Expected shape: the baselines' exact point-in-polygon
// tests scale with vertex count, so they degrade steeply in sweep (b);
// raster join only pays vertex cost during (cheap) edge rasterization and is
// nearly flat until the polygon boundary dominates the canvas.
#include <cstdio>

#include "bench/harness.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/timer.h"

namespace {

void RunSweep(const char* title, const char* csv_name,
              const urbane::data::PointTable& taxis,
              const std::vector<urbane::data::RegionSet>& region_sets,
              const std::vector<std::string>& labels) {
  using namespace urbane;
  std::printf("%s\n", title);
  bench::ResultTable table(
      csv_name, {"config", "regions", "vertices", "scan", "index", "raster",
                 "accurate"});
  for (std::size_t i = 0; i < region_sets.size(); ++i) {
    const data::RegionSet& regions = region_sets[i];
    core::SpatialAggregation engine(taxis, regions);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    double seconds[4];
    const core::ExecutionMethod methods[] = {
        core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster};
    for (int m = 0; m < 4; ++m) {
      seconds[m] = bench::MeasureSeconds(
          [&] { (void)engine.Execute(query, methods[m]); });
    }
    table.AddRow({labels[i], bench::ResultTable::Cell("%zu", regions.size()),
                  bench::ResultTable::Cell("%zu", regions.TotalVertexCount()),
                  FormatDuration(seconds[0]), FormatDuration(seconds[1]),
                  FormatDuration(seconds[2]), FormatDuration(seconds[3])});
  }
  table.Finish();
}

}  // namespace

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 5: latency vs polygon complexity",
      "COUNT queries; sweep (a) region count, sweep (b) vertices/region.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(500'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);

  // Sweep (a): region count, ~64 vertices each.
  {
    std::vector<data::RegionSet> sets;
    std::vector<std::string> labels;
    for (const std::size_t count : {64, 128, 256, 512, 1024}) {
      data::RandomRegionOptions region_options;
      region_options.count = count;
      region_options.vertices_per_region = 64;
      region_options.seed = 5;
      sets.push_back(data::GenerateRandomRegions(region_options));
      labels.push_back(bench::ResultTable::Cell("%zu regions", count));
    }
    RunSweep("sweep (a): region count at 64 vertices/region",
             "fig5a_region_count", taxis, sets, labels);
  }

  // Sweep (b): vertex count at 128 regions.
  {
    std::vector<data::RegionSet> sets;
    std::vector<std::string> labels;
    for (const std::size_t vertices : {8, 32, 128, 512, 2048}) {
      data::RandomRegionOptions region_options;
      region_options.count = 128;
      region_options.vertices_per_region = vertices;
      region_options.seed = 6;
      sets.push_back(data::GenerateRandomRegions(region_options));
      labels.push_back(bench::ResultTable::Cell("%zu verts", vertices));
    }
    RunSweep("sweep (b): vertices/region at 128 regions",
             "fig5b_vertex_count", taxis, sets, labels);
  }
  return 0;
}
