// F6 — accuracy vs raster resolution (Raster Join evaluation): the bounded
// raster join's relative error and latency as the canvas grows, with the
// accurate variant as the exact reference. Expected shape: error and its
// reported bound shrink roughly linearly in pixel size (so ~2x per
// resolution doubling); latency grows with canvas area; the accurate
// variant is exact at every resolution, paying more exact boundary tests on
// coarse canvases.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "core/accurate_join.h"
#include "core/raster_join.h"
#include "core/scan_join.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 6: accuracy vs canvas resolution",
      "Bounded raster join error / bound / latency across resolutions; "
      "accurate variant shown as the exact hybrid.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::AggregationQuery query;
  query.points = &taxis;
  query.regions = &neighborhoods;
  query.aggregate = core::AggregateSpec::Count();

  auto scan = core::ScanJoin::Create(taxis, neighborhoods);
  if (!scan.ok()) return 1;
  const auto exact = (*scan)->Execute(query);
  if (!exact.ok()) return 1;
  double exact_total = 0.0;
  for (const double v : exact->values) exact_total += v;

  bench::ResultTable table(
      "fig6_accuracy_resolution",
      {"resolution", "epsilon(m)", "bounded-latency", "avg-rel-error",
       "max-rel-error", "bound-held", "accurate-latency", "exact-pip-tests"});

  for (const int resolution : {128, 256, 512, 1024, 2048, 4096}) {
    core::RasterJoinOptions raster_options;
    raster_options.resolution = resolution;
    auto bounded =
        core::BoundedRasterJoin::Create(taxis, neighborhoods, raster_options);
    auto accurate = core::AccurateRasterJoin::Create(taxis, neighborhoods,
                                                     raster_options);
    if (!bounded.ok() || !accurate.ok()) continue;

    core::QueryResult approx;
    const double bounded_seconds = bench::MeasureSeconds([&] {
      auto r = (*bounded)->Execute(query);
      if (r.ok()) approx = std::move(*r);
    });
    const double accurate_seconds = bench::MeasureSeconds(
        [&] { (void)(*accurate)->Execute(query); });
    (void)(*accurate)->Execute(query);  // refresh stats

    double rel_error_sum = 0.0;
    double rel_error_max = 0.0;
    std::size_t measured = 0;
    bool bound_held = true;
    for (std::size_t r = 0; r < neighborhoods.size(); ++r) {
      const double truth = exact->values[r];
      const double err = std::fabs(approx.values[r] - truth);
      if (err > approx.error_bounds[r] + 1e-6) {
        bound_held = false;
      }
      if (truth > 0) {
        rel_error_sum += err / truth;
        rel_error_max = std::max(rel_error_max, err / truth);
        ++measured;
      }
    }
    table.AddRow(
        {bench::ResultTable::Cell("%d", resolution),
         bench::ResultTable::Cell("%.1f", (*bounded)->EpsilonWorld()),
         FormatDuration(bounded_seconds),
         bench::ResultTable::Cell(
             "%.4f%%", 100.0 * rel_error_sum /
                           std::max<std::size_t>(1, measured)),
         bench::ResultTable::Cell("%.4f%%", 100.0 * rel_error_max),
         bound_held ? "yes" : "NO",
         FormatDuration(accurate_seconds),
         bench::ResultTable::Cell("%zu",
                                  (*accurate)->stats().pip_tests)});
  }
  table.Finish();
  return 0;
}
