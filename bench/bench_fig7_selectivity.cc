// F7 — latency vs filter selectivity (Raster Join evaluation): ad-hoc
// attribute filters are the workload pre-aggregation cannot serve. Expected
// shape: raster join latency falls with the surviving point count (only
// survivors get splatted); scan/index baselines still visit every point to
// evaluate the filter, so they flatten out.
#include <cstdio>

#include "bench/harness.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 7: latency vs filter selectivity",
      "COUNT per neighborhood under fare-amount filters of varying "
      "selectivity.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  core::SpatialAggregation engine(taxis, neighborhoods);

  // Build fare thresholds hitting target selectivities via the sorted
  // column (quantiles).
  const float* fare_col = taxis.AttributeByName("fare_amount");
  std::vector<float> fares(fare_col, fare_col + taxis.size());
  std::sort(fares.begin(), fares.end());
  auto quantile = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(fares.size() - 1));
    return static_cast<double>(fares[idx]);
  };

  bench::ResultTable table("fig7_selectivity",
                           {"selectivity", "surviving", "scan", "index",
                            "raster", "accurate"});
  for (const double selectivity : {1.0, 0.5, 0.25, 0.10, 0.05, 0.01}) {
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    if (selectivity < 1.0) {
      query.filter.WithRange("fare_amount", 0.0, quantile(selectivity));
    }
    const double actual =
        engine.EstimateSelectivity(query.filter).value_or(1.0);
    double seconds[4];
    const core::ExecutionMethod methods[] = {
        core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster};
    for (int m = 0; m < 4; ++m) {
      seconds[m] = bench::MeasureSeconds(
          [&] { (void)engine.Execute(query, methods[m]); });
    }
    table.AddRow(
        {bench::ResultTable::Cell("%.0f%%", 100.0 * selectivity),
         bench::ResultTable::Cell(
             "%zu", static_cast<std::size_t>(actual * taxis.size())),
         FormatDuration(seconds[0]), FormatDuration(seconds[1]),
         FormatDuration(seconds[2]), FormatDuration(seconds[3])});
  }
  table.Finish();
  return 0;
}
