// F4 — latency vs number of points (Raster Join evaluation): COUNT over the
// neighborhood layer as the point set grows. Expected shape: the scan
// baseline grows linearly with a large constant (R-tree probe + exact test
// per point); the index join is cheaper per query but still touches every
// boundary-cell point; both raster joins grow with a much smaller constant
// (one splat per point + canvas sweep), winning by an order of magnitude at
// the top of the sweep.
//
// Pass --grid-sweep to additionally ablate the index join's cell size,
// --threads-sweep to run the bounded raster join at the largest scale
// across 1/2/4/8 worker threads (URBANE_BENCH_THREADS sets the thread
// count for the main sweep; default 1 = serial), or --obs-overhead to
// measure the observability subsystem's cost on the hot splat path
// (bounded raster with metrics+tracing off vs on; the default sweep
// always runs with obs disabled so baselines stay comparable).
#include <cstdio>
#include <cstring>

#include "bench/harness.h"
#include "core/quadtree_join.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace urbane;
  const bool grid_sweep =
      argc > 1 && std::strcmp(argv[1], "--grid-sweep") == 0;
  const bool threads_sweep =
      argc > 1 && std::strcmp(argv[1], "--threads-sweep") == 0;
  const bool obs_overhead =
      argc > 1 && std::strcmp(argv[1], "--obs-overhead") == 0;
  bench::PrintHeader(
      "Figure 4: latency vs point count",
      "COUNT per neighborhood; per-query latency (prep excluded, reported "
      "separately in Table 2).");

  const std::size_t bench_threads = bench::BenchThreads();
  ThreadPool pool(bench_threads);
  core::ExecutionContext exec;
  if (bench_threads > 1) {
    exec.pool = &pool;
    exec.num_threads = bench_threads;
  }

  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  const std::size_t sweep[] = {
      bench::ScaledCount(50'000), bench::ScaledCount(125'000),
      bench::ScaledCount(250'000), bench::ScaledCount(500'000),
      bench::ScaledCount(1'000'000), bench::ScaledCount(2'000'000)};

  bench::ResultTable table(
      "fig4_scaling_points",
      {"points", "scan", "index", "quadtree", "raster", "accurate",
       "speedup(acc/scan)"});

  for (const std::size_t num_points : sweep) {
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    core::SpatialAggregation engine(taxis, neighborhoods,
                                    core::RasterJoinOptions(),
                                    core::IndexJoinOptions(), exec);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();

    double seconds[4] = {0, 0, 0, 0};
    const core::ExecutionMethod methods[] = {
        core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster};
    for (int m = 0; m < 4; ++m) {
      seconds[m] = bench::MeasureSeconds(
          [&] { (void)engine.Execute(query, methods[m]); });
    }
    auto quadtree = core::QuadtreeJoin::Create(taxis, neighborhoods);
    core::AggregationQuery direct = query;
    direct.points = &taxis;
    direct.regions = &neighborhoods;
    const double quadtree_seconds =
        quadtree.ok() ? bench::MeasureSeconds(
                            [&] { (void)(*quadtree)->Execute(direct); })
                      : 0.0;
    table.AddRow({bench::ResultTable::Cell("%zu", num_points),
                  FormatDuration(seconds[0]), FormatDuration(seconds[1]),
                  FormatDuration(quadtree_seconds),
                  FormatDuration(seconds[2]), FormatDuration(seconds[3]),
                  bench::ResultTable::Cell("%.1fx",
                                           seconds[0] / seconds[3])});
  }
  table.Finish();

  if (grid_sweep) {
    std::printf("grid-cell-size ablation (index join, %zu points):\n",
                sweep[3]);
    data::TaxiGeneratorOptions options;
    options.num_trips = sweep[3];
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    bench::ResultTable ablation("fig4_grid_sweep",
                                {"points-per-cell", "build", "query"});
    for (const double target : {16.0, 64.0, 256.0, 1024.0}) {
      core::IndexJoinOptions index_options;
      index_options.target_points_per_cell = target;
      auto join = core::IndexJoin::Create(taxis, neighborhoods,
                                          index_options);
      if (!join.ok()) continue;
      core::AggregationQuery query;
      query.points = &taxis;
      query.regions = &neighborhoods;
      const double q = bench::MeasureSeconds(
          [&] { (void)(*join)->Execute(query); });
      ablation.AddRow({bench::ResultTable::Cell("%.0f", target),
                       FormatDuration((*join)->stats().build_seconds),
                       FormatDuration(q)});
    }
    ablation.Finish();
  }

  if (threads_sweep) {
    const std::size_t num_points = sweep[5];
    std::printf("threads ablation (bounded raster join, %zu points):\n",
                num_points);
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    query.points = &taxis;
    query.regions = &neighborhoods;
    bench::ResultTable ablation("fig4_threads_sweep",
                                {"workers", "raster", "speedup(vs 1)"});
    double serial_seconds = 0.0;
    for (const std::size_t workers : {1, 2, 4, 8}) {
      ThreadPool sweep_pool(workers);
      core::RasterJoinOptions raster_options;
      if (workers > 1) {
        raster_options.exec.pool = &sweep_pool;
        raster_options.exec.num_threads = workers;
      }
      auto join = core::BoundedRasterJoin::Create(taxis, neighborhoods,
                                                  raster_options);
      if (!join.ok()) continue;
      const double q = bench::MeasureSeconds(
          [&] { (void)(*join)->Execute(query); });
      if (workers == 1) serial_seconds = q;
      ablation.AddRow({bench::ResultTable::Cell("%zu", workers),
                       FormatDuration(q),
                       bench::ResultTable::Cell("%.2fx",
                                                serial_seconds / q)});
    }
    ablation.Finish();
  }

  if (obs_overhead) {
    const std::size_t num_points = sweep[4];
    std::printf("observability overhead (bounded raster join, %zu points):\n",
                num_points);
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    core::SpatialAggregation engine(taxis, neighborhoods,
                                    core::RasterJoinOptions(),
                                    core::IndexJoinOptions(), exec);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    bench::ResultTable ablation("fig4_obs_overhead",
                                {"obs", "raster", "overhead(vs off)"});
    double off_seconds = 0.0;
    for (const bool enabled : {false, true}) {
      obs::SetMetricsEnabled(enabled);
      obs::SetTracingEnabled(enabled);
      obs::QueryTrace trace;
      core::AggregationQuery traced = query;
      traced.trace = enabled ? &trace : nullptr;
      const double q = bench::MeasureSeconds([&] {
        trace.Clear();
        (void)engine.Execute(traced, core::ExecutionMethod::kBoundedRaster);
      });
      if (!enabled) off_seconds = q;
      ablation.AddRow(
          {enabled ? "on" : "off", FormatDuration(q),
           bench::ResultTable::Cell(
               "%+.2f%%", off_seconds > 0.0
                              ? 100.0 * (q - off_seconds) / off_seconds
                              : 0.0)});
    }
    obs::SetMetricsEnabled(false);
    obs::SetTracingEnabled(false);
    ablation.Finish();
  }
  return 0;
}
