// F4 — latency vs number of points (Raster Join evaluation): COUNT over the
// neighborhood layer as the point set grows. Expected shape: the scan
// baseline grows linearly with a large constant (R-tree probe + exact test
// per point); the index join is cheaper per query but still touches every
// boundary-cell point; both raster joins grow with a much smaller constant
// (one splat per point + canvas sweep), winning by an order of magnitude at
// the top of the sweep.
//
// Pass --grid-sweep to additionally ablate the index join's cell size,
// --threads-sweep to run the bounded raster join at the largest scale
// across 1/2/4/8 worker threads (URBANE_BENCH_THREADS sets the thread
// count for the main sweep; default 1 = serial), or --obs-overhead to
// measure the observability subsystem's cost on the hot splat path
// (bounded raster with metrics+tracing off vs on; the default sweep
// always runs with obs disabled so baselines stay comparable).
// Pass --store to run the out-of-core variant: each scale is converted to
// a UST1 block store, re-opened in pread mode behind a block cache bounded
// by URBANE_BENCH_STORE_BUDGET_MB (default 8 MB — far below the raw column
// bytes at the top of the sweep), and scanned block-at-a-time; the table
// reports blocks read vs pruned so bench_report can derive the pruning
// ratio.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/harness.h"
#include "core/quadtree_join.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "store/block_cache.h"
#include "store/store_reader.h"
#include "store/store_scan_join.h"
#include "store/store_writer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace urbane;
  const bool grid_sweep =
      argc > 1 && std::strcmp(argv[1], "--grid-sweep") == 0;
  const bool threads_sweep =
      argc > 1 && std::strcmp(argv[1], "--threads-sweep") == 0;
  const bool obs_overhead =
      argc > 1 && std::strcmp(argv[1], "--obs-overhead") == 0;
  const bool store_mode = argc > 1 && std::strcmp(argv[1], "--store") == 0;
  bench::PrintHeader(
      "Figure 4: latency vs point count",
      "COUNT per neighborhood; per-query latency (prep excluded, reported "
      "separately in Table 2).");

  const std::size_t bench_threads = bench::BenchThreads();
  ThreadPool pool(bench_threads);
  core::ExecutionContext exec;
  if (bench_threads > 1) {
    exec.pool = &pool;
    exec.num_threads = bench_threads;
  }

  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  const std::size_t sweep[] = {
      bench::ScaledCount(50'000), bench::ScaledCount(125'000),
      bench::ScaledCount(250'000), bench::ScaledCount(500'000),
      bench::ScaledCount(1'000'000), bench::ScaledCount(2'000'000)};

  bench::ResultTable table(
      "fig4_scaling_points",
      {"points", "scan", "index", "quadtree", "raster", "accurate",
       "speedup(acc/scan)"});

  for (const std::size_t num_points : sweep) {
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    core::SpatialAggregation engine(taxis, neighborhoods,
                                    core::RasterJoinOptions(),
                                    core::IndexJoinOptions(), exec);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();

    double seconds[4] = {0, 0, 0, 0};
    const core::ExecutionMethod methods[] = {
        core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster};
    for (int m = 0; m < 4; ++m) {
      seconds[m] = bench::MeasureSeconds(
          [&] { (void)engine.Execute(query, methods[m]); });
    }
    auto quadtree = core::QuadtreeJoin::Create(taxis, neighborhoods);
    core::AggregationQuery direct = query;
    direct.points = &taxis;
    direct.regions = &neighborhoods;
    const double quadtree_seconds =
        quadtree.ok() ? bench::MeasureSeconds(
                            [&] { (void)(*quadtree)->Execute(direct); })
                      : 0.0;
    table.AddRow({bench::ResultTable::Cell("%zu", num_points),
                  FormatDuration(seconds[0]), FormatDuration(seconds[1]),
                  FormatDuration(quadtree_seconds),
                  FormatDuration(seconds[2]), FormatDuration(seconds[3]),
                  bench::ResultTable::Cell("%.1fx",
                                           seconds[0] / seconds[3])});
  }
  table.Finish();

  if (store_mode) {
    const char* budget_env = std::getenv("URBANE_BENCH_STORE_BUDGET_MB");
    const std::uint64_t budget_mb =
        budget_env != nullptr ? std::strtoull(budget_env, nullptr, 10) : 8;
    const std::uint64_t budget_bytes = budget_mb << 20;
    std::printf(
        "out-of-core block store (pread + %llu MB block cache budget):\n",
        static_cast<unsigned long long>(budget_mb));
    // Run with the registry on so the store.* counters (blocks read/pruned,
    // cache hits/evictions) land in the fig4_store.json snapshot and
    // bench_report can track the pruning ratio in BENCH_TRAJECTORY.json.
    const bool metrics_were_enabled = obs::MetricsEnabled();
    obs::SetMetricsEnabled(true);
    bench::ResultTable store_table(
        "fig4_store",
        {"points", "raw-MB", "full-scan", "window-scan", "blocks-total",
         "blocks-read", "blocks-pruned", "pruned-%"});
    for (const std::size_t num_points : sweep) {
      data::TaxiGeneratorOptions options;
      options.num_trips = num_points;
      const data::PointTable taxis = data::GenerateTaxiTrips(options);
      const std::string path = "/tmp/urbane_fig4_" +
                               std::to_string(::getpid()) + ".ust";
      store::StoreWriterOptions write_options;
      auto written = store::WritePointStore(taxis, path, write_options);
      if (!written.ok()) {
        std::printf("  store write failed: %s\n",
                    written.status().ToString().c_str());
        break;
      }
      store::StoreReaderOptions read_options;
      read_options.use_mmap = false;  // force the paged out-of-core path
      auto reader = store::StoreReader::Open(path, read_options);
      if (!reader.ok()) {
        std::printf("  store open failed: %s\n",
                    reader.status().ToString().c_str());
        break;
      }
      const std::uint64_t row_bytes =
          16 + 4 * reader->schema().attribute_count();
      const std::uint64_t raw_bytes = reader->row_count() * row_bytes;
      const std::uint64_t block_bytes = write_options.block_rows * row_bytes;
      store::BlockCacheOptions cache_options;
      cache_options.capacity_blocks = static_cast<std::size_t>(
          std::max<std::uint64_t>(1, budget_bytes / block_bytes));
      store::BlockCache cache(&*reader, cache_options);
      auto join = store::StoreScanJoin::Create(*reader, cache,
                                               neighborhoods);
      if (!join.ok()) break;

      core::AggregationQuery full;
      full.aggregate = core::AggregateSpec::Count();
      full.regions = &neighborhoods;
      const double full_seconds = bench::MeasureSeconds(
          [&] { (void)(*join)->Execute(full); });

      // Selective viewport: the center quarter of the data's extent. Blocks
      // are Morton-clustered, so most fall entirely outside the window and
      // are pruned before any byte of them is read.
      const geometry::BoundingBox bounds = reader->zone_maps().Bounds();
      core::AggregationQuery window = full;
      window.filter.spatial_window = geometry::BoundingBox(
          bounds.min_x + bounds.Width() * 0.375,
          bounds.min_y + bounds.Height() * 0.375,
          bounds.max_x - bounds.Width() * 0.375,
          bounds.max_y - bounds.Height() * 0.375);
      const double window_seconds = bench::MeasureSeconds(
          [&] { (void)(*join)->Execute(window); });
      const store::StoreScanStats& ss = (*join)->store_stats();
      store_table.AddRow(
          {bench::ResultTable::Cell("%zu", num_points),
           bench::ResultTable::Cell("%.1f", raw_bytes / (1024.0 * 1024.0)),
           FormatDuration(full_seconds), FormatDuration(window_seconds),
           bench::ResultTable::Cell("%llu", static_cast<unsigned long long>(
                                                ss.blocks_total)),
           bench::ResultTable::Cell("%llu", static_cast<unsigned long long>(
                                                ss.blocks_scanned)),
           bench::ResultTable::Cell("%llu", static_cast<unsigned long long>(
                                                ss.blocks_pruned)),
           bench::ResultTable::Cell(
               "%.1f%%", ss.blocks_total > 0
                             ? 100.0 * ss.blocks_pruned / ss.blocks_total
                             : 0.0)});
      ::unlink(path.c_str());
    }
    store_table.Finish();
    obs::SetMetricsEnabled(metrics_were_enabled);
  }

  if (grid_sweep) {
    std::printf("grid-cell-size ablation (index join, %zu points):\n",
                sweep[3]);
    data::TaxiGeneratorOptions options;
    options.num_trips = sweep[3];
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    bench::ResultTable ablation("fig4_grid_sweep",
                                {"points-per-cell", "build", "query"});
    for (const double target : {16.0, 64.0, 256.0, 1024.0}) {
      core::IndexJoinOptions index_options;
      index_options.target_points_per_cell = target;
      auto join = core::IndexJoin::Create(taxis, neighborhoods,
                                          index_options);
      if (!join.ok()) continue;
      core::AggregationQuery query;
      query.points = &taxis;
      query.regions = &neighborhoods;
      const double q = bench::MeasureSeconds(
          [&] { (void)(*join)->Execute(query); });
      ablation.AddRow({bench::ResultTable::Cell("%.0f", target),
                       FormatDuration((*join)->stats().build_seconds),
                       FormatDuration(q)});
    }
    ablation.Finish();
  }

  if (threads_sweep) {
    const std::size_t num_points = sweep[5];
    std::printf("threads ablation (bounded raster join, %zu points):\n",
                num_points);
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    query.points = &taxis;
    query.regions = &neighborhoods;
    bench::ResultTable ablation("fig4_threads_sweep",
                                {"workers", "raster", "speedup(vs 1)"});
    double serial_seconds = 0.0;
    for (const std::size_t workers : {1, 2, 4, 8}) {
      ThreadPool sweep_pool(workers);
      core::RasterJoinOptions raster_options;
      if (workers > 1) {
        raster_options.exec.pool = &sweep_pool;
        raster_options.exec.num_threads = workers;
      }
      auto join = core::BoundedRasterJoin::Create(taxis, neighborhoods,
                                                  raster_options);
      if (!join.ok()) continue;
      const double q = bench::MeasureSeconds(
          [&] { (void)(*join)->Execute(query); });
      if (workers == 1) serial_seconds = q;
      ablation.AddRow({bench::ResultTable::Cell("%zu", workers),
                       FormatDuration(q),
                       bench::ResultTable::Cell("%.2fx",
                                                serial_seconds / q)});
    }
    ablation.Finish();
  }

  if (obs_overhead) {
    const std::size_t num_points = sweep[4];
    std::printf("observability overhead (bounded raster join, %zu points):\n",
                num_points);
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    core::SpatialAggregation engine(taxis, neighborhoods,
                                    core::RasterJoinOptions(),
                                    core::IndexJoinOptions(), exec);
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    bench::ResultTable ablation("fig4_obs_overhead",
                                {"obs", "raster", "overhead(vs off)"});
    double off_seconds = 0.0;
    for (const bool enabled : {false, true}) {
      obs::SetMetricsEnabled(enabled);
      obs::SetTracingEnabled(enabled);
      obs::QueryTrace trace;
      core::AggregationQuery traced = query;
      traced.trace = enabled ? &trace : nullptr;
      const double q = bench::MeasureSeconds([&] {
        trace.Clear();
        (void)engine.Execute(traced, core::ExecutionMethod::kBoundedRaster);
      });
      if (!enabled) off_seconds = q;
      ablation.AddRow(
          {enabled ? "on" : "off", FormatDuration(q),
           bench::ResultTable::Cell(
               "%+.2f%%", off_seconds > 0.0
                              ? 100.0 * (q - off_seconds) / off_seconds
                              : 0.0)});
    }
    obs::SetMetricsEnabled(false);
    obs::SetTracingEnabled(false);
    ablation.Finish();
  }
  return 0;
}
