// F1 — the paper's Figure 1: taxi pickups for January 2009 aggregated over
// NYC neighborhoods, rendered as a choropleth. Regenerates the frame with
// each executor and reports the latency of producing it (query + render).
#include <cstdio>

#include "bench/harness.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/map_view.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 1: Urbane map view",
      "January-2009 pickups per neighborhood; frame latency per executor. "
      "Expected shape: raster joins are fastest once the canvas is warm; "
      "the bounded variant's error stays under its reported bound.");

  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", taxi_options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(taxi_options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::SpatialAggregation engine(taxis, neighborhoods);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  query.filter.WithTime(1230768000, 1233446400);

  bench::ResultTable table("fig1_mapview",
                           {"executor", "query", "render", "total",
                            "max-region", "sum-of-counts"});
  const core::ExecutionMethod methods[] = {
      core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
      core::ExecutionMethod::kBoundedRaster,
      core::ExecutionMethod::kAccurateRaster};
  for (const auto method : methods) {
    core::QueryResult result;
    const double query_seconds = bench::MeasureSeconds([&] {
      auto r = engine.Execute(query, method);
      if (r.ok()) result = std::move(*r);
    });
    app::MapRender render;
    const double render_seconds = bench::MeasureSeconds([&] {
      auto r = app::RenderChoropleth(neighborhoods, result);
      if (r.ok()) render = std::move(*r);
    });
    std::uint64_t total_count = 0;
    std::uint64_t max_count = 0;
    for (const auto c : result.counts) {
      total_count += c;
      max_count = std::max(max_count, c);
    }
    table.AddRow({core::ExecutionMethodToString(method),
                  FormatDuration(query_seconds),
                  FormatDuration(render_seconds),
                  FormatDuration(query_seconds + render_seconds),
                  bench::ResultTable::Cell(
                      "%llu", static_cast<unsigned long long>(max_count)),
                  bench::ResultTable::Cell(
                      "%llu", static_cast<unsigned long long>(total_count))});
    if (method == core::ExecutionMethod::kAccurateRaster) {
      const auto status =
          app::RenderChoroplethToFile(neighborhoods, result, "figure1.ppm");
      if (status.ok()) {
        std::printf("wrote figure1.ppm (the Figure 1 frame)\n\n");
      }
    }
  }
  table.Finish();
  return 0;
}
