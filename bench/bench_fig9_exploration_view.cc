// F9 — data exploration view (demo Section 3.1): multi-data-set per-region
// profiles, ranking and similarity — the feature the architects use to
// compare a candidate neighborhood against the city. Reports the latency of
// refreshing the full profile matrix per executor and prints the resulting
// leaders, mirroring the view's contents.
#include <cstdio>

#include "bench/harness.h"
#include "data/event_generator.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/dataset_manager.h"
#include "urbane/exploration_view.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 9: data exploration view",
      "6-metric x 256-neighborhood profile matrix over 3 data sets; "
      "refresh latency per executor + the view's ranking/similarity output.");

  app::DatasetManager manager;
  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = bench::ScaledCount(600'000);
  std::printf("generating data sets...\n\n");
  (void)manager.AddPointDataset("taxi",
                                data::GenerateTaxiTrips(taxi_options));
  data::UrbanEventOptions opt311;
  opt311.num_events = bench::ScaledCount(200'000);
  (void)manager.AddPointDataset("311", data::GenerateUrbanEvents(opt311));
  data::UrbanEventOptions crime_options;
  crime_options.kind = data::UrbanEventKind::kCrimeIncidents;
  crime_options.num_events = bench::ScaledCount(120'000);
  (void)manager.AddPointDataset("crime",
                                data::GenerateUrbanEvents(crime_options));
  (void)manager.AddRegionLayer("hoods", data::GenerateNeighborhoods());

  app::DataExplorationView view(manager, "hoods");
  auto metric = [](const char* label, const char* dataset,
                   core::AggregateSpec aggregate) {
    app::ProfileMetric m;
    m.label = label;
    m.dataset = dataset;
    m.aggregate = std::move(aggregate);
    return m;
  };
  view.AddMetric(metric("pickups", "taxi", core::AggregateSpec::Count()));
  view.AddMetric(
      metric("avg-fare", "taxi", core::AggregateSpec::Avg("fare_amount")));
  view.AddMetric(metric("311s", "311", core::AggregateSpec::Count()));
  view.AddMetric(metric("response-h", "311",
                        core::AggregateSpec::Avg("response_hours")));
  view.AddMetric(metric("crimes", "crime", core::AggregateSpec::Count()));
  view.AddMetric(
      metric("severity", "crime", core::AggregateSpec::Avg("severity")));

  bench::ResultTable latency("fig9_exploration_latency",
                             {"executor", "matrix-refresh"});
  app::ProfileTable profiles;
  for (const auto method : {core::ExecutionMethod::kScan,
                            core::ExecutionMethod::kAccurateRaster}) {
    const double seconds = bench::MeasureSeconds([&] {
      auto p = view.ComputeProfiles(method);
      if (p.ok()) profiles = std::move(*p);
    }, 2);
    latency.AddRow(
        {core::ExecutionMethodToString(method), FormatDuration(seconds)});
  }
  latency.Finish();

  const auto ranking = app::DataExplorationView::RankByMetric(profiles, 0);
  bench::ResultTable leaders("fig9_leaders",
                             {"rank", "region", "pickups", "avg-fare",
                              "311s", "crimes"});
  for (std::size_t k = 0; k < 5 && k < ranking.size(); ++k) {
    const std::size_t r = ranking[k];
    leaders.AddRow({bench::ResultTable::Cell("%zu", k + 1),
                    profiles.region_names[r],
                    bench::ResultTable::Cell("%.0f", profiles.values[0][r]),
                    bench::ResultTable::Cell("%.2f", profiles.values[1][r]),
                    bench::ResultTable::Cell("%.0f", profiles.values[2][r]),
                    bench::ResultTable::Cell("%.0f", profiles.values[4][r])});
  }
  leaders.Finish();

  const auto similar =
      app::DataExplorationView::MostSimilar(profiles, ranking[0], 3);
  std::printf("most similar to %s:",
              profiles.region_names[ranking[0]].c_str());
  for (const auto& hit : similar) {
    std::printf("  %s (d=%.2f)",
                profiles.region_names[hit.region_index].c_str(),
                hit.distance);
  }
  std::printf("\n");
  return 0;
}
