// T3 — latency by aggregate function (Raster Join evaluation): COUNT needs
// one render target, SUM/AVG two, MIN/MAX use min/max blending. Expected
// shape: all aggregates cost about the same per method (the join dominates,
// not the accumulator), which is the point — AGG is a plug-in.
#include <cstdio>

#include "bench/harness.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader("Table 3: latency by aggregate function",
                     "fare_amount aggregates per neighborhood.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(500'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  core::SpatialAggregation engine(taxis, neighborhoods);

  const struct {
    const char* label;
    core::AggregateSpec spec;
  } aggregates[] = {
      {"COUNT(*)", core::AggregateSpec::Count()},
      {"SUM(fare)", core::AggregateSpec::Sum("fare_amount")},
      {"AVG(fare)", core::AggregateSpec::Avg("fare_amount")},
      {"MIN(fare)", core::AggregateSpec::Min("fare_amount")},
      {"MAX(fare)", core::AggregateSpec::Max("fare_amount")},
  };

  bench::ResultTable table(
      "table3_aggregates",
      {"aggregate", "scan", "index", "raster", "accurate"});
  for (const auto& aggregate : aggregates) {
    core::AggregationQuery query;
    query.aggregate = aggregate.spec;
    double seconds[4];
    const core::ExecutionMethod methods[] = {
        core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster};
    for (int m = 0; m < 4; ++m) {
      seconds[m] = bench::MeasureSeconds(
          [&] { (void)engine.Execute(query, methods[m]); });
    }
    table.AddRow({aggregate.label, FormatDuration(seconds[0]),
                  FormatDuration(seconds[1]), FormatDuration(seconds[2]),
                  FormatDuration(seconds[3])});
  }
  table.Finish();
  return 0;
}
