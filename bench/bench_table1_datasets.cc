// T1 — data set inventory (demo Section 3): the synthetic stand-ins for the
// NYC open data sets the demo loads, with the statistics that matter to the
// spatial-aggregation workload.
#include <cstdio>

#include "bench/harness.h"
#include "data/event_generator.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Table 1: data sets",
      "Synthetic equivalents of the demo's NYC feeds (see DESIGN.md "
      "substitution table).");

  bench::ResultTable table(
      "table1_datasets",
      {"dataset", "records", "attributes", "days", "skew(top1%cells)",
       "memory"});

  auto add_points = [&](const char* name, const data::PointTable& points) {
    const auto [t0, t1] = points.TimeRange();
    // Spatial skew: share of points in the densest 1% of a 64x64 grid.
    const auto bounds = points.Bounds();
    constexpr int kGrid = 64;
    std::vector<std::size_t> cells(kGrid * kGrid, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      int cx = static_cast<int>((points.x(i) - bounds.min_x) /
                                bounds.Width() * kGrid);
      int cy = static_cast<int>((points.y(i) - bounds.min_y) /
                                bounds.Height() * kGrid);
      cx = std::clamp(cx, 0, kGrid - 1);
      cy = std::clamp(cy, 0, kGrid - 1);
      ++cells[static_cast<std::size_t>(cy) * kGrid + cx];
    }
    std::sort(cells.rbegin(), cells.rend());
    std::size_t top = 0;
    for (int i = 0; i < kGrid * kGrid / 100; ++i) {
      top += cells[static_cast<std::size_t>(i)];
    }
    std::string attrs;
    for (const auto& a : points.schema().attribute_names()) {
      if (!attrs.empty()) attrs += ",";
      attrs += a;
    }
    table.AddRow({name, bench::ResultTable::Cell("%zu", points.size()), attrs,
                  bench::ResultTable::Cell(
                      "%.0f", static_cast<double>(t1 - t0) / 86400.0),
                  bench::ResultTable::Cell(
                      "%.1f%%", 100.0 * static_cast<double>(top) /
                                    static_cast<double>(points.size())),
                  bench::ResultTable::Cell(
                      "%.1fMB", static_cast<double>(points.MemoryBytes()) /
                                    (1024.0 * 1024.0))});
  };

  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = bench::ScaledCount(1'000'000);
  add_points("taxi-pickups", data::GenerateTaxiTrips(taxi_options));

  data::UrbanEventOptions opt311;
  opt311.num_events = bench::ScaledCount(250'000);
  add_points("311-complaints", data::GenerateUrbanEvents(opt311));

  data::UrbanEventOptions crime;
  crime.kind = data::UrbanEventKind::kCrimeIncidents;
  crime.num_events = bench::ScaledCount(150'000);
  add_points("crime-incidents", data::GenerateUrbanEvents(crime));

  table.Finish();

  bench::ResultTable regions(
      "table1_regions", {"layer", "regions", "vertices", "memory"});
  auto add_regions = [&](const char* name, const data::RegionSet& set) {
    regions.AddRow({name, bench::ResultTable::Cell("%zu", set.size()),
                    bench::ResultTable::Cell("%zu", set.TotalVertexCount()),
                    bench::ResultTable::Cell(
                        "%.2fMB", static_cast<double>(set.MemoryBytes()) /
                                      (1024.0 * 1024.0))});
  };
  add_regions("boroughs", data::GenerateBoroughs());
  add_regions("neighborhoods", data::GenerateNeighborhoods());
  add_regions("census-tracts", data::GenerateCensusTracts());
  regions.Finish();
  return 0;
}
