#ifndef URBANE_BENCH_HARNESS_H_
#define URBANE_BENCH_HARNESS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace urbane::bench {

/// Workload scale factor from URBANE_BENCH_SCALE (default 1.0, clamped to
/// >= 0.05). All benches multiply their point counts by this, so
/// URBANE_BENCH_SCALE=4 approximates the paper's full-size runs and
/// URBANE_BENCH_SCALE=0.1 smoke-tests in seconds.
double BenchScale();

/// base * BenchScale(), at least 1.
std::size_t ScaledCount(std::size_t base);

/// Worker threads from URBANE_BENCH_THREADS (default 1 = serial, the
/// historical behavior). Benches pass this into ExecutionContext so the
/// same binaries measure the threads ablation axis; every ResultTable row
/// records it in a trailing `threads` column.
std::size_t BenchThreads();

/// Median wall-clock seconds of `fn` over `repeats` runs (after one
/// untimed warm-up that also populates lazy caches).
double MeasureSeconds(const std::function<void()>& fn, int repeats = 3);

/// Accumulates a results table, pretty-prints it to stdout and, when
/// URBANE_BENCH_CSV is set to a directory, writes `<name>.csv` plus
/// `<name>.json` there. The JSON file embeds a snapshot of the global
/// metrics registry ("metrics" key, schema urbane.metrics.v1), so a bench
/// that ran with obs::SetMetricsEnabled(true) ships its per-pass latency
/// histograms and cache counters alongside the table.
class ResultTable {
 public:
  ResultTable(std::string name, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> row);

  /// printf convenience: formats a cell.
  static std::string Cell(const char* format, ...)
      __attribute__((format(printf, 1, 2)));

  /// Prints the table and writes the CSV (if configured). Returns false if
  /// the CSV write failed (table is still printed).
  bool Finish() const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (name, scale, provenance line).
void PrintHeader(const std::string& name, const std::string& description);

}  // namespace urbane::bench

#endif  // URBANE_BENCH_HARNESS_H_
