// F8 — end-to-end interactivity (demo Section 3): replay a recorded
// pan/zoom/brush/filter trace against each executor, reporting frame-latency
// percentiles and how many frames meet the 100 ms interactivity budget.
// Expected shape: raster joins keep (nearly) all frames interactive; the
// scan baseline misses the budget once the data set is large.
#include <cstdio>

#include "bench/harness.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/session.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 8: interactive session replay",
      "60-event exploration trace (brushing, filtering, aggregate switches, "
      "pans); per-frame latency percentiles per executor.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;
  core::SpatialAggregation engine(taxis, neighborhoods, raster_options);
  const auto [t0, t1] = taxis.TimeRange();
  app::InteractionSession session(engine, "fare_amount", t0, t1);
  const auto trace = app::GenerateInteractionTrace(60, 2018);

  bench::ResultTable table("fig8_interactive_session",
                           {"executor", "p50", "p95", "max", "total",
                            "interactive<=100ms"});
  const core::ExecutionMethod methods[] = {
      core::ExecutionMethod::kBoundedRaster,
      core::ExecutionMethod::kAccurateRaster,
      core::ExecutionMethod::kIndexJoin, core::ExecutionMethod::kScan};
  for (const auto method : methods) {
    const auto frames = session.Replay(trace, method);
    if (!frames.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   frames.status().ToString().c_str());
      return 1;
    }
    const app::SessionSummary summary = app::SummarizeFrames(*frames);
    table.AddRow({core::ExecutionMethodToString(method),
                  FormatDuration(summary.p50_seconds),
                  FormatDuration(summary.p95_seconds),
                  FormatDuration(summary.max_seconds),
                  FormatDuration(summary.total_seconds),
                  bench::ResultTable::Cell("%zu/%zu",
                                           summary.interactive_frames,
                                           summary.frames)});
  }
  table.Finish();
  return 0;
}
