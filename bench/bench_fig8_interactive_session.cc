// F8 — end-to-end interactivity (demo Section 3): replay a recorded
// pan/zoom/brush/filter trace against each executor, reporting frame-latency
// percentiles and how many frames meet the 100 ms interactivity budget.
// Expected shape: raster joins keep (nearly) all frames interactive; the
// scan baseline misses the budget once the data set is large.
//
// `--sessions N` switches to the concurrent-session mode: N threads each
// replay their own trace against ONE shared engine with the result cache
// enabled, reporting aggregate throughput, cache hit rate, and a torn-result
// check (every concurrent frame checksum must equal its serial replay).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "urbane/session.h"
#include "util/timer.h"

namespace {

// `--telemetry` arms the full production pipeline (event journal + slow
// query flight recorder) on top of the metrics the bench always enables,
// so the table quantifies the armed-mode overhead on frame latency (the
// acceptance bar is < 5% on the median).
void ArmTelemetry() {
  using namespace urbane;
  obs::SetJournalEnabled(true);
  obs::SlowQueryLogOptions options;
  options.p99_multiplier = 3.0;
  obs::SlowQueryLog::Global().SetOptions(options);
  obs::SlowQueryLog::Global().Arm();
  std::printf(
      "telemetry armed: event journal + slow-query recorder (3x p99)\n");
}

int RunSingleSession() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 8: interactive session replay",
      "60-event exploration trace (brushing, filtering, aggregate switches, "
      "pans); per-frame latency percentiles per executor, with per-pass "
      "means sourced from the obs metrics registry.");
  obs::SetMetricsEnabled(true);

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;
  core::SpatialAggregation engine(taxis, neighborhoods, raster_options);
  const auto [t0, t1] = taxis.TimeRange();
  app::InteractionSession session(engine, "fare_amount", t0, t1);
  const auto trace = app::GenerateInteractionTrace(60, 2018);

  bench::ResultTable table("fig8_interactive_session",
                           {"executor", "p50", "p95", "max", "total",
                            "interactive<=100ms", "filter", "splat", "sweep",
                            "refine", "reduce"});
  const core::ExecutionMethod methods[] = {
      core::ExecutionMethod::kBoundedRaster,
      core::ExecutionMethod::kAccurateRaster,
      core::ExecutionMethod::kIndexJoin, core::ExecutionMethod::kScan};
  for (const auto method : methods) {
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    const auto frames = session.Replay(trace, method);
    if (!frames.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   frames.status().ToString().c_str());
      return 1;
    }
    // Per-pass means come from the registry's per-executor histograms (the
    // executors publish them), not from ad-hoc timers in this bench.
    const obs::MetricsSnapshot delta = obs::MetricsSnapshot::Delta(
        obs::MetricsRegistry::Global().Snapshot(), before);
    const std::string prefix =
        std::string("exec.") + core::ExecutionMethodToString(method) + ".";
    const auto pass_mean = [&](const char* pass) -> std::string {
      const obs::HistogramSnapshot* histogram =
          delta.FindHistogram(prefix + pass);
      if (histogram == nullptr || histogram->count == 0) {
        return "-";
      }
      return FormatDuration(histogram->Mean());
    };
    const app::SessionSummary summary = app::SummarizeFrames(*frames);
    table.AddRow({core::ExecutionMethodToString(method),
                  FormatDuration(summary.p50_seconds),
                  FormatDuration(summary.p95_seconds),
                  FormatDuration(summary.max_seconds),
                  FormatDuration(summary.total_seconds),
                  bench::ResultTable::Cell("%zu/%zu",
                                           summary.interactive_frames,
                                           summary.frames),
                  pass_mean("filter_seconds"), pass_mean("splat_seconds"),
                  pass_mean("sweep_seconds"), pass_mean("refine_seconds"),
                  pass_mean("reduce_seconds")});
  }
  table.Finish();
  return 0;
}

// `--profile-overhead` prices per-request attribution (DESIGN.md §12):
// the same 60-event trace replays once on the unobserved fast path
// (profile off — must equal the plain bench) and once with a QueryProfile
// attached to every frame. bench_report reads the raw `total_s` column
// and gates the on-vs-off delta at < 2%.
int RunProfileOverhead() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 8 (profile overhead): attribution on vs off",
      "One 60-event exploration trace, replayed with query.profile unset "
      "and then attached per frame; the totals price the profile plumbing "
      "on the hot path.");
  // Everything else stays off so the delta isolates the profile cost.
  obs::SetMetricsEnabled(false);

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;
  core::SpatialAggregation engine(taxis, neighborhoods, raster_options);
  const auto [t0, t1] = taxis.TimeRange();
  app::InteractionSession session(engine, "fare_amount", t0, t1);
  const auto trace = app::GenerateInteractionTrace(60, 2018);
  const auto method = core::ExecutionMethod::kBoundedRaster;

  // Warm-up replay: executor construction (textures, splat order) must not
  // land in either measured pass.
  if (auto warm = session.Replay(trace, method); !warm.ok()) {
    std::fprintf(stderr, "warm-up replay failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }

  bench::ResultTable table(
      "fig8_profile_overhead",
      {"profile", "frames", "total", "total_s", "p50", "overhead(vs off)"});
  // Min-of-R per mode, with the modes interleaved (off, on, off, on, ...):
  // a single back-to-back pair would fold clock-frequency drift across the
  // run into the delta, which at small frame times dwarfs the real cost.
  constexpr int kRepeats = 3;
  app::SessionSummary best[2];
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (const int enabled : {0, 1}) {
      obs::QueryProfile profile;
      session.set_profile(enabled != 0 ? &profile : nullptr);
      const auto frames = session.Replay(trace, method);
      if (!frames.ok()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     frames.status().ToString().c_str());
        return 1;
      }
      const app::SessionSummary summary = app::SummarizeFrames(*frames);
      if (repeat == 0 || summary.total_seconds < best[enabled].total_seconds) {
        best[enabled] = summary;
      }
    }
  }
  session.set_profile(nullptr);
  const double off_total = best[0].total_seconds;
  for (const int enabled : {0, 1}) {
    const app::SessionSummary& summary = best[enabled];
    table.AddRow(
        {enabled != 0 ? "on" : "off",
         bench::ResultTable::Cell("%zu", summary.frames),
         FormatDuration(summary.total_seconds),
         bench::ResultTable::Cell("%.6f", summary.total_seconds),
         FormatDuration(summary.p50_seconds),
         bench::ResultTable::Cell(
             "%+.2f%%",
             off_total > 0.0
                 ? 100.0 * (summary.total_seconds - off_total) / off_total
                 : 0.0)});
  }
  table.Finish();
  return 0;
}

int RunConcurrentSessions(std::size_t num_sessions) {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 8 (concurrent): shared-engine session replay",
      "N threads replay distinct 60-event traces against one engine with "
      "the versioned LRU result cache on; throughput, hit rate (from the "
      "obs registry's cache counters), and a torn-result check against "
      "each trace's serial replay.");
  obs::SetMetricsEnabled(true);

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips, %zu sessions...\n\n", options.num_trips,
              num_sessions);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;
  core::SpatialAggregation engine(taxis, neighborhoods, raster_options);
  engine.set_result_cache_capacity(4096);
  const auto [t0, t1] = taxis.TimeRange();
  const auto method = core::ExecutionMethod::kBoundedRaster;

  // Serial reference pass: one session at a time on the shared engine.
  // Also warms the executor and the cache, so the concurrent pass measures
  // steady-state revisit traffic (the workload the cache exists for).
  std::vector<std::vector<app::InteractionEvent>> traces(num_sessions);
  std::vector<std::vector<app::FrameRecord>> reference(num_sessions);
  for (std::size_t s = 0; s < num_sessions; ++s) {
    traces[s] = app::GenerateInteractionTrace(60, 2018 + s);
    app::InteractionSession session(engine, "fare_amount", t0, t1);
    auto frames = session.Replay(traces[s], method);
    if (!frames.ok()) {
      std::fprintf(stderr, "serial replay failed: %s\n",
                   frames.status().ToString().c_str());
      return 1;
    }
    reference[s] = std::move(*frames);
  }

  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Global().Snapshot();
  std::vector<std::vector<app::FrameRecord>> concurrent(num_sessions);
  std::vector<int> failed(num_sessions, 0);
  WallTimer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(num_sessions);
    for (std::size_t s = 0; s < num_sessions; ++s) {
      threads.emplace_back([&, s] {
        app::InteractionSession session(engine, "fare_amount", t0, t1);
        auto frames = session.Replay(traces[s], method);
        if (!frames.ok()) {
          failed[s] = 1;
          return;
        }
        concurrent[s] = std::move(*frames);
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  const double wall = timer.ElapsedSeconds();
  const core::QueryCacheStats after = engine.result_cache_stats();

  std::size_t total_frames = 0;
  std::size_t torn_frames = 0;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    if (failed[s]) {
      std::fprintf(stderr, "concurrent replay %zu failed\n", s);
      return 1;
    }
    total_frames += concurrent[s].size();
    for (std::size_t f = 0; f < concurrent[s].size(); ++f) {
      if (concurrent[s][f].checksum != reference[s][f].checksum) {
        ++torn_frames;
      }
    }
  }
  // Hit rate is sourced from the registry's cache counters (QueryCache
  // mirrors every probe into them); the engine's own stats stay as a
  // cross-check for the entries column.
  const obs::MetricsSnapshot metrics_delta = obs::MetricsSnapshot::Delta(
      obs::MetricsRegistry::Global().Snapshot(), metrics_before);
  const std::uint64_t reg_hits = metrics_delta.CounterValue("cache.hits");
  const std::uint64_t reg_misses = metrics_delta.CounterValue("cache.misses");
  const std::size_t probes =
      static_cast<std::size_t>(reg_hits + reg_misses);
  const double hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(reg_hits) /
                        static_cast<double>(probes);

  bench::ResultTable table(
      "fig8_concurrent_sessions",
      {"sessions", "frames", "wall", "frames_per_s", "cache_hit_rate",
       "cache_entries", "torn_frames"});
  table.AddRow({bench::ResultTable::Cell("%zu", num_sessions),
                bench::ResultTable::Cell("%zu", total_frames),
                FormatDuration(wall),
                bench::ResultTable::Cell(
                    "%.1f", wall > 0.0
                                ? static_cast<double>(total_frames) / wall
                                : 0.0),
                bench::ResultTable::Cell("%.1f%%", 100.0 * hit_rate),
                bench::ResultTable::Cell("%zu", after.entries),
                bench::ResultTable::Cell("%zu", torn_frames)});
  table.Finish();
  if (torn_frames > 0) {
    std::fprintf(stderr, "FAIL: %zu torn frames\n", torn_frames);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 1;
  bool telemetry = false;
  bool profile_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "--sessions expects a positive count\n");
        return 1;
      }
      sessions = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strcmp(argv[i], "--profile-overhead") == 0) {
      profile_overhead = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions N] [--telemetry] "
                   "[--profile-overhead]\n",
                   argv[0]);
      return 1;
    }
  }
  if (telemetry) ArmTelemetry();
  if (profile_overhead) return RunProfileOverhead();
  return sessions > 1 ? RunConcurrentSessions(sessions) : RunSingleSession();
}
