// T2 — memory footprint and preprocessing time per method (Raster Join
// evaluation): the raster joins need no point index (the bounded variant
// keeps only a canvas-sized stamp buffer); the index baseline pays an O(P)
// build and O(P) memory; the accurate variant's pixel index is also O(P)
// but built once per canvas.
#include <cstdio>

#include "bench/harness.h"
#include "core/accurate_join.h"
#include "core/index_join.h"
#include "core/raster_join.h"
#include "core/scan_join.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Table 2: preprocessing time and memory per executor",
      "1M-point taxi table, neighborhood layer, 1024px canvas.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;

  core::AggregationQuery query;
  query.points = &taxis;
  query.regions = &neighborhoods;
  query.aggregate = core::AggregateSpec::Count();

  bench::ResultTable table(
      "table2_memory_preproc",
      {"executor", "build-time", "aux-memory", "first-query", "warm-query"});
  auto add = [&](core::SpatialAggregationExecutor* executor,
                 std::size_t memory_bytes) {
    WallTimer first;
    (void)executor->Execute(query);
    const double first_seconds = first.ElapsedSeconds();
    const double warm_seconds =
        bench::MeasureSeconds([&] { (void)executor->Execute(query); });
    table.AddRow({executor->name(),
                  FormatDuration(executor->stats().build_seconds),
                  bench::ResultTable::Cell(
                      "%.1fMB",
                      static_cast<double>(memory_bytes) / (1024.0 * 1024.0)),
                  FormatDuration(first_seconds),
                  FormatDuration(warm_seconds)});
  };

  auto scan = core::ScanJoin::Create(taxis, neighborhoods);
  auto index = core::IndexJoin::Create(taxis, neighborhoods);
  auto raster =
      core::BoundedRasterJoin::Create(taxis, neighborhoods, raster_options);
  auto accurate =
      core::AccurateRasterJoin::Create(taxis, neighborhoods, raster_options);
  if (!scan.ok() || !index.ok() || !raster.ok() || !accurate.ok()) {
    return 1;
  }
  add(scan->get(), (*scan)->MemoryBytes());
  add(index->get(), (*index)->MemoryBytes());
  add(raster->get(), (*raster)->MemoryBytes());
  add(accurate->get(), (*accurate)->MemoryBytes());
  table.Finish();

  std::printf("base data: %.1fMB points, %.2fMB regions\n",
              static_cast<double>(taxis.MemoryBytes()) / (1024.0 * 1024.0),
              static_cast<double>(neighborhoods.MemoryBytes()) /
                  (1024.0 * 1024.0));
  return 0;
}
