// F11 — pre-aggregation vs on-the-fly (the paper's abstract): "traditional
// pre-aggregation approaches support interactive exploration [but] are
// unsuitable because they do not support ad-hoc query constraints or
// polygons of arbitrary shapes." This bench makes the trade measurable:
//
//  * bin-aligned COUNT queries: the cube answers in microseconds (it wins —
//    that is why datacubes exist);
//  * ad-hoc queries (arbitrary time/attribute ranges, other aggregates,
//    spatial windows): the cube CANNOT answer; raster join serves them in
//    milliseconds;
//  * a new polygon layer: the cube pays a full exact re-join (its original
//    build cost); raster join just draws the new polygons.
#include <cstdio>

#include "bench/harness.h"
#include "core/datacube.h"
#include "core/raster_join.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 11: pre-aggregation vs on-the-fly raster join",
      "Datacube (64 time bins x 16 fare bins, per neighborhood) against "
      "BoundedRasterJoin on served and unserved query classes.");

  data::TaxiGeneratorOptions options;
  options.num_trips = bench::ScaledCount(1'000'000);
  std::printf("generating %zu trips...\n\n", options.num_trips);
  const data::PointTable taxis = data::GenerateTaxiTrips(options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();

  core::DataCubeOptions cube_options;
  cube_options.attribute = "fare_amount";
  auto cube =
      core::PreAggregatedCube::Build(taxis, neighborhoods, cube_options);
  core::RasterJoinOptions raster_options;
  raster_options.resolution = 1024;
  raster_options.compute_error_bounds = false;
  auto raster =
      core::BoundedRasterJoin::Create(taxis, neighborhoods, raster_options);
  if (!cube.ok() || !raster.ok()) return 1;

  std::printf("cube build (exact join + binning): %s, %.1fMB\n\n",
              FormatDuration((*cube)->build_seconds()).c_str(),
              static_cast<double>((*cube)->MemoryBytes()) / (1024 * 1024));

  struct Workload {
    const char* label;
    core::AggregationQuery query;
  };
  std::vector<Workload> workloads;
  {
    core::AggregationQuery q;
    q.points = &taxis;
    q.regions = &neighborhoods;
    // (1) bin-aligned time window — the cube's home turf.
    core::AggregationQuery aligned = q;
    aligned.filter.WithTime((*cube)->TimeBinStart(8),
                            (*cube)->TimeBinStart(40));
    workloads.push_back({"bin-aligned time window", aligned});
    // (2) ad-hoc time window (arbitrary epochs).
    core::AggregationQuery adhoc_time = q;
    adhoc_time.filter.WithTime(1231231231, 1232323232);
    workloads.push_back({"ad-hoc time window", adhoc_time});
    // (3) ad-hoc attribute range.
    core::AggregationQuery adhoc_attr = q;
    adhoc_attr.filter.WithRange("fare_amount", 12.34, 27.5);
    workloads.push_back({"ad-hoc fare range", adhoc_attr});
    // (4) unanticipated aggregate.
    core::AggregationQuery avg = q;
    avg.aggregate = core::AggregateSpec::Avg("tip_amount");
    workloads.push_back({"AVG(tip) aggregate", avg});
  }

  bench::ResultTable table("fig11_preaggregation",
                           {"workload", "cube", "raster-join"});
  for (const Workload& workload : workloads) {
    std::string cube_cell;
    if ((*cube)->CanServe(workload.query).ok()) {
      const double seconds = bench::MeasureSeconds(
          [&] { (void)(*cube)->Query(workload.query); }, 5);
      cube_cell = FormatDuration(seconds);
    } else {
      cube_cell = "NOT SERVABLE";
    }
    const double raster_seconds = bench::MeasureSeconds(
        [&] { (void)(*raster)->Execute(workload.query); });
    table.AddRow({workload.label, cube_cell,
                  FormatDuration(raster_seconds)});
  }
  table.Finish();

  // New polygon layer: what each approach pays to support it.
  std::printf("switching to a brand-new polygon layer (census tracts):\n");
  const data::RegionSet tracts = data::GenerateCensusTracts();
  WallTimer cube_rebuild;
  auto rebuilt = core::PreAggregatedCube::Build(taxis, tracts, cube_options);
  const double rebuild_seconds = cube_rebuild.ElapsedSeconds();
  WallTimer raster_switch;  // covers executor setup plus the first answer
  auto raster_tracts =
      core::BoundedRasterJoin::Create(taxis, tracts, raster_options);
  if (raster_tracts.ok()) {
    core::AggregationQuery q;
    q.points = &taxis;
    q.regions = &tracts;
    (void)(*raster_tracts)->Execute(q);
  }
  const double raster_switch_seconds = raster_switch.ElapsedSeconds();

  bench::ResultTable switch_table("fig11_new_polygons",
                                  {"approach", "cost to serve new layer"});
  switch_table.AddRow(
      {"cube (full rebuild)",
       rebuilt.ok() ? FormatDuration(rebuild_seconds) : "failed"});
  switch_table.AddRow({"raster join (setup + first query)",
                       FormatDuration(raster_switch_seconds)});
  switch_table.Finish();
  return 0;
}
