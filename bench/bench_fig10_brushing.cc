// F10 (extension ablation) — time-brushing acceleration: Urbane's time
// slider re-runs a COUNT query per frame. This bench compares re-splatting
// per frame (BoundedRasterJoin with a time filter) against the
// TemporalCanvasIndex (per-bin prefix-sum canvases: one canvas subtraction
// per frame, independent of point count). Expected shape: per-frame cost of
// the canvas index is flat in point count while the re-splat path grows
// linearly; the index pays a one-time build and bin-snapped time windows.
#include <cstdio>

#include "bench/harness.h"
#include "core/raster_join.h"
#include "core/temporal_canvas.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace urbane;
  bench::PrintHeader(
      "Figure 10: time-brushing ablation",
      "Median per-frame latency of 32 random brush windows; resplat = "
      "filtered BoundedRasterJoin per frame, canvas-index = prefix-sum "
      "canvas subtraction (extension; see DESIGN.md section 5).");

  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  bench::ResultTable table(
      "fig10_brushing",
      {"points", "resplat/frame", "canvas-index/frame", "index-build",
       "index-memory", "speedup"});

  for (const std::size_t base :
       {std::size_t{100'000}, std::size_t{400'000}, std::size_t{1'600'000}}) {
    const std::size_t num_points = bench::ScaledCount(base);
    data::TaxiGeneratorOptions options;
    options.num_trips = num_points;
    const data::PointTable taxis = data::GenerateTaxiTrips(options);
    const auto [t0, t1] = taxis.TimeRange();
    const double span = static_cast<double>(t1 - t0);

    // Brush windows: random quarter-span windows.
    Rng rng(7);
    std::vector<std::pair<std::int64_t, std::int64_t>> windows;
    for (int i = 0; i < 32; ++i) {
      const double start = rng.NextDouble(0.0, 0.75);
      windows.push_back(
          {t0 + static_cast<std::int64_t>(span * start),
           t0 + static_cast<std::int64_t>(span * (start + 0.25))});
    }

    core::RasterJoinOptions raster_options;
    raster_options.resolution = 256;
    raster_options.compute_error_bounds = false;
    auto resplat =
        core::BoundedRasterJoin::Create(taxis, neighborhoods, raster_options);
    core::TemporalCanvasOptions canvas_options;
    canvas_options.resolution = 256;
    canvas_options.time_bins = 64;
    auto canvas =
        core::TemporalCanvasIndex::Build(taxis, neighborhoods, canvas_options);
    if (!resplat.ok() || !canvas.ok()) return 1;

    std::size_t frame = 0;
    const double resplat_seconds = bench::MeasureSeconds([&] {
      const auto& w = windows[frame++ % windows.size()];
      core::AggregationQuery query;
      query.points = &taxis;
      query.regions = &neighborhoods;
      query.filter.WithTime(w.first, w.second);
      (void)(*resplat)->Execute(query);
    }, 8);
    frame = 0;
    const double canvas_seconds = bench::MeasureSeconds([&] {
      const auto& w = windows[frame++ % windows.size()];
      (void)(*canvas)->QueryTimeWindow(w.first, w.second);
    }, 8);

    table.AddRow(
        {bench::ResultTable::Cell("%zu", num_points),
         FormatDuration(resplat_seconds), FormatDuration(canvas_seconds),
         FormatDuration((*canvas)->build_seconds()),
         bench::ResultTable::Cell(
             "%.1fMB",
             static_cast<double>((*canvas)->MemoryBytes()) / (1024 * 1024)),
         bench::ResultTable::Cell("%.1fx",
                                  resplat_seconds / canvas_seconds)});
  }
  table.Finish();
  return 0;
}
