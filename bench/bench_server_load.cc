// Server load — closed-loop, overload, and shard-scaling benchmarks for
// the HTTP/JSON query server (src/server). C client threads each run their
// own connect → POST /v1/query → read-response loop against one server.
//
// Tables:
//   server_load        per-concurrency throughput + client latency
//                      percentiles, and an overload row demonstrating 429
//                      shedding with a deliberately tiny admission queue.
//   server_load_shards closed-loop throughput with the backend engines
//                      fanned out over M shards (scatter-gather layer,
//                      src/shard) — the near-linear-QPS axis. `--shards M`
//                      pins the sweep to one fan-out.
//
// Latencies live in a per-phase util::LatencyRecorder: each scenario
// summarizes and then Reset()s, so one phase's tail can never bleed into
// the next phase's p99 (the bug class tests/util/latency_test.cc pins).
// Client latencies also feed the `server.client.wall_seconds` histogram so
// bench_report's trajectory carries them alongside the server-side
// `server.request.wall_seconds`.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "server/query_server.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"
#include "util/latency.h"
#include "util/timer.h"

namespace {

using namespace urbane;

struct ClientStats {
  LatencyRecorder latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;  // 429
  std::uint64_t failed = 0;      // anything else
};

std::string PostQueryRequest(const std::string& sql) {
  const std::string body = "{\"sql\": \"" + sql + "\"}";
  return "POST /v1/query HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// One request over a fresh connection; returns the HTTP status (0 on
// transport failure).
int RunOnce(std::uint16_t port, const std::string& request) {
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return 0;
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  std::string response;
  int status = 0;
  if (net::SendAll(*fd, request).ok() &&
      net::RecvAll(*fd, &response).ok() && response.size() >= 12) {
    status = std::atoi(response.c_str() + 9);
  }
  net::CloseSocket(*fd);
  return status;
}

ClientStats RunClosedLoop(std::uint16_t port, int concurrency,
                          int requests_per_client, const std::string& sql) {
  const std::string request = PostQueryRequest(sql);
  // One stats block (and so one latency recorder) per client thread, then
  // one fold into a per-PHASE total: every call to RunClosedLoop starts
  // from empty recorders, which is what keeps scenario percentiles
  // independent.
  std::vector<ClientStats> per_client(concurrency);
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& stats = per_client[c];
      for (int i = 0; i < requests_per_client; ++i) {
        WallTimer timer;
        const int status = RunOnce(port, request);
        const double ms = timer.ElapsedMillis();
        if (status == 200) {
          ++stats.ok;
          stats.latencies_ms.Record(ms);
        } else if (status == 429) {
          ++stats.overloaded;
        } else {
          ++stats.failed;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ClientStats total;
  for (ClientStats& stats : per_client) {
    total.ok += stats.ok;
    total.overloaded += stats.overloaded;
    total.failed += stats.failed;
    total.latencies_ms.Merge(stats.latencies_ms);
  }
  return total;
}

// Shared row shape for both tables' closed-loop scenarios; `trailing`
// appends table-specific columns (the shard table's fan-out).
void AddLoadRow(bench::ResultTable& table, const std::string& scenario,
                int clients, const ClientStats& stats, double elapsed,
                std::vector<std::string> trailing = {}) {
  const LatencySummary lat = stats.latencies_ms.Summarize();
  const std::uint64_t total = stats.ok + stats.overloaded + stats.failed;
  std::vector<std::string> row = {
      scenario, bench::ResultTable::Cell("%d", clients),
      bench::ResultTable::Cell("%llu", (unsigned long long)total),
      bench::ResultTable::Cell("%llu", (unsigned long long)stats.ok),
      bench::ResultTable::Cell("%llu", (unsigned long long)stats.overloaded),
      bench::ResultTable::Cell("%llu", (unsigned long long)stats.failed),
      bench::ResultTable::Cell("%.0f",
                               elapsed > 0 ? stats.ok / elapsed : 0.0),
      bench::ResultTable::Cell("%.2f", lat.p50),
      bench::ResultTable::Cell("%.2f", lat.p95),
      bench::ResultTable::Cell("%.2f", lat.p99)};
  for (std::string& cell : trailing) row.push_back(std::move(cell));
  table.AddRow(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  // --shards M pins the shard sweep to a single fan-out; default sweeps
  // {1, 2, 4, 8}.
  std::vector<std::size_t> shard_sweep = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      const long m = std::atol(argv[++i]);
      if (m < 1) {
        std::fprintf(stderr, "--shards wants a positive integer\n");
        return 1;
      }
      shard_sweep = {static_cast<std::size_t>(m)};
    } else {
      std::fprintf(stderr, "usage: %s [--shards M]\n", argv[0]);
      return 1;
    }
  }

  bench::PrintHeader(
      "server_load",
      "HTTP/JSON query server under closed-loop load: C client threads x "
      "M requests each, fresh connection per request; an overload scenario "
      "(queue 2) demonstrating 429 shedding; and a shard-scaling sweep "
      "with the engines fanned out over --shards M.");
  obs::SetMetricsEnabled(true);

  app::DatasetManager manager;
  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = bench::ScaledCount(200'000);
  std::printf("generating %zu trips...\n", taxi_options.num_trips);
  if (const Status status = manager.AddPointDataset(
          "taxi", data::GenerateTaxiTrips(taxi_options));
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (const Status status =
          manager.AddRegionLayer("nbhd", data::GenerateNeighborhoods());
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  app::DatasetManagerBackend backend(&manager);

  const std::string sql = "SELECT COUNT(*) FROM taxi, nbhd";
  const int requests_per_client =
      static_cast<int>(bench::ScaledCount(50));
  obs::Histogram& client_hist = obs::MetricsRegistry::Global().GetHistogram(
      "server.client.wall_seconds");

  bench::ResultTable table(
      "server_load",
      {"scenario", "clients", "requests", "ok", "throttled_429", "failed",
       "rps", "p50_ms", "p95_ms", "p99_ms"});

  for (const int concurrency : {1, 2, 4, 8}) {
    server::QueryServerOptions options;
    options.worker_threads = 4;
    options.max_queue_depth = 64;
    server::QueryServer server(&backend, options);
    if (const Status status = server.Start(); !status.ok()) {
      std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
      return 1;
    }
    // Warm the engine (index/canvas builds) out of band so the table
    // measures serving, not first-touch preprocessing.
    RunOnce(server.port(), PostQueryRequest(sql));

    WallTimer wall;
    const ClientStats stats =
        RunClosedLoop(server.port(), concurrency, requests_per_client, sql);
    const double elapsed = wall.ElapsedSeconds();
    server.Stop();

    for (const double ms : stats.latencies_ms.samples()) {
      client_hist.Observe(ms / 1e3);
    }
    AddLoadRow(table, "closed_loop", concurrency, stats, elapsed);
  }

  // Overload: one slow worker, a queue of 2, and a 16-client burst — most
  // requests must be shed with 429, none may fail any other way.
  {
    server::QueryServerOptions options;
    options.worker_threads = 1;
    options.max_queue_depth = 2;
    server::QueryServer server(&backend, options);
    if (const Status status = server.Start(); !status.ok()) {
      std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
      return 1;
    }
    RunOnce(server.port(), PostQueryRequest(sql));
    WallTimer wall;
    const ClientStats stats = RunClosedLoop(server.port(), 16, 8, sql);
    const double elapsed = wall.ElapsedSeconds();
    server.Stop();
    AddLoadRow(table, "overload_q2", 16, stats, elapsed);
  }

  const bool load_ok = table.Finish();

  // Shard scaling: same dataset, same SQL, 8 closed-loop clients, with the
  // backend's engines fanned out over M shards (scatter on the shared
  // pool, merge per shard/shard_merge.h). Near-linear rps growth across
  // this table is the tentpole's throughput claim; correctness is pinned
  // separately by the shard conformance suite (bit-identical responses).
  bench::ResultTable shard_table(
      "server_load_shards",
      {"scenario", "clients", "requests", "ok", "throttled_429", "failed",
       "rps", "p50_ms", "p95_ms", "p99_ms", "shards"});
  for (const std::size_t shards : shard_sweep) {
    manager.set_engine_shards(shards);
    server::QueryServerOptions options;
    options.worker_threads = 4;
    options.max_queue_depth = 64;
    server::QueryServer server(&backend, options);
    if (const Status status = server.Start(); !status.ok()) {
      std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
      return 1;
    }
    RunOnce(server.port(), PostQueryRequest(sql));
    WallTimer wall;
    const ClientStats stats =
        RunClosedLoop(server.port(), 8, requests_per_client, sql);
    const double elapsed = wall.ElapsedSeconds();
    server.Stop();
    AddLoadRow(shard_table, "sharded_closed_loop", 8, stats, elapsed,
               {bench::ResultTable::Cell("%zu", shards)});
  }
  manager.set_engine_shards(1);

  return (load_ok && shard_table.Finish()) ? 0 : 1;
}
