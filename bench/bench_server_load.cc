// Server load — closed-loop and overload benchmarks for the HTTP/JSON
// query server (src/server). C client threads each run their own
// connect → POST /v1/query → read-response loop against one server; the
// table reports per-concurrency throughput and client-observed latency
// percentiles (p50/p95/p99), plus an overload row demonstrating 429 load
// shedding with a deliberately tiny admission queue. Client latencies are
// also recorded into the `server.client.wall_seconds` histogram so
// bench_report's trajectory carries them alongside the server-side
// `server.request.wall_seconds`.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "server/query_server.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"
#include "util/timer.h"

namespace {

using namespace urbane;

struct ClientStats {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;  // 429
  std::uint64_t failed = 0;      // anything else
};

std::string PostQueryRequest(const std::string& sql) {
  const std::string body = "{\"sql\": \"" + sql + "\"}";
  return "POST /v1/query HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// One request over a fresh connection; returns the HTTP status (0 on
// transport failure).
int RunOnce(std::uint16_t port, const std::string& request) {
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return 0;
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  std::string response;
  int status = 0;
  if (net::SendAll(*fd, request).ok() &&
      net::RecvAll(*fd, &response).ok() && response.size() >= 12) {
    status = std::atoi(response.c_str() + 9);
  }
  net::CloseSocket(*fd);
  return status;
}

ClientStats RunClosedLoop(std::uint16_t port, int concurrency,
                          int requests_per_client, const std::string& sql) {
  const std::string request = PostQueryRequest(sql);
  std::vector<ClientStats> per_client(concurrency);
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      ClientStats& stats = per_client[c];
      for (int i = 0; i < requests_per_client; ++i) {
        WallTimer timer;
        const int status = RunOnce(port, request);
        const double ms = timer.ElapsedMillis();
        if (status == 200) {
          ++stats.ok;
          stats.latencies_ms.push_back(ms);
        } else if (status == 429) {
          ++stats.overloaded;
        } else {
          ++stats.failed;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ClientStats total;
  for (ClientStats& stats : per_client) {
    total.ok += stats.ok;
    total.overloaded += stats.overloaded;
    total.failed += stats.failed;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              stats.latencies_ms.begin(),
                              stats.latencies_ms.end());
  }
  return total;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "server_load",
      "HTTP/JSON query server under closed-loop load: C client threads x "
      "M requests each, fresh connection per request; plus an overload "
      "scenario (queue 2) demonstrating 429 shedding.");
  obs::SetMetricsEnabled(true);

  app::DatasetManager manager;
  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = bench::ScaledCount(200'000);
  std::printf("generating %zu trips...\n", taxi_options.num_trips);
  if (const Status status = manager.AddPointDataset(
          "taxi", data::GenerateTaxiTrips(taxi_options));
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (const Status status =
          manager.AddRegionLayer("nbhd", data::GenerateNeighborhoods());
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  app::DatasetManagerBackend backend(&manager);

  const std::string sql = "SELECT COUNT(*) FROM taxi, nbhd";
  const int requests_per_client =
      static_cast<int>(bench::ScaledCount(50));
  obs::Histogram& client_hist = obs::MetricsRegistry::Global().GetHistogram(
      "server.client.wall_seconds");

  bench::ResultTable table(
      "server_load",
      {"scenario", "clients", "requests", "ok", "throttled_429", "failed",
       "rps", "p50_ms", "p95_ms", "p99_ms"});

  for (const int concurrency : {1, 2, 4, 8}) {
    server::QueryServerOptions options;
    options.worker_threads = 4;
    options.max_queue_depth = 64;
    server::QueryServer server(&backend, options);
    if (const Status status = server.Start(); !status.ok()) {
      std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
      return 1;
    }
    // Warm the engine (index/canvas builds) out of band so the table
    // measures serving, not first-touch preprocessing.
    RunOnce(server.port(), PostQueryRequest(sql));

    WallTimer wall;
    ClientStats stats =
        RunClosedLoop(server.port(), concurrency, requests_per_client, sql);
    const double elapsed = wall.ElapsedSeconds();
    server.Stop();

    for (const double ms : stats.latencies_ms) {
      client_hist.Observe(ms / 1e3);
    }
    std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
    const std::uint64_t total = stats.ok + stats.overloaded + stats.failed;
    table.AddRow({"closed_loop", bench::ResultTable::Cell("%d", concurrency),
                  bench::ResultTable::Cell("%llu",
                                           (unsigned long long)total),
                  bench::ResultTable::Cell("%llu",
                                           (unsigned long long)stats.ok),
                  bench::ResultTable::Cell(
                      "%llu", (unsigned long long)stats.overloaded),
                  bench::ResultTable::Cell("%llu",
                                           (unsigned long long)stats.failed),
                  bench::ResultTable::Cell(
                      "%.0f", elapsed > 0 ? stats.ok / elapsed : 0.0),
                  bench::ResultTable::Cell(
                      "%.2f", Percentile(stats.latencies_ms, 0.50)),
                  bench::ResultTable::Cell(
                      "%.2f", Percentile(stats.latencies_ms, 0.95)),
                  bench::ResultTable::Cell(
                      "%.2f", Percentile(stats.latencies_ms, 0.99))});
  }

  // Overload: one slow worker, a queue of 2, and a 16-client burst — most
  // requests must be shed with 429, none may fail any other way.
  {
    server::QueryServerOptions options;
    options.worker_threads = 1;
    options.max_queue_depth = 2;
    server::QueryServer server(&backend, options);
    if (const Status status = server.Start(); !status.ok()) {
      std::fprintf(stderr, "server: %s\n", status.ToString().c_str());
      return 1;
    }
    RunOnce(server.port(), PostQueryRequest(sql));
    WallTimer wall;
    ClientStats stats = RunClosedLoop(server.port(), 16, 8, sql);
    const double elapsed = wall.ElapsedSeconds();
    server.Stop();
    std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
    const std::uint64_t total = stats.ok + stats.overloaded + stats.failed;
    table.AddRow({"overload_q2", "16",
                  bench::ResultTable::Cell("%llu",
                                           (unsigned long long)total),
                  bench::ResultTable::Cell("%llu",
                                           (unsigned long long)stats.ok),
                  bench::ResultTable::Cell(
                      "%llu", (unsigned long long)stats.overloaded),
                  bench::ResultTable::Cell("%llu",
                                           (unsigned long long)stats.failed),
                  bench::ResultTable::Cell(
                      "%.0f", elapsed > 0 ? stats.ok / elapsed : 0.0),
                  bench::ResultTable::Cell(
                      "%.2f", Percentile(stats.latencies_ms, 0.50)),
                  bench::ResultTable::Cell(
                      "%.2f", Percentile(stats.latencies_ms, 0.95)),
                  bench::ResultTable::Cell(
                      "%.2f", Percentile(stats.latencies_ms, 0.99))});
  }

  return table.Finish() ? 0 : 1;
}
