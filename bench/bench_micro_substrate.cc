// MB — google-benchmark microbenchmarks of the substrate stages that the
// executors compose: point-in-polygon tests, scanline vs triangle polygon
// fill (the pipeline ablation), point splatting (z-order-sorted vs shuffled
// input — memory-locality ablation), grid-index probes, boundary
// rasterization, and the splat/sweep SIMD kernel tables (scalar vs sse2 vs
// avx2 ns/fragment). The kernel workloads additionally emit a harness
// ResultTable sidecar (micro_substrate_kernels.json when URBANE_BENCH_CSV
// is set) so tools/bench_report tracks kernel regressions in
// BENCH_TRAJECTORY.json without a full fig4/fig8 run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "data/region_generator.h"
#include "geometry/polygon.h"
#include "geometry/triangulate.h"
#include "index/grid_index.h"
#include "index/zorder.h"
#include "obs/metrics.h"
#include "raster/kernels.h"
#include "raster/point_splat.h"
#include "raster/rasterizer.h"
#include "raster/simd.h"
#include "raster/tile_raster.h"
#include "testing/test_worlds.h"
#include "util/random.h"

namespace urbane {
namespace {

geometry::Polygon MakePolygon(std::size_t vertices) {
  Rng rng(42);
  return testing::RandomStarPolygon(rng, {50.0, 50.0}, 35.0, vertices);
}

void BM_PointInPolygon(benchmark::State& state) {
  const geometry::Polygon poly =
      MakePolygon(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  std::vector<geometry::Vec2> probes(1024);
  for (auto& p : probes) {
    p = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointInPolygon)->Arg(8)->Arg(64)->Arg(512)->Arg(2048);

void BM_ScanlineFill(benchmark::State& state) {
  const geometry::Polygon poly = MakePolygon(64);
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100),
                            static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t pixels = 0;
    raster::ScanlineFillPolygon(vp, poly, [&](int, int x0, int x1) {
      pixels += static_cast<std::size_t>(x1 - x0);
    });
    benchmark::DoNotOptimize(pixels);
  }
}
BENCHMARK(BM_ScanlineFill)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TriangleFill(benchmark::State& state) {
  const geometry::Polygon poly = MakePolygon(64);
  const auto triangles = geometry::TriangulatePolygon(poly);
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100),
                            static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t pixels = 0;
    for (const auto& tri : *triangles) {
      raster::RasterizeTriangle(vp, tri, [&](int, int) { ++pixels; });
    }
    benchmark::DoNotOptimize(pixels);
  }
}
BENCHMARK(BM_TriangleFill)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PointSplat(benchmark::State& state) {
  const bool zorder_sorted = state.range(1) != 0;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  data::PointTable points = testing::MakeUniformPoints(n, 7);
  std::vector<float> xs(points.xs(), points.xs() + n);
  std::vector<float> ys(points.ys(), points.ys() + n);
  if (zorder_sorted) {
    const geometry::BoundingBox bounds(0, 0, 100, 100);
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a,
                                              std::uint32_t b) {
      return index::ZOrderKey({xs[a], ys[a]}, bounds) <
             index::ZOrderKey({xs[b], ys[b]}, bounds);
    });
    std::vector<float> sx(n);
    std::vector<float> sy(n);
    for (std::size_t i = 0; i < n; ++i) {
      sx[i] = xs[order[i]];
      sy[i] = ys[order[i]];
    }
    xs = std::move(sx);
    ys = std::move(sy);
  }
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100.001, 100.001),
                            1024, 1024);
  raster::Buffer2D<std::uint32_t> counts(1024, 1024, 0);
  for (auto _ : state) {
    counts.Fill(0);
    benchmark::DoNotOptimize(raster::SplatPoints(
        vp, xs.data(), ys.data(), n, raster::BlendOp::kAdd,
        [](std::size_t) { return 1u; }, counts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.SetLabel(zorder_sorted ? "zorder-sorted" : "shuffled");
}
BENCHMARK(BM_PointSplat)
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_GridProbe(benchmark::State& state) {
  const data::PointTable points = testing::MakeUniformPoints(200000, 9);
  const auto grid = index::GridIndex::BuildAuto(
      points.xs(), points.ys(), points.size(),
      geometry::BoundingBox(0, 0, 100.001, 100.001),
      static_cast<double>(state.range(0)));
  const geometry::Polygon poly = MakePolygon(64);
  for (auto _ : state) {
    std::size_t candidates = 0;
    grid->ClassifyCells(
        poly,
        [&](int cx, int cy) { candidates += grid->CellSize(cx, cy); },
        [&](int cx, int cy) { candidates += grid->CellSize(cx, cy); });
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_GridProbe)->Arg(16)->Arg(64)->Arg(256);

void BM_BoundaryRasterize(benchmark::State& state) {
  const geometry::Polygon poly =
      MakePolygon(static_cast<std::size_t>(state.range(0)));
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100), 1024,
                            1024);
  for (auto _ : state) {
    std::size_t cells = 0;
    raster::RasterizePolygonBoundary(vp, poly, [&](int, int) { ++cells; });
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_BoundaryRasterize)->Arg(16)->Arg(128)->Arg(1024);

void BM_Triangulate(benchmark::State& state) {
  const geometry::Polygon poly =
      MakePolygon(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::TriangulatePolygon(poly));
  }
}
BENCHMARK(BM_Triangulate)->Arg(16)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Splat/sweep SIMD kernels. One workload per RasterKernels entry point plus
// the tiled triangle walk; each runs at every URBANE_SIMD level available on
// this CPU. Registered twice: as BM_SimdKernel below for interactive runs,
// and through EmitKernelSidecar() (called from main after the benchmark
// pass) as a harness ResultTable so the numbers land in the JSON sidecar
// bench_report aggregates.

std::vector<raster::SimdLevel> AvailableKernelLevels() {
  std::vector<raster::SimdLevel> levels = {raster::SimdLevel::kOff};
  const int max = static_cast<int>(raster::CpuMaxSimdLevel());
  if (max >= static_cast<int>(raster::SimdLevel::kSse2)) {
    levels.push_back(raster::SimdLevel::kSse2);
  }
  if (max >= static_cast<int>(raster::SimdLevel::kAvx2)) {
    levels.push_back(raster::SimdLevel::kAvx2);
  }
  return levels;
}

struct KernelWorkload {
  const char* name;
  std::size_t fragments;  // pixels one run() call pushes through the kernel
  std::function<void(const raster::RasterKernels&)> run;
};

std::vector<KernelWorkload> MakeKernelWorkloads() {
  std::vector<KernelWorkload> workloads;

  // Splat pass 1: point -> linear framebuffer index, 1M uniform points.
  {
    const std::size_t n = 1 << 20;
    const data::PointTable points = testing::MakeUniformPoints(n, 11);
    auto xs = std::make_shared<std::vector<float>>(points.xs(),
                                                   points.xs() + n);
    auto ys = std::make_shared<std::vector<float>>(points.ys(),
                                                   points.ys() + n);
    auto out = std::make_shared<std::vector<std::uint32_t>>(n);
    const raster::Viewport vp(geometry::BoundingBox(0, 0, 100.001, 100.001),
                              1024, 1024);
    const raster::SplatGeometry geom = raster::SplatGeometry::From(vp);
    workloads.push_back(
        {"splat_pixel_indices", n,
         [=](const raster::RasterKernels& k) {
           benchmark::DoNotOptimize(k.compute_pixel_indices(
               geom, xs->data(), ys->data(), xs->size(), out->data()));
         }});
  }

  // Sweep COUNT fast path: exact u64 sum over dense count rows.
  {
    const std::size_t len = 1 << 16;
    const int rounds = 64;
    auto row = std::make_shared<std::vector<std::uint32_t>>(len);
    Rng rng(3);
    for (auto& v : *row) {
      v = static_cast<std::uint32_t>(rng.NextUint64(5));
    }
    workloads.push_back(
        {"sweep_span_sum", len * rounds,
         [=](const raster::RasterKernels& k) {
           std::uint64_t total = 0;
           for (int r = 0; r < rounds; ++r) {
             total += k.sum_span_u32(row->data(), row->size());
           }
           benchmark::DoNotOptimize(total);
         }});
  }

  // Sweep sparse path: gather nonzero pixel columns (~12% occupancy).
  {
    const std::size_t len = 1 << 16;
    const int rounds = 64;
    auto row = std::make_shared<std::vector<std::uint32_t>>(len, 0u);
    Rng rng(4);
    for (auto& v : *row) {
      v = rng.NextUint64(8) == 0
              ? static_cast<std::uint32_t>(1 + rng.NextUint64(4))
              : 0u;
    }
    auto out = std::make_shared<std::vector<std::uint32_t>>(len);
    workloads.push_back(
        {"sweep_gather_nonzero", len * rounds,
         [=](const raster::RasterKernels& k) {
           std::size_t hits = 0;
           for (int r = 0; r < rounds; ++r) {
             hits += k.gather_nonzero_u32(row->data(), row->size(),
                                          out->data());
           }
           benchmark::DoNotOptimize(hits);
         }});
  }

  // Boundary-tile coverage: 64-pixel rows against three live edges whose
  // crossing point shifts per row, so the mask is neither empty nor full.
  {
    const int rows = 1 << 14;
    workloads.push_back(
        {"edge_coverage_mask", static_cast<std::size_t>(rows) * 64,
         [=](const raster::RasterKernels& k) {
           std::uint64_t acc = 0;
           raster::EdgeRowSetup row;
           row.dx[0] = -49152;
           row.dx[1] = 32768;
           row.dx[2] = 16384;
           for (int r = 0; r < rows; ++r) {
             row.e[0] = (std::int64_t{1} << 22) - r * 1315;
             row.e[1] = (std::int64_t{1} << 21) + r * 771;
             row.e[2] = (r % 64 - 32) * std::int64_t{65536};
             acc += k.edge_coverage_mask(row, 64);
           }
           benchmark::DoNotOptimize(acc);
         }});
  }

  // Full tile walk: triangulated 64-gon star filled at 1024x1024.
  {
    auto poly = std::make_shared<geometry::Polygon>(MakePolygon(64));
    auto triangulated = geometry::TriangulatePolygon(*poly);
    auto tris = std::make_shared<std::vector<geometry::Triangle>>(
        std::move(*triangulated));
    const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100), 1024,
                              1024);
    std::size_t frags = 0;
    for (const geometry::Triangle& tri : *tris) {
      raster::TiledRasterizeTriangle(
          vp, tri, raster::kScalarRasterKernels,
          [&](int, int x0, int x1) { frags += static_cast<std::size_t>(x1 - x0); });
    }
    workloads.push_back(
        {"tiled_triangle_fill", frags,
         [=](const raster::RasterKernels& k) {
           std::size_t pixels = 0;
           for (const geometry::Triangle& tri : *tris) {
             raster::TiledRasterizeTriangle(vp, tri, k,
                                            [&](int, int x0, int x1) {
                                              pixels += static_cast<std::size_t>(
                                                  x1 - x0);
                                            });
           }
           benchmark::DoNotOptimize(pixels);
         }});
  }

  return workloads;
}

const std::vector<KernelWorkload>& KernelWorkloads() {
  static const std::vector<KernelWorkload> workloads = MakeKernelWorkloads();
  return workloads;
}

void BM_SimdKernel(benchmark::State& state) {
  const KernelWorkload& w =
      KernelWorkloads()[static_cast<std::size_t>(state.range(0))];
  const auto level = static_cast<raster::SimdLevel>(state.range(1));
  if (static_cast<int>(level) >
      static_cast<int>(raster::CpuMaxSimdLevel())) {
    state.SkipWithError("SIMD level unavailable on this CPU");
    return;
  }
  const raster::RasterKernels& kernels = raster::KernelsForLevel(level);
  for (auto _ : state) {
    w.run(kernels);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.fragments));
  state.SetLabel(std::string(w.name) + "/" + raster::SimdLevelName(level));
}
BENCHMARK(BM_SimdKernel)->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2}});

}  // namespace

// Harness-table pass over the same workloads: ns/fragment per kernel per
// level, plus a `micro.<kernel>.<level>.ns_per_fragment` histogram sample so
// bench_report's baseline comparison covers the kernels.
void EmitKernelSidecar() {
  bench::PrintHeader("micro_substrate_kernels",
                     "splat/sweep kernel ns-per-fragment across "
                     "URBANE_SIMD levels (scalar oracle = off)");
  bench::ResultTable table("micro_substrate_kernels",
                           {"kernel", "level", "fragments", "ns_per_fragment",
                            "speedup_vs_scalar"});
  for (const KernelWorkload& w : KernelWorkloads()) {
    double scalar_ns = 0.0;
    for (const raster::SimdLevel level : AvailableKernelLevels()) {
      const raster::RasterKernels& kernels = raster::KernelsForLevel(level);
      const double seconds = bench::MeasureSeconds([&] { w.run(kernels); });
      const double ns = seconds * 1e9 / static_cast<double>(w.fragments);
      if (level == raster::SimdLevel::kOff) scalar_ns = ns;
      obs::MetricsRegistry::Global()
          .GetHistogram(std::string("micro.") + w.name + "." +
                        raster::SimdLevelName(level) + ".ns_per_fragment")
          .Observe(ns);
      table.AddRow({w.name, raster::SimdLevelName(level),
                    bench::ResultTable::Cell("%zu", w.fragments),
                    bench::ResultTable::Cell("%.3f", ns),
                    bench::ResultTable::Cell("%.2fx", scalar_ns / ns)});
    }
  }
  table.Finish();
}

}  // namespace urbane

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  urbane::EmitKernelSidecar();
  return 0;
}
