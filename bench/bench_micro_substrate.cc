// MB — google-benchmark microbenchmarks of the substrate stages that the
// executors compose: point-in-polygon tests, scanline vs triangle polygon
// fill (the pipeline ablation), point splatting (z-order-sorted vs shuffled
// input — memory-locality ablation), grid-index probes and boundary
// rasterization.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "data/region_generator.h"
#include "geometry/polygon.h"
#include "geometry/triangulate.h"
#include "index/grid_index.h"
#include "index/zorder.h"
#include "raster/point_splat.h"
#include "raster/rasterizer.h"
#include "testing/test_worlds.h"
#include "util/random.h"

namespace urbane {
namespace {

geometry::Polygon MakePolygon(std::size_t vertices) {
  Rng rng(42);
  return testing::RandomStarPolygon(rng, {50.0, 50.0}, 35.0, vertices);
}

void BM_PointInPolygon(benchmark::State& state) {
  const geometry::Polygon poly =
      MakePolygon(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  std::vector<geometry::Vec2> probes(1024);
  for (auto& p : probes) {
    p = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointInPolygon)->Arg(8)->Arg(64)->Arg(512)->Arg(2048);

void BM_ScanlineFill(benchmark::State& state) {
  const geometry::Polygon poly = MakePolygon(64);
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100),
                            static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t pixels = 0;
    raster::ScanlineFillPolygon(vp, poly, [&](int, int x0, int x1) {
      pixels += static_cast<std::size_t>(x1 - x0);
    });
    benchmark::DoNotOptimize(pixels);
  }
}
BENCHMARK(BM_ScanlineFill)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TriangleFill(benchmark::State& state) {
  const geometry::Polygon poly = MakePolygon(64);
  const auto triangles = geometry::TriangulatePolygon(poly);
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100),
                            static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t pixels = 0;
    for (const auto& tri : *triangles) {
      raster::RasterizeTriangle(vp, tri, [&](int, int) { ++pixels; });
    }
    benchmark::DoNotOptimize(pixels);
  }
}
BENCHMARK(BM_TriangleFill)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PointSplat(benchmark::State& state) {
  const bool zorder_sorted = state.range(1) != 0;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  data::PointTable points = testing::MakeUniformPoints(n, 7);
  std::vector<float> xs(points.xs(), points.xs() + n);
  std::vector<float> ys(points.ys(), points.ys() + n);
  if (zorder_sorted) {
    const geometry::BoundingBox bounds(0, 0, 100, 100);
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a,
                                              std::uint32_t b) {
      return index::ZOrderKey({xs[a], ys[a]}, bounds) <
             index::ZOrderKey({xs[b], ys[b]}, bounds);
    });
    std::vector<float> sx(n);
    std::vector<float> sy(n);
    for (std::size_t i = 0; i < n; ++i) {
      sx[i] = xs[order[i]];
      sy[i] = ys[order[i]];
    }
    xs = std::move(sx);
    ys = std::move(sy);
  }
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100.001, 100.001),
                            1024, 1024);
  raster::Buffer2D<std::uint32_t> counts(1024, 1024, 0);
  for (auto _ : state) {
    counts.Fill(0);
    benchmark::DoNotOptimize(raster::SplatPoints(
        vp, xs.data(), ys.data(), n, raster::BlendOp::kAdd,
        [](std::size_t) { return 1u; }, counts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.SetLabel(zorder_sorted ? "zorder-sorted" : "shuffled");
}
BENCHMARK(BM_PointSplat)
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_GridProbe(benchmark::State& state) {
  const data::PointTable points = testing::MakeUniformPoints(200000, 9);
  const auto grid = index::GridIndex::BuildAuto(
      points.xs(), points.ys(), points.size(),
      geometry::BoundingBox(0, 0, 100.001, 100.001),
      static_cast<double>(state.range(0)));
  const geometry::Polygon poly = MakePolygon(64);
  for (auto _ : state) {
    std::size_t candidates = 0;
    grid->ClassifyCells(
        poly,
        [&](int cx, int cy) { candidates += grid->CellSize(cx, cy); },
        [&](int cx, int cy) { candidates += grid->CellSize(cx, cy); });
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_GridProbe)->Arg(16)->Arg(64)->Arg(256);

void BM_BoundaryRasterize(benchmark::State& state) {
  const geometry::Polygon poly =
      MakePolygon(static_cast<std::size_t>(state.range(0)));
  const raster::Viewport vp(geometry::BoundingBox(0, 0, 100, 100), 1024,
                            1024);
  for (auto _ : state) {
    std::size_t cells = 0;
    raster::RasterizePolygonBoundary(vp, poly, [&](int, int) { ++cells; });
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_BoundaryRasterize)->Arg(16)->Arg(128)->Arg(1024);

void BM_Triangulate(benchmark::State& state) {
  const geometry::Polygon poly =
      MakePolygon(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::TriangulatePolygon(poly));
  }
}
BENCHMARK(BM_Triangulate)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace urbane

BENCHMARK_MAIN();
