// Streaming-ingest bench (DESIGN.md §13): sustained append throughput on a
// LiveTable and query latency on its LiveEngine while the writer is active.
//
// Three phases over one synthetic taxi month:
//   append       one writer streams every trip in fixed-size batches through
//                Append(), flushing when the write path pushes back (429 in
//                HTTP terms); reports batch-append latency percentiles and
//                sustained rows/s.
//   query+ingest the same writer streams the second half of the data while
//                this thread replays a fig8-style brushing session (sliding
//                time windows, all four executors) against the LiveEngine.
//   query static the identical session against a stop-the-world
//                SpatialAggregation built over the final concatenated rows —
//                the baseline the ISSUE gates against: concurrent latency
//                must stay within 2x of static per executor.
//
// Latencies are also Observe()d into the global metrics registry
// (ingest.bench.* histograms) so a URBANE_BENCH_CSV run ships them — plus
// the ingest.* counters the write path publishes — in the JSON sidecar that
// BENCH_TRAJECTORY.json entries are folded from.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/planner.h"
#include "core/query.h"
#include "core/spatial_aggregation.h"
#include "data/point_table.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "ingest/live_engine.h"
#include "ingest/live_table.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/timer.h"

namespace {

using namespace urbane;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

// One writer pass: streams rows [begin, end) of `trips` into the table in
// `batch_rows` slices (zero-copy views), flushing and retrying whenever the
// write path is saturated. Appends each successful batch latency to `out`.
Status StreamRows(ingest::LiveTable& table, const data::PointTable& trips,
                  std::size_t begin, std::size_t end, std::size_t batch_rows,
                  std::vector<double>* out) {
  obs::Histogram& append_hist =
      obs::MetricsRegistry::Global().GetHistogram("ingest.bench.append_seconds");
  for (std::size_t offset = begin; offset < end; offset += batch_rows) {
    const std::size_t count = std::min(batch_rows, end - offset);
    std::vector<const float*> attributes;
    for (std::size_t a = 0; a < trips.schema().attribute_count(); ++a) {
      attributes.push_back(trips.attribute_data(a) + offset);
    }
    StatusOr<data::PointTable> batch =
        data::PointTable::View(trips.schema(), trips.xs() + offset,
                               trips.ys() + offset, trips.ts() + offset,
                               attributes, count);
    if (!batch.ok()) {
      return batch.status();
    }
    for (;;) {
      const double start = Now();
      StatusOr<std::uint64_t> watermark = table.Append(*batch);
      if (watermark.ok()) {
        const double seconds = Now() - start;
        out->push_back(seconds);
        append_hist.Observe(seconds);
        break;
      }
      if (watermark.status().code() != StatusCode::kResourceExhausted) {
        return watermark.status();
      }
      // The saturated-writer contract: drain sealed runs, then retry.
      Status flushed = table.Flush();
      if (!flushed.ok()) {
        return flushed;
      }
    }
  }
  return Status::OK();
}

struct FrameStats {
  std::size_t frames = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

FrameStats Summarize(const std::vector<double>& latencies) {
  FrameStats stats;
  stats.frames = latencies.size();
  stats.p50 = Percentile(latencies, 0.50);
  stats.p95 = Percentile(latencies, 0.95);
  stats.max = latencies.empty()
                  ? 0.0
                  : *std::max_element(latencies.begin(), latencies.end());
  return stats;
}

constexpr core::ExecutionMethod kMethods[] = {
    core::ExecutionMethod::kBoundedRaster,
    core::ExecutionMethod::kAccurateRaster, core::ExecutionMethod::kIndexJoin,
    core::ExecutionMethod::kScan};

// The brushing session both phases replay: `frames_per_method` sliding time
// windows (width 1/4 of the domain, advancing 1/32 per frame) per executor,
// SUM(fare_amount) per neighborhood. `execute` runs one query and returns
// its wall seconds (or a failure).
template <typename ExecuteFrame>
Status ReplaySession(std::int64_t t0, std::int64_t t1,
                     std::size_t frames_per_method, const char* metric_phase,
                     std::vector<std::vector<double>>* latencies,
                     const ExecuteFrame& execute) {
  const std::int64_t span = std::max<std::int64_t>(t1 - t0, 32);
  latencies->assign(std::size(kMethods), {});
  for (std::size_t frame = 0; frame < frames_per_method; ++frame) {
    const std::int64_t begin = t0 + (span / 32) * (frame % 24);
    const std::int64_t end = std::min<std::int64_t>(begin + span / 4, t1 + 1);
    for (std::size_t m = 0; m < std::size(kMethods); ++m) {
      core::AggregationQuery query;
      query.aggregate = core::AggregateSpec::Sum("fare_amount");
      query.filter.WithTime(begin, end);
      StatusOr<double> seconds = execute(query, kMethods[m]);
      if (!seconds.ok()) {
        return seconds.status();
      }
      (*latencies)[m].push_back(*seconds);
      obs::MetricsRegistry::Global()
          .GetHistogram(std::string("ingest.bench.query_seconds.") +
                        core::ExecutionMethodToString(kMethods[m]) + "." +
                        metric_phase)
          .Observe(*seconds);
    }
  }
  return Status::OK();
}

int Run() {
  bench::PrintHeader(
      "Streaming ingest: appends under live queries",
      "One writer streams the taxi month into a LiveTable (batch appends, "
      "flush-on-backpressure) while a fig8-style brushing session replays "
      "against the LiveEngine; concurrent frame latency is gated against a "
      "stop-the-world engine over the same final rows (< 2x per executor).");
  obs::SetMetricsEnabled(true);

  data::TaxiGeneratorOptions taxi_options;
  taxi_options.num_trips = bench::ScaledCount(600'000);
  std::printf("generating %zu trips...\n", taxi_options.num_trips);
  const data::PointTable trips = data::GenerateTaxiTrips(taxi_options);
  const data::RegionSet neighborhoods = data::GenerateNeighborhoods();
  const auto [t0, t1] = trips.TimeRange();
  const std::size_t half = trips.size() / 2;
  const std::size_t batch_rows = 8192;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "urbane_bench_ingest")
          .string();
  std::filesystem::remove_all(dir);

  ingest::IngestOptions ingest_options;
  ingest_options.memtable_rows = 64 * 1024;
  ingest_options.max_sealed_runs = 2;
  ingest_options.run_block_rows = 64 * 1024;
  StatusOr<std::unique_ptr<ingest::LiveTable>> table = ingest::LiveTable::Open(
      dir, trips.schema(), nullptr, nullptr, ingest_options);
  if (!table.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  core::ExecutionContext exec;
  exec.num_threads = bench::BenchThreads();
  ingest::LiveEngineOptions live_options;
  live_options.raster_options.resolution = 1024;
  live_options.exec = exec;
  ingest::LiveEngine live(table->get(), &neighborhoods, live_options);

  bench::ResultTable result(
      "ingest_streaming",
      {"phase", "executor", "frames", "p50", "p95", "max", "throughput",
       "vs_static"});

  // Phase 1: unloaded append throughput over the first half.
  std::vector<double> append_latencies;
  {
    const double start = Now();
    Status streamed =
        StreamRows(**table, trips, 0, half, batch_rows, &append_latencies);
    if (!streamed.ok()) {
      std::fprintf(stderr, "append failed: %s\n", streamed.ToString().c_str());
      return 1;
    }
    const double elapsed = Now() - start;
    const FrameStats stats = Summarize(append_latencies);
    result.AddRow({"append", "-", std::to_string(stats.frames),
                   FormatDuration(stats.p50), FormatDuration(stats.p95),
                   FormatDuration(stats.max),
                   bench::ResultTable::Cell(
                       "%.0f rows/s", static_cast<double>(half) / elapsed),
                   "-"});
  }

  // Phase 2: the writer streams the second half while this thread replays
  // the brushing session against the LiveEngine.
  std::vector<std::vector<double>> concurrent;
  std::vector<double> loaded_append_latencies;
  {
    Status writer_status = Status::OK();
    std::thread writer([&] {
      writer_status = StreamRows(**table, trips, half, trips.size(),
                                 batch_rows, &loaded_append_latencies);
    });
    // Replay until the writer drains, then keep the recorded frames: the
    // frame budget is sized so the session outlasts the writer at every
    // URBANE_BENCH_SCALE (extra frames just tighten the percentiles).
    Status replayed = ReplaySession(
        t0, t1, 24, "concurrent", &concurrent,
        [&](core::AggregationQuery query,
            core::ExecutionMethod method) -> StatusOr<double> {
          const double start = Now();
          StatusOr<core::QueryResult> frame = live.Execute(query, method);
          if (!frame.ok()) {
            return frame.status();
          }
          return Now() - start;
        });
    writer.join();
    if (!writer_status.ok() || !replayed.ok()) {
      std::fprintf(stderr, "concurrent phase failed: %s\n",
                   (writer_status.ok() ? replayed : writer_status)
                       .ToString()
                       .c_str());
      return 1;
    }
  }

  // Settle the table into its steady read-optimized shape, then build the
  // stop-the-world baseline over the identical row set.
  if (Status status = (*table)->Flush(); !status.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = (*table)->Compact(); !status.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const ingest::IngestStats ingest_stats = (*table)->stats();
  std::printf(
      "\ningested %llu rows: %llu appends, %llu rejected (backpressure), "
      "%llu flushes, %llu compactions\n\n",
      static_cast<unsigned long long>(ingest_stats.watermark),
      static_cast<unsigned long long>(ingest_stats.appends),
      static_cast<unsigned long long>(ingest_stats.rejected),
      static_cast<unsigned long long>(ingest_stats.flushes),
      static_cast<unsigned long long>(ingest_stats.compactions));

  std::vector<std::vector<double>> static_latencies;
  {
    const ingest::LiveSnapshot snapshot = (*table)->Snapshot();
    data::PointTable all(trips.schema());
    all.Reserve(snapshot.watermark);
    for (const auto& run : snapshot.runs) {
      const data::PointTable& part = run->table;
      for (std::size_t i = 0; i < part.size(); ++i) {
        std::vector<float> attributes(part.schema().attribute_count());
        for (std::size_t a = 0; a < attributes.size(); ++a) {
          attributes[a] = part.attribute(i, a);
        }
        if (Status status = all.AppendRow(part.x(i), part.y(i), part.t(i),
                                          attributes);
            !status.ok()) {
          std::fprintf(stderr, "concat failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }
    }
    core::RasterJoinOptions raster_options;
    raster_options.resolution = 1024;
    raster_options.exec = exec;
    core::SpatialAggregation baseline(all, neighborhoods, raster_options,
                                      core::IndexJoinOptions(), exec);
    Status replayed = ReplaySession(
        t0, t1, 24, "static", &static_latencies,
        [&](core::AggregationQuery query,
            core::ExecutionMethod method) -> StatusOr<double> {
          const double start = Now();
          StatusOr<core::QueryResult> frame = baseline.Execute(query, method);
          if (!frame.ok()) {
            return frame.status();
          }
          return Now() - start;
        });
    if (!replayed.ok()) {
      std::fprintf(stderr, "static phase failed: %s\n",
                   replayed.ToString().c_str());
      return 1;
    }
  }

  {
    const FrameStats stats = Summarize(loaded_append_latencies);
    result.AddRow(
        {"append (loaded)", "-", std::to_string(stats.frames),
         FormatDuration(stats.p50), FormatDuration(stats.p95),
         FormatDuration(stats.max), "-", "-"});
  }
  for (std::size_t m = 0; m < std::size(kMethods); ++m) {
    const FrameStats st = Summarize(static_latencies[m]);
    result.AddRow({"query static", core::ExecutionMethodToString(kMethods[m]),
                   std::to_string(st.frames), FormatDuration(st.p50),
                   FormatDuration(st.p95), FormatDuration(st.max), "-", "-"});
  }
  for (std::size_t m = 0; m < std::size(kMethods); ++m) {
    const FrameStats live_stats = Summarize(concurrent[m]);
    const FrameStats static_stats = Summarize(static_latencies[m]);
    const double ratio = static_stats.p50 > 0.0
                             ? live_stats.p50 / static_stats.p50
                             : 0.0;
    result.AddRow(
        {"query+ingest", core::ExecutionMethodToString(kMethods[m]),
         std::to_string(live_stats.frames), FormatDuration(live_stats.p50),
         FormatDuration(live_stats.p95), FormatDuration(live_stats.max), "-",
         bench::ResultTable::Cell("%.2fx", ratio)});
  }
  result.Finish();
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace

int main() { return Run(); }
