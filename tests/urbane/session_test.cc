#include "urbane/session.h"

#include <gtest/gtest.h>

#include "testing/test_worlds.h"

namespace urbane::app {
namespace {

TEST(GenerateTraceTest, DeterministicAndSized) {
  const auto a = GenerateInteractionTrace(50, 7);
  const auto b = GenerateInteractionTrace(50, 7);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].magnitude, b[i].magnitude);
  }
}

TEST(GenerateTraceTest, MixesInteractionKinds) {
  const auto trace = GenerateInteractionTrace(300, 11);
  std::set<InteractionKind> kinds;
  for (const auto& event : trace) {
    kinds.insert(event.kind);
  }
  EXPECT_GE(kinds.size(), 4u);
}

TEST(SessionReplayTest, ProducesFramePerEvent) {
  const auto points = testing::MakeUniformPoints(3000, 21);
  const auto regions = testing::MakeTessellationRegions(3, 22);
  core::RasterJoinOptions options;
  options.resolution = 128;
  core::SpatialAggregation engine(points, regions, options);
  InteractionSession session(engine, "v", 0, 86400);
  const auto trace = GenerateInteractionTrace(20, 3);
  const auto frames =
      session.Replay(trace, core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(frames.ok()) << frames.status();
  ASSERT_EQ(frames->size(), 20u);
  for (const FrameRecord& frame : *frames) {
    EXPECT_GT(frame.latency_seconds, 0.0);
    EXPECT_GE(frame.selectivity, 0.0);
  }
}

TEST(SessionReplayTest, ChecksumsMatchAcrossExactExecutors) {
  const auto points = testing::MakeUniformPoints(3000, 23);
  const auto regions = testing::MakeTessellationRegions(3, 24);
  core::SpatialAggregation engine(points, regions);
  InteractionSession session(engine, "v", 0, 86400);
  const auto trace = GenerateInteractionTrace(15, 5);
  const auto scan_frames =
      session.Replay(trace, core::ExecutionMethod::kScan);
  const auto raster_frames =
      session.Replay(trace, core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(scan_frames.ok());
  ASSERT_TRUE(raster_frames.ok());
  for (std::size_t i = 0; i < scan_frames->size(); ++i) {
    EXPECT_NEAR((*scan_frames)[i].checksum, (*raster_frames)[i].checksum,
                1e-6 * std::max(1.0, std::fabs((*scan_frames)[i].checksum)))
        << "frame " << i;
  }
}

TEST(SessionReplayTest, UnknownAttributeRejected) {
  const auto points = testing::MakeUniformPoints(100, 25);
  const auto regions = testing::MakeTessellationRegions(2, 26);
  core::SpatialAggregation engine(points, regions);
  InteractionSession session(engine, "missing", 0, 86400);
  EXPECT_FALSE(session
                   .Replay(GenerateInteractionTrace(3, 1),
                           core::ExecutionMethod::kScan)
                   .ok());
}

TEST(SummarizeFramesTest, PercentilesAndBudget) {
  std::vector<FrameRecord> frames;
  for (int i = 1; i <= 10; ++i) {
    FrameRecord frame;
    frame.kind = InteractionKind::kTimeBrushMove;
    frame.latency_seconds = 0.02 * i;  // 20ms .. 200ms
    frames.push_back(frame);
  }
  const SessionSummary summary = SummarizeFrames(frames, 0.1);
  EXPECT_EQ(summary.frames, 10u);
  EXPECT_EQ(summary.interactive_frames, 5u);  // 20..100ms
  EXPECT_NEAR(summary.max_seconds, 0.2, 1e-12);
  EXPECT_GT(summary.p95_seconds, summary.p50_seconds);
  EXPECT_NEAR(summary.total_seconds, 1.1, 1e-9);
}

TEST(InteractionKindToStringTest, AllNamed) {
  EXPECT_STREQ(InteractionKindToString(InteractionKind::kTimeBrushMove),
               "brush-move");
  EXPECT_STREQ(InteractionKindToString(InteractionKind::kPanZoom),
               "pan-zoom");
}

}  // namespace
}  // namespace urbane::app
