#include "urbane/exploration_view.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_worlds.h"

namespace urbane::app {
namespace {

void PopulateManagerWorld(DatasetManager& manager) {
  EXPECT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(4000, 1))
          .ok());
  EXPECT_TRUE(
      manager.AddPointDataset("crime", testing::MakeUniformPoints(2000, 2))
          .ok());
  EXPECT_TRUE(manager
                  .AddRegionLayer("hoods",
                                  testing::MakeTessellationRegions(4, 3))
                  .ok());
}

ProfileMetric CountMetric(const std::string& dataset,
                          const std::string& label) {
  ProfileMetric metric;
  metric.label = label;
  metric.dataset = dataset;
  metric.aggregate = core::AggregateSpec::Count();
  return metric;
}

TEST(ExplorationViewTest, ComputesProfileMatrix) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  view.AddMetric(CountMetric("taxi", "taxi pickups"));
  view.AddMetric(CountMetric("crime", "crimes"));
  const auto table = view.ComputeProfiles(core::ExecutionMethod::kScan);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->metric_count(), 2u);
  EXPECT_EQ(table->region_count(), 16u);
  double total = 0.0;
  for (const double v : table->values[0]) total += v;
  EXPECT_DOUBLE_EQ(total, 4000.0);  // tessellation partitions the world
}

TEST(ExplorationViewTest, NoMetricsFails) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  EXPECT_FALSE(view.ComputeProfiles(core::ExecutionMethod::kScan).ok());
}

TEST(ExplorationViewTest, UnknownDatasetFails) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  view.AddMetric(CountMetric("nope", "x"));
  EXPECT_FALSE(view.ComputeProfiles(core::ExecutionMethod::kScan).ok());
}

TEST(ExplorationViewTest, ZScoresAreNormalized) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  view.AddMetric(CountMetric("taxi", "t"));
  const auto table = view.ComputeProfiles(core::ExecutionMethod::kScan);
  ASSERT_TRUE(table.ok());
  double mean = 0.0;
  for (const double z : table->zscores[0]) mean += z;
  mean /= static_cast<double>(table->region_count());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(ExplorationViewTest, RankByMetricDescending) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  view.AddMetric(CountMetric("taxi", "t"));
  const auto table = view.ComputeProfiles(core::ExecutionMethod::kScan);
  ASSERT_TRUE(table.ok());
  const auto order = DataExplorationView::RankByMetric(*table, 0);
  ASSERT_EQ(order.size(), table->region_count());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(table->values[0][order[i - 1]], table->values[0][order[i]]);
  }
}

TEST(ExplorationViewTest, MostSimilarExcludesSelfAndSorts) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  view.AddMetric(CountMetric("taxi", "t"));
  view.AddMetric(CountMetric("crime", "c"));
  const auto table = view.ComputeProfiles(core::ExecutionMethod::kScan);
  ASSERT_TRUE(table.ok());
  const auto similar = DataExplorationView::MostSimilar(*table, 0, 5);
  ASSERT_EQ(similar.size(), 5u);
  for (std::size_t i = 0; i < similar.size(); ++i) {
    EXPECT_NE(similar[i].region_index, 0u);
    if (i > 0) {
      EXPECT_GE(similar[i].distance, similar[i - 1].distance);
    }
  }
}

TEST(ExplorationViewTest, RasterMethodApproximatesScanProfiles) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  view.AddMetric(CountMetric("taxi", "t"));
  const auto exact = view.ComputeProfiles(core::ExecutionMethod::kScan);
  const auto raster =
      view.ComputeProfiles(core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(raster.ok());
  for (std::size_t r = 0; r < exact->region_count(); ++r) {
    EXPECT_DOUBLE_EQ(exact->values[0][r], raster->values[0][r]);
  }
}

TEST(ExplorationViewTest, TimeSeriesBinsSumToWindowTotal) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  const ProfileMetric metric = CountMetric("taxi", "t");
  const auto series = view.ComputeTimeSeries(
      metric, 0, 86400, 8, core::ExecutionMethod::kScan);
  ASSERT_TRUE(series.ok()) << series.status();
  ASSERT_EQ(series->size(), 8u);
  double total = 0.0;
  for (const auto& bin : *series) {
    for (const double v : bin) total += v;
  }
  EXPECT_DOUBLE_EQ(total, 4000.0);
}

TEST(ExplorationViewTest, TimeSeriesRejectsBadArgs) {
  DatasetManager manager;
  PopulateManagerWorld(manager);
  DataExplorationView view(manager, "hoods");
  const ProfileMetric metric = CountMetric("taxi", "t");
  EXPECT_FALSE(view.ComputeTimeSeries(metric, 100, 100, 4,
                                      core::ExecutionMethod::kScan)
                   .ok());
  EXPECT_FALSE(view.ComputeTimeSeries(metric, 0, 100, 0,
                                      core::ExecutionMethod::kScan)
                   .ok());
}

}  // namespace
}  // namespace urbane::app
