#include "urbane/chart_view.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

namespace urbane::app {
namespace {

ChartSeries Ramp(const std::string& label, int bins, double slope) {
  ChartSeries s;
  s.label = label;
  for (int i = 0; i < bins; ++i) {
    s.values.push_back(slope * i);
  }
  return s;
}

TEST(ChartViewTest, RendersRequestedSize) {
  ChartOptions options;
  options.width = 320;
  options.height = 160;
  const auto image = RenderTimeSeriesChart({Ramp("a", 10, 1.0)}, options);
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->width(), 320);
  EXPECT_EQ(image->height(), 160);
}

TEST(ChartViewTest, MultipleSeriesGetDistinctColors) {
  ChartOptions options;
  options.background = Rgb{0, 0, 0};
  const auto image = RenderTimeSeriesChart(
      {Ramp("up", 16, 1.0), Ramp("down", 16, -1.0), Ramp("flat", 16, 0.0)},
      options);
  ASSERT_TRUE(image.ok());
  std::set<std::uint32_t> colors;
  for (const Rgb& p : image->data()) {
    colors.insert((std::uint32_t{p.r} << 16) | (std::uint32_t{p.g} << 8) |
                  p.b);
  }
  // Background + axis/text + >= 3 series colors.
  EXPECT_GE(colors.size(), 5u);
}

TEST(ChartViewTest, RejectsBadInput) {
  EXPECT_FALSE(RenderTimeSeriesChart({}).ok());
  EXPECT_FALSE(RenderTimeSeriesChart({Ramp("one-point", 1, 1.0)}).ok());
  ChartSeries short_series = Ramp("short", 5, 1.0);
  ChartSeries long_series = Ramp("long", 9, 1.0);
  EXPECT_FALSE(RenderTimeSeriesChart({short_series, long_series}).ok());
  ChartOptions tiny;
  tiny.width = 20;
  tiny.height = 20;
  EXPECT_FALSE(RenderTimeSeriesChart({Ramp("a", 4, 1.0)}, tiny).ok());
}

TEST(ChartViewTest, NaNGapsDoNotCrash) {
  ChartSeries gappy = Ramp("gaps", 12, 2.0);
  gappy.values[5] = std::nan("");
  gappy.values[6] = std::nan("");
  const auto image = RenderTimeSeriesChart({gappy});
  ASSERT_TRUE(image.ok());
}

TEST(ChartViewTest, ConstantSeriesAutoScales) {
  const auto image = RenderTimeSeriesChart({Ramp("flat", 8, 0.0)});
  ASSERT_TRUE(image.ok());
}

TEST(ChartViewTest, ExplicitYRangeClampsExcursions) {
  ChartOptions options;
  options.y_lo = 0.0;
  options.y_hi = 5.0;
  ChartSeries wild = Ramp("wild", 10, 100.0);  // values way above y_hi
  const auto image = RenderTimeSeriesChart({wild}, options);
  ASSERT_TRUE(image.ok());
}

TEST(ChartViewTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/chart.ppm";
  const auto image =
      RenderTimeSeriesChartToFile({Ramp("a", 8, 1.0)}, path);
  ASSERT_TRUE(image.ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane::app
