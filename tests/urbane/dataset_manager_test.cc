#include "urbane/dataset_manager.h"

#include <gtest/gtest.h>

#include "testing/test_worlds.h"

namespace urbane::app {
namespace {

TEST(DatasetManagerTest, RegisterAndLookup) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(100, 1))
          .ok());
  ASSERT_TRUE(
      manager.AddRegionLayer("hoods", testing::MakeRandomRegions(3, 2)).ok());
  EXPECT_EQ(manager.PointDatasetNames(),
            std::vector<std::string>{"taxi"});
  EXPECT_EQ(manager.RegionLayerNames(), std::vector<std::string>{"hoods"});
  ASSERT_TRUE(manager.PointDataset("taxi").ok());
  EXPECT_EQ(manager.PointDataset("taxi").value()->size(), 100u);
  EXPECT_FALSE(manager.PointDataset("nope").ok());
  EXPECT_FALSE(manager.RegionLayer("nope").ok());
}

TEST(DatasetManagerTest, RejectsDuplicatesAndEmptyNames) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("a", testing::MakeUniformPoints(10, 1)).ok());
  EXPECT_FALSE(
      manager.AddPointDataset("a", testing::MakeUniformPoints(10, 2)).ok());
  EXPECT_FALSE(
      manager.AddPointDataset("", testing::MakeUniformPoints(10, 3)).ok());
  ASSERT_TRUE(
      manager.AddRegionLayer("r", testing::MakeRandomRegions(2, 4)).ok());
  EXPECT_FALSE(
      manager.AddRegionLayer("r", testing::MakeRandomRegions(2, 5)).ok());
}

TEST(DatasetManagerTest, EngineIsCachedPerPair) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(500, 6))
          .ok());
  ASSERT_TRUE(
      manager.AddRegionLayer("hoods", testing::MakeRandomRegions(3, 7)).ok());
  ASSERT_TRUE(
      manager.AddRegionLayer("tracts", testing::MakeRandomRegions(5, 8)).ok());
  const auto e1 = manager.Engine("taxi", "hoods");
  const auto e2 = manager.Engine("taxi", "hoods");
  const auto e3 = manager.Engine("taxi", "tracts");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(*e1, *e2);
  EXPECT_NE(*e1, *e3);
  EXPECT_FALSE(manager.Engine("nope", "hoods").ok());
}

TEST(DatasetManagerTest, EngineRunsQueries) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(2000, 9))
          .ok());
  ASSERT_TRUE(manager
                  .AddRegionLayer("hoods",
                                  testing::MakeTessellationRegions(3, 10))
                  .ok());
  auto engine = manager.Engine("taxi", "hoods");
  ASSERT_TRUE(engine.ok());
  core::AggregationQuery query;
  const auto result =
      (*engine)->Execute(query, core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(result.ok());
  std::uint64_t total = 0;
  for (const auto c : result->counts) total += c;
  EXPECT_EQ(total, 2000u);
}

TEST(DatasetManagerTest, TemporalIndexBuiltAndCached) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(1000, 11))
          .ok());
  const auto t1 = manager.Temporal("taxi");
  const auto t2 = manager.Temporal("taxi");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, *t2);
  EXPECT_EQ((*t1)->point_count(), 1000u);
  EXPECT_FALSE(manager.Temporal("nope").ok());
}

TEST(DatasetManagerTest, WorkspaceSaveLoadRoundTrip) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(500, 20))
          .ok());
  ASSERT_TRUE(manager
                  .AddRegionLayer("hoods",
                                  testing::MakeTessellationRegions(2, 21))
                  .ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(manager.SaveWorkspace(dir).ok());

  DatasetManager reloaded;
  ASSERT_TRUE(reloaded.LoadWorkspace(dir + "/urbane.workspace.json").ok());
  ASSERT_TRUE(reloaded.PointDataset("taxi").ok());
  EXPECT_EQ(reloaded.PointDataset("taxi").value()->size(), 500u);
  ASSERT_TRUE(reloaded.RegionLayer("hoods").ok());
  EXPECT_EQ(reloaded.RegionLayer("hoods").value()->size(), 4u);
  // Queries work on the reloaded workspace.
  const auto result =
      reloaded.ExecuteSql("SELECT COUNT(*) FROM taxi, hoods",
                          core::ExecutionMethod::kScan);
  ASSERT_TRUE(result.ok());
  std::uint64_t total = 0;
  for (const auto c : result->counts) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(DatasetManagerTest, SaveWorkspaceCreatesDirectory) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("t", testing::MakeUniformPoints(50, 24)).ok());
  const std::string dir =
      ::testing::TempDir() + "/nested/workspace/dir";
  ASSERT_TRUE(manager.SaveWorkspace(dir).ok());
  DatasetManager reloaded;
  EXPECT_TRUE(reloaded.LoadWorkspace(dir + "/urbane.workspace.json").ok());
}

TEST(DatasetManagerTest, LoadWorkspaceMissingManifestFails) {
  DatasetManager manager;
  EXPECT_FALSE(manager.LoadWorkspace("/no/such/manifest.json").ok());
}

TEST(DatasetManagerTest, ExecuteSqlParsesAndRuns) {
  DatasetManager manager;
  ASSERT_TRUE(
      manager.AddPointDataset("taxi", testing::MakeUniformPoints(1000, 22))
          .ok());
  ASSERT_TRUE(manager
                  .AddRegionLayer("hoods",
                                  testing::MakeTessellationRegions(2, 23))
                  .ok());
  const auto result = manager.ExecuteSql(
      "SELECT AVG(v) FROM taxi, hoods WHERE v IN [0, 10]",
      core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 4u);
  EXPECT_FALSE(
      manager.ExecuteSql("garbage", core::ExecutionMethod::kScan).ok());
}

TEST(DatasetManagerTest, ValidatesTableOnAdd) {
  DatasetManager manager;
  data::PointTable ragged(data::Schema({"v"}));
  ragged.AppendXyt(0, 0, 0);  // attribute column left short
  EXPECT_FALSE(manager.AddPointDataset("bad", std::move(ragged)).ok());
}

}  // namespace
}  // namespace urbane::app
