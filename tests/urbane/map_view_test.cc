#include "urbane/map_view.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "testing/test_worlds.h"

namespace urbane::app {
namespace {

core::QueryResult MakeResult(std::size_t regions, double base = 10.0) {
  core::QueryResult result;
  for (std::size_t r = 0; r < regions; ++r) {
    result.values.push_back(base * static_cast<double>(r + 1));
    result.counts.push_back(r + 1);
  }
  return result;
}

TEST(RenderChoroplethTest, ProducesImageOfRequestedWidth) {
  const auto regions = testing::MakeTessellationRegions(4, 1);
  MapViewOptions options;
  options.image_width = 200;
  const auto render =
      RenderChoropleth(regions, MakeResult(regions.size()), options);
  ASSERT_TRUE(render.ok()) << render.status();
  EXPECT_EQ(render->image.width(), 200);
  EXPECT_GT(render->image.height(), 0);
  EXPECT_LT(render->legend_lo, render->legend_hi);
}

TEST(RenderChoroplethTest, DifferentValuesYieldDifferentColors) {
  const auto regions = testing::MakeTessellationRegions(2, 2);  // 4 regions
  core::QueryResult result = MakeResult(regions.size());
  result.values = {0.0, 1000.0, 0.0, 1000.0};
  MapViewOptions options;
  options.image_width = 100;
  options.draw_boundaries = false;
  const auto render = RenderChoropleth(regions, result, options);
  ASSERT_TRUE(render.ok());
  std::set<std::uint32_t> colors;
  for (const Rgb& pixel : render->image.data()) {
    colors.insert((std::uint32_t{pixel.r} << 16) |
                  (std::uint32_t{pixel.g} << 8) | pixel.b);
  }
  EXPECT_GE(colors.size(), 2u);
}

TEST(RenderChoroplethTest, SizeMismatchRejected) {
  const auto regions = testing::MakeTessellationRegions(2, 3);
  EXPECT_FALSE(RenderChoropleth(regions, MakeResult(1)).ok());
}

TEST(RenderChoroplethTest, EmptyRegionSetRejected) {
  data::RegionSet empty;
  EXPECT_FALSE(RenderChoropleth(empty, core::QueryResult{}).ok());
}

TEST(RenderChoroplethTest, NaNValuesRenderedAsBackground) {
  const auto regions = testing::MakeTessellationRegions(2, 4);
  core::QueryResult result = MakeResult(regions.size());
  result.values[0] = std::nan("");
  const auto render = RenderChoropleth(regions, result);
  ASSERT_TRUE(render.ok());  // must not crash or poison the legend
  EXPECT_TRUE(std::isfinite(render->legend_lo));
  EXPECT_TRUE(std::isfinite(render->legend_hi));
}

TEST(RenderChoroplethTest, ExplicitScaleUsed) {
  const auto regions = testing::MakeTessellationRegions(2, 5);
  MapViewOptions options;
  options.scale_lo = 0.0;
  options.scale_hi = 1000.0;
  const auto render = RenderChoropleth(regions, MakeResult(regions.size()),
                                       options);
  ASSERT_TRUE(render.ok());
  EXPECT_DOUBLE_EQ(render->legend_lo, 0.0);
  EXPECT_DOUBLE_EQ(render->legend_hi, 1000.0);
}

TEST(RenderChoroplethToFileTest, WritesPpm) {
  const auto regions = testing::MakeTessellationRegions(2, 6);
  const std::string path = ::testing::TempDir() + "/choropleth.ppm";
  const auto render =
      RenderChoroplethToFile(regions, MakeResult(regions.size()), path);
  ASSERT_TRUE(render.ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(RenderChoroplethTest, LevelOfDetailSimplification) {
  // Vertex-heavy regions: LOD rendering must succeed and produce a broadly
  // similar image (same fill colors, slightly different boundaries).
  data::RandomRegionOptions region_options;
  region_options.count = 8;
  region_options.vertices_per_region = 512;
  region_options.bounds = geometry::BoundingBox(0, 0, 100, 100);
  const data::RegionSet regions = data::GenerateRandomRegions(region_options);
  core::QueryResult result = MakeResult(regions.size());
  MapViewOptions plain;
  plain.image_width = 200;
  plain.draw_legend = false;
  MapViewOptions lod = plain;
  lod.simplify_tolerance_px = 1.0;
  const auto a = RenderChoropleth(regions, result, plain);
  const auto b = RenderChoropleth(regions, result, lod);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Images agree on the overwhelming majority of pixels.
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a->image.data().size(); ++i) {
    if (!(a->image.data()[i] == b->image.data()[i])) ++differing;
  }
  EXPECT_LT(differing, a->image.data().size() / 10);
}

TEST(RenderChoroplethTest, LegendCanBeDisabled) {
  const auto regions = testing::MakeTessellationRegions(2, 9);
  MapViewOptions with;
  MapViewOptions without;
  without.draw_legend = false;
  const auto a = RenderChoropleth(regions, MakeResult(regions.size()), with);
  const auto b =
      RenderChoropleth(regions, MakeResult(regions.size()), without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->image.data(), b->image.data());
}

TEST(RenderChoroplethTest, EndToEndFromQuery) {
  const auto points = testing::MakeUniformPoints(3000, 7);
  const auto regions = testing::MakeTessellationRegions(3, 8);
  core::SpatialAggregation engine(points, regions);
  const auto result = engine.Execute(core::AggregationQuery{},
                                     core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(result.ok());
  const auto render = RenderChoropleth(regions, *result);
  ASSERT_TRUE(render.ok());
  EXPECT_GT(render->legend_hi, 0.0);
}

}  // namespace
}  // namespace urbane::app
