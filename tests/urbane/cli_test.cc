#include "urbane/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/slow_query_log.h"

namespace urbane::app {
namespace {

std::string RunCommand(CommandInterpreter& cli, const std::string& line,
                bool* keep_going = nullptr) {
  std::ostringstream out;
  const bool cont = cli.Execute(line, out);
  if (keep_going != nullptr) {
    *keep_going = cont;
  }
  return out.str();
}

TEST(CliTest, HelpAndUnknownCommand) {
  CommandInterpreter cli;
  EXPECT_NE(RunCommand(cli, "help").find("commands:"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "frobnicate").find("error"), std::string::npos);
}

TEST(CliTest, QuitStopsSession) {
  CommandInterpreter cli;
  bool keep_going = true;
  RunCommand(cli, "quit", &keep_going);
  EXPECT_FALSE(keep_going);
}

TEST(CliTest, BlankAndCommentLinesIgnored) {
  CommandInterpreter cli;
  bool keep_going = false;
  EXPECT_EQ(RunCommand(cli, "", &keep_going), "");
  EXPECT_TRUE(keep_going);
  EXPECT_EQ(RunCommand(cli, "  # comment", &keep_going), "");
  EXPECT_TRUE(keep_going);
}

TEST(CliTest, GenListSqlFlow) {
  CommandInterpreter cli;
  EXPECT_NE(RunCommand(cli, "gen taxi t 5000 7").find("generated 't'"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "gen regions h neighborhoods").find("generated 'h'"),
            std::string::npos);
  const std::string listing = RunCommand(cli, "list");
  EXPECT_NE(listing.find("t(5000)"), std::string::npos);
  EXPECT_NE(listing.find("h(256)"), std::string::npos);
  const std::string result = RunCommand(cli, "sql SELECT COUNT(*) FROM t, h");
  EXPECT_NE(result.find("256 groups"), std::string::npos);
  EXPECT_NE(result.find("5000 matching points"), std::string::npos);
}

TEST(CliTest, CacheCommandFlow) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 2000 7");
  RunCommand(cli, "gen regions h boroughs");
  EXPECT_NE(RunCommand(cli, "cache t h on 32").find("result cache on"),
            std::string::npos);
  RunCommand(cli, "method scan");
  RunCommand(cli, "sql SELECT COUNT(*) FROM t, h");
  RunCommand(cli, "sql SELECT COUNT(*) FROM t, h");
  const std::string stats = RunCommand(cli, "cache t h stats");
  EXPECT_NE(stats.find("hits=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("entries=1"), std::string::npos) << stats;
  EXPECT_NE(RunCommand(cli, "cache t h off").find("result cache off"),
            std::string::npos);
  const std::string cleared = RunCommand(cli, "cache t h stats");
  EXPECT_NE(cleared.find("entries=0"), std::string::npos) << cleared;
  // Errors: unknown engine pair and a bad action.
  EXPECT_NE(RunCommand(cli, "cache nope h on").find("error"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "cache t h sideways").find("error"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "cache t h").find("error"), std::string::npos);
}

TEST(CliTest, BareSelectAccepted) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 2000");
  RunCommand(cli, "gen regions h boroughs");
  const std::string result = RunCommand(cli, "SELECT COUNT(*) FROM t, h");
  EXPECT_NE(result.find("6 groups"), std::string::npos);
}

TEST(CliTest, MethodSwitching) {
  CommandInterpreter cli;
  EXPECT_NE(RunCommand(cli, "method scan").find("scan"), std::string::npos);
  EXPECT_EQ(cli.method(), core::ExecutionMethod::kScan);
  EXPECT_NE(RunCommand(cli, "method raster").find("raster"), std::string::npos);
  EXPECT_EQ(cli.method(), core::ExecutionMethod::kBoundedRaster);
  EXPECT_NE(RunCommand(cli, "method bogus").find("error"), std::string::npos);
}

TEST(CliTest, RasterMethodReportsErrorBounds) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 5000");
  RunCommand(cli, "gen regions h boroughs");
  RunCommand(cli, "method raster");
  const std::string result = RunCommand(cli, "sql SELECT COUNT(*) FROM t, h");
  EXPECT_NE(result.find("err<="), std::string::npos);
}

TEST(CliTest, SqlAgainstMissingDatasetFails) {
  CommandInterpreter cli;
  const std::string result = RunCommand(cli, "sql SELECT COUNT(*) FROM no, pe");
  EXPECT_NE(result.find("error"), std::string::npos);
}

TEST(CliTest, SaveAndLoadRoundTrip) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 1000");
  RunCommand(cli, "gen regions h boroughs");
  const std::string points_path = ::testing::TempDir() + "/cli_points.upt";
  const std::string regions_path = ::testing::TempDir() + "/cli_regions.urg";
  EXPECT_NE(RunCommand(cli, "save points t " + points_path).find("saved"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "save regions h " + regions_path).find("saved"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "load points t2 " + points_path).find("loaded 1000"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "load regions h2 " + regions_path).find("loaded 6"),
            std::string::npos);
  const std::string result = RunCommand(cli, "sql SELECT COUNT(*) FROM t2, h2");
  EXPECT_NE(result.find("1000 matching points"), std::string::npos);
  std::remove(points_path.c_str());
  std::remove(regions_path.c_str());
}

TEST(CliTest, CsvAndGeoJsonPathsSupported) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 500");
  RunCommand(cli, "gen regions h boroughs");
  const std::string csv_path = ::testing::TempDir() + "/cli_points.csv";
  const std::string geojson_path = ::testing::TempDir() + "/cli_regions.geojson";
  RunCommand(cli, "save points t " + csv_path);
  RunCommand(cli, "save regions h " + geojson_path);
  EXPECT_NE(RunCommand(cli, "load points tc " + csv_path).find("loaded 500"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "load regions hg " + geojson_path).find("loaded 6"),
            std::string::npos);
  std::remove(csv_path.c_str());
  std::remove(geojson_path.c_str());
}

TEST(CliTest, MapWritesImage) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 2000");
  RunCommand(cli, "gen regions h boroughs");
  const std::string path = ::testing::TempDir() + "/cli_map.ppm";
  const std::string result = RunCommand(cli, "map t h " + path + " MY TITLE");
  EXPECT_NE(result.find("wrote"), std::string::npos);
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(CliTest, WorkspaceCommands) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 300");
  RunCommand(cli, "gen regions h boroughs");
  const std::string dir = ::testing::TempDir();
  EXPECT_NE(RunCommand(cli, "save workspace " + dir).find("saved workspace"),
            std::string::npos);
  CommandInterpreter fresh;
  const std::string loaded =
      RunCommand(fresh, "load workspace " + dir + "/urbane.workspace.json");
  EXPECT_NE(loaded.find("loaded workspace"), std::string::npos);
  EXPECT_NE(loaded.find("t(300)"), std::string::npos);
  EXPECT_NE(RunCommand(fresh, "load workspace").find("error"),
            std::string::npos);
}

TEST(CliTest, UsageErrorsReported) {
  CommandInterpreter cli;
  EXPECT_NE(RunCommand(cli, "gen taxi").find("error"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "gen taxi t notanumber").find("error"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "gen taxi t -5").find("error"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "load points x").find("error"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "save wat x y").find("error"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "map onlyone").find("error"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "gen regions r boguslayer").find("error"),
            std::string::npos);
}

TEST(CliTest, DuplicateNameRejected) {
  CommandInterpreter cli;
  RunCommand(cli, "gen taxi t 100");
  EXPECT_NE(RunCommand(cli, "gen taxi t 100").find("error"), std::string::npos);
}

TEST(CliTest, StatsJsonIncludesQuantiles) {
  CommandInterpreter cli;
  obs::MetricsRegistry::Global()
      .GetHistogram("clitest.latency_seconds", {0.01, 0.1})
      .Observe(0.05);
  const std::string json = RunCommand(cli, "stats json");
  EXPECT_NE(json.find("\"clitest.latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(CliTest, ServeStartStatusStopFlow) {
  CommandInterpreter cli;
  EXPECT_NE(RunCommand(cli, "serve status").find("not running"),
            std::string::npos);
  const std::string started = RunCommand(cli, "serve");
  EXPECT_NE(started.find("exporter listening on 127.0.0.1:"),
            std::string::npos)
      << started;
  ASSERT_NE(cli.exporter(), nullptr);
  EXPECT_GT(cli.exporter()->port(), 0);
  // Serving implies the metrics + journal switches.
  EXPECT_TRUE(obs::MetricsEnabled());
  EXPECT_TRUE(obs::JournalEnabled());
  EXPECT_NE(RunCommand(cli, "serve status").find("listening"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "serve").find("error"), std::string::npos);
  EXPECT_NE(RunCommand(cli, "serve stop").find("exporter stopped"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "serve status").find("not running"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "serve bogus").find("error"), std::string::npos);

  obs::SetMetricsEnabled(false);
  obs::SetJournalEnabled(false);
  obs::MetricsRegistry::Global().Reset();
  obs::EventJournal::Global().Reset();
}

TEST(CliTest, EventsCommandFlow) {
  CommandInterpreter cli;
  obs::EventJournal::Global().Reset();
  EXPECT_NE(RunCommand(cli, "events").find("event journal is off"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "events on").find("event journal on"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "events status").find("event journal: on"),
            std::string::npos);

  RunCommand(cli, "gen taxi t 500");
  RunCommand(cli, "gen regions h boroughs");
  RunCommand(cli, "method scan");
  RunCommand(cli, "sql SELECT COUNT(*) FROM t, h");

  const std::string drained = RunCommand(cli, "events");
  EXPECT_NE(drained.find("query.start"), std::string::npos) << drained;
  EXPECT_NE(drained.find("query.finish"), std::string::npos) << drained;
  EXPECT_NE(drained.find("method=scan"), std::string::npos) << drained;
  EXPECT_NE(drained.find("events ("), std::string::npos) << drained;

  EXPECT_NE(RunCommand(cli, "events off").find("event journal off"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "events reset").find("event journal reset"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "events bogus").find("error"), std::string::npos);
}

TEST(CliTest, SlowlogArmCaptureJsonFlow) {
  CommandInterpreter cli;
  obs::SlowQueryLog::Global().Clear();
  // Threshold 0 ms: every query is a "slow" query.
  EXPECT_NE(RunCommand(cli, "slowlog arm 0").find("recorder armed"),
            std::string::npos);
  RunCommand(cli, "gen taxi t 500");
  RunCommand(cli, "gen regions h boroughs");
  RunCommand(cli, "method scan");
  RunCommand(cli, "sql SELECT COUNT(*) FROM t, h");

  const std::string show = RunCommand(cli, "slowlog");
  EXPECT_NE(show.find("slow-query recorder: armed"), std::string::npos)
      << show;
  const std::string json = RunCommand(cli, "slowlog json");
  EXPECT_NE(json.find("urbane.slowlog.v1"), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"scan\""), std::string::npos) << json;

  EXPECT_NE(RunCommand(cli, "slowlog disarm").find("disarmed"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "slowlog clear").find("cleared"),
            std::string::npos);
  EXPECT_NE(RunCommand(cli, "slowlog bogus").find("error"), std::string::npos);

  obs::SlowQueryLogOptions defaults;
  obs::SlowQueryLog::Global().SetOptions(defaults);
}

}  // namespace
}  // namespace urbane::app
