#include "urbane/heatmap_view.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "testing/test_worlds.h"

namespace urbane::app {
namespace {

TEST(RenderHeatmapTest, ProducesImage) {
  const auto points = testing::MakeUniformPoints(2000, 1);
  HeatmapOptions options;
  options.image_width = 120;
  const auto image = RenderHeatmap(points, core::FilterSpec(), options);
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->width(), 120);
}

TEST(RenderHeatmapTest, FilterChangesOutput) {
  const auto points = testing::MakeUniformPoints(5000, 2);
  HeatmapOptions options;
  options.image_width = 64;
  const auto all = RenderHeatmap(points, core::FilterSpec(), options);
  core::FilterSpec narrow;
  narrow.WithTime(0, 1000);  // tiny slice of the day
  const auto filtered = RenderHeatmap(points, narrow, options);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_NE(all->data(), filtered->data());
}

TEST(RenderHeatmapTest, EmptyTableRejected) {
  data::PointTable empty(data::Schema({"v"}));
  EXPECT_FALSE(RenderHeatmap(empty, core::FilterSpec()).ok());
}

TEST(RenderHeatmapTest, ExplicitWorldWindow) {
  const auto points = testing::MakeUniformPoints(1000, 3);
  HeatmapOptions options;
  options.image_width = 50;
  options.world = geometry::BoundingBox(0, 0, 50, 50);  // zoomed view
  const auto image = RenderHeatmap(points, core::FilterSpec(), options);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->width(), 50);
}

TEST(RenderHeatmapToFileTest, WritesFile) {
  const auto points = testing::MakeUniformPoints(500, 4);
  const std::string path = ::testing::TempDir() + "/heatmap.ppm";
  const auto image =
      RenderHeatmapToFile(points, core::FilterSpec(), path);
  ASSERT_TRUE(image.ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(RenderHeatmapTest, UnknownFilterAttributeRejected) {
  const auto points = testing::MakeUniformPoints(100, 5);
  core::FilterSpec bad;
  bad.WithRange("missing", 0, 1);
  EXPECT_FALSE(RenderHeatmap(points, bad).ok());
}

}  // namespace
}  // namespace urbane::app
