#include "core/sql.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(ParseQuerySqlTest, MinimalCount) {
  const auto parsed = ParseQuerySql("SELECT COUNT(*) FROM taxi, hoods");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->points_dataset, "taxi");
  EXPECT_EQ(parsed->regions_layer, "hoods");
  EXPECT_EQ(parsed->aggregate.kind, AggregateKind::kCount);
  EXPECT_TRUE(parsed->filter.IsTrivial());
}

TEST(ParseQuerySqlTest, AggregatesWithAttributes) {
  for (const auto& [sql, kind] :
       std::vector<std::pair<std::string, AggregateKind>>{
           {"SELECT SUM(fare) FROM a, b", AggregateKind::kSum},
           {"SELECT AVG(fare) FROM a, b", AggregateKind::kAvg},
           {"SELECT MIN(fare) FROM a, b", AggregateKind::kMin},
           {"SELECT MAX(fare) FROM a, b", AggregateKind::kMax}}) {
    const auto parsed = ParseQuerySql(sql);
    ASSERT_TRUE(parsed.ok()) << sql;
    EXPECT_EQ(parsed->aggregate.kind, kind);
    EXPECT_EQ(parsed->aggregate.attribute, "fare");
  }
}

TEST(ParseQuerySqlTest, CaseInsensitiveKeywords) {
  const auto parsed =
      ParseQuerySql("select count(*) from taxi, hoods where t in [0, 10)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->filter.time_range.has_value());
  EXPECT_EQ(parsed->filter.time_range->begin, 0);
  EXPECT_EQ(parsed->filter.time_range->end, 10);
}

TEST(ParseQuerySqlTest, TimeRangeHalfOpenAndClosed) {
  const auto half = ParseQuerySql(
      "SELECT COUNT(*) FROM a, b WHERE t IN [100, 200)");
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half->filter.time_range->end, 200);
  const auto closed = ParseQuerySql(
      "SELECT COUNT(*) FROM a, b WHERE t IN [100, 200]");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->filter.time_range->end, 201);
}

TEST(ParseQuerySqlTest, AttributeRangesAndBetween) {
  const auto parsed = ParseQuerySql(
      "SELECT COUNT(*) FROM a, b WHERE fare IN [5, 20] AND "
      "tip BETWEEN 1 AND 3");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->filter.attribute_ranges.size(), 2u);
  EXPECT_EQ(parsed->filter.attribute_ranges[0].attribute, "fare");
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[0].lo, 5.0);
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[1].hi, 3.0);
}

TEST(ParseQuerySqlTest, ComparisonOperators) {
  const auto parsed = ParseQuerySql(
      "SELECT COUNT(*) FROM a, b WHERE fare >= 10 AND fare < 50");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->filter.attribute_ranges.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[0].lo, 10.0);
  EXPECT_TRUE(std::isinf(parsed->filter.attribute_ranges[0].hi));
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[1].hi, 50.0);
}

TEST(ParseQuerySqlTest, ExplicitSpatialPredicateAndGroupBy) {
  const auto parsed = ParseQuerySql(
      "SELECT COUNT(*) FROM P, R WHERE P.loc INSIDE R.geometry "
      "GROUP BY R.id");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->points_dataset, "P");
}

TEST(ParseQuerySqlTest, QualifiersStripped) {
  const auto parsed = ParseQuerySql(
      "SELECT AVG(P.fare) FROM taxi, hoods WHERE P.tip IN [0, 1]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->aggregate.attribute, "fare");
  EXPECT_EQ(parsed->filter.attribute_ranges[0].attribute, "tip");
}

TEST(ParseQuerySqlTest, NegativeAndScientificNumbers) {
  const auto parsed = ParseQuerySql(
      "SELECT COUNT(*) FROM a, b WHERE v IN [-1.5, 2e3]");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[0].lo, -1.5);
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[0].hi, 2000.0);
}

TEST(ParseQuerySqlTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseQuerySql("").ok());
  EXPECT_FALSE(ParseQuerySql("SELECT").ok());
  EXPECT_FALSE(ParseQuerySql("SELECT BOGUS(*) FROM a, b").ok());
  EXPECT_FALSE(ParseQuerySql("SELECT COUNT(*) FROM a").ok());         // one table
  EXPECT_FALSE(ParseQuerySql("SELECT COUNT(*) FROM a, b WHERE").ok());
  EXPECT_FALSE(ParseQuerySql("SELECT COUNT(*) FROM a, b WHERE x").ok());
  EXPECT_FALSE(
      ParseQuerySql("SELECT COUNT(*) FROM a, b WHERE t IN [1, 2").ok());
  EXPECT_FALSE(
      ParseQuerySql("SELECT COUNT(*) FROM a, b GROUP BY other").ok());
  EXPECT_FALSE(
      ParseQuerySql("SELECT COUNT(*) FROM a, b extra tokens").ok());
  // Attribute ranges must be closed.
  EXPECT_FALSE(
      ParseQuerySql("SELECT COUNT(*) FROM a, b WHERE v IN [1, 2)").ok());
  // Time inequalities are not supported.
  EXPECT_FALSE(
      ParseQuerySql("SELECT COUNT(*) FROM a, b WHERE t >= 5").ok());
}

TEST(ParseQuerySqlTest, RoundTripsToStringOutput) {
  const auto points = testing::MakeUniformPoints(10, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Avg("v");
  query.filter.WithTime(100, 2000).WithRange("v", -1.0, 1.0);
  const auto parsed = ParseQuerySql(query.ToString());
  ASSERT_TRUE(parsed.ok()) << query.ToString() << " -> " << parsed.status();
  EXPECT_EQ(parsed->aggregate.kind, AggregateKind::kAvg);
  EXPECT_EQ(parsed->aggregate.attribute, "v");
  ASSERT_TRUE(parsed->filter.time_range.has_value());
  EXPECT_EQ(parsed->filter.time_range->begin, 100);
  EXPECT_EQ(parsed->filter.time_range->end, 2000);
  ASSERT_EQ(parsed->filter.attribute_ranges.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->filter.attribute_ranges[0].lo, -1.0);
}

TEST(ParseQuerySqlTest, ViewportBoxPredicate) {
  const auto parsed = ParseQuerySql(
      "SELECT COUNT(*) FROM taxi, hoods WHERE P.loc INSIDE BOX "
      "[10, 20, 30, 40]");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(parsed->filter.spatial_window.has_value());
  EXPECT_DOUBLE_EQ(parsed->filter.spatial_window->min_x, 10.0);
  EXPECT_DOUBLE_EQ(parsed->filter.spatial_window->max_y, 40.0);
}

TEST(ParseQuerySqlTest, WindowedToStringRoundTrips) {
  const auto points = testing::MakeUniformPoints(10, 2);
  const auto regions = testing::MakeRandomRegions(2, 2);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithWindow(geometry::BoundingBox(1, 2, 3, 4));
  const auto parsed = ParseQuerySql(query.ToString());
  ASSERT_TRUE(parsed.ok()) << query.ToString() << " -> " << parsed.status();
  ASSERT_TRUE(parsed->filter.spatial_window.has_value());
  EXPECT_DOUBLE_EQ(parsed->filter.spatial_window->min_y, 2.0);
}

TEST(ParseQuerySqlTest, CountOfAttributeAccepted) {
  const auto parsed = ParseQuerySql("SELECT COUNT(fare) FROM a, b");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->aggregate.kind, AggregateKind::kCount);
}

}  // namespace
}  // namespace urbane::core
