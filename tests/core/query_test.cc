#include "core/query.h"

#include <gtest/gtest.h>

#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(QueryValidateTest, RequiresPointsAndRegions) {
  AggregationQuery query;
  EXPECT_FALSE(query.Validate().ok());
  const auto points = testing::MakeUniformPoints(10, 1);
  query.points = &points;
  EXPECT_FALSE(query.Validate().ok());
  const auto regions = testing::MakeRandomRegions(2, 1);
  query.regions = &regions;
  EXPECT_TRUE(query.Validate().ok());
}

TEST(QueryValidateTest, AggregateAttributeChecked) {
  const auto points = testing::MakeUniformPoints(10, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Avg("v");
  EXPECT_TRUE(query.Validate().ok());
  query.aggregate = AggregateSpec::Avg("bogus");
  EXPECT_FALSE(query.Validate().ok());
  query.aggregate = AggregateSpec{AggregateKind::kSum, ""};
  EXPECT_FALSE(query.Validate().ok());
}

TEST(QueryValidateTest, FilterChecked) {
  const auto points = testing::MakeUniformPoints(10, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithRange("bogus", 0, 1);
  EXPECT_FALSE(query.Validate().ok());
  query.filter = FilterSpec();
  query.filter.WithRange("v", 5, 1);  // empty range
  EXPECT_FALSE(query.Validate().ok());
  query.filter = FilterSpec();
  query.filter.WithTime(100, 50);  // reversed
  EXPECT_FALSE(query.Validate().ok());
}

TEST(QueryToStringTest, RendersSqlLikeForm) {
  const auto points = testing::MakeUniformPoints(10, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Avg("v");
  query.filter.WithTime(0, 100).WithRange("v", -1, 1);
  const std::string sql = query.ToString();
  EXPECT_NE(sql.find("SELECT AVG(v)"), std::string::npos);
  EXPECT_NE(sql.find("P.loc INSIDE R.geometry"), std::string::npos);
  EXPECT_NE(sql.find("P.t IN [0, 100)"), std::string::npos);
  EXPECT_NE(sql.find("P.v IN [-1, 1]"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY R.id"), std::string::npos);
}

TEST(QueryToStringTest, CountRendersStar) {
  const std::string sql = AggregationQuery{}.ToString();
  EXPECT_NE(sql.find("COUNT(*)"), std::string::npos);
}

}  // namespace
}  // namespace urbane::core
