#include "core/quadtree_join.h"

#include <gtest/gtest.h>

#include "core/scan_join.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(QuadtreeJoinTest, MatchesScanOnRandomWorld) {
  const auto points = testing::MakeUniformPoints(6000, 31);
  const auto regions = testing::MakeRandomRegions(6, 32);
  auto quad = QuadtreeJoin::Create(points, regions);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(quad.ok());
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto a = (*quad)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->counts, b->counts);
}

TEST(QuadtreeJoinTest, FilteredAggregatesMatchScan) {
  const auto points = testing::MakeUniformPoints(5000, 33);
  const auto regions = testing::MakeTessellationRegions(3, 34);
  auto quad = QuadtreeJoin::Create(points, regions);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(quad.ok());
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Avg("v");
  query.filter.WithTime(10000, 60000).WithRange("v", -6.0, 9.0);
  const auto a = (*quad)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(a->counts[r], b->counts[r]) << r;
    if (b->counts[r] > 0) {
      EXPECT_NEAR(a->values[r], b->values[r], 1e-9) << r;
    }
  }
}

TEST(QuadtreeJoinTest, BulkSubtreesDominateForLargeRegions) {
  const auto points = testing::MakeUniformPoints(20000, 35);
  data::RegionSet regions;
  data::Region region;
  region.id = 0;
  region.name = "big";
  region.geometry = geometry::MultiPolygon(geometry::Polygon(
      geometry::Ring{{2, 2}, {98, 2}, {98, 98}, {2, 98}}));
  ASSERT_TRUE(regions.Add(std::move(region)).ok());
  auto quad = QuadtreeJoin::Create(points, regions);
  ASSERT_TRUE(quad.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  ASSERT_TRUE((*quad)->Execute(query).ok());
  EXPECT_GT((*quad)->stats().points_bulk, (*quad)->stats().pip_tests);
}

TEST(QuadtreeJoinTest, LeafCapacityOptionRespected) {
  const auto points = testing::MakeUniformPoints(4096, 36);
  const auto regions = testing::MakeRandomRegions(2, 36);
  QuadtreeJoinOptions fine;
  fine.max_points_per_leaf = 16;
  QuadtreeJoinOptions coarse;
  coarse.max_points_per_leaf = 1024;
  auto a = QuadtreeJoin::Create(points, regions, fine);
  auto b = QuadtreeJoin::Create(points, regions, coarse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT((*a)->tree().node_count(), (*b)->tree().node_count());
  EXPECT_EQ((*a)->name(), "quadtree");
  EXPECT_TRUE((*a)->exact());
}

TEST(QuadtreeJoinTest, WrongTableRejected) {
  const auto points = testing::MakeUniformPoints(100, 37);
  const auto other = testing::MakeUniformPoints(100, 38);
  const auto regions = testing::MakeRandomRegions(2, 37);
  auto quad = QuadtreeJoin::Create(points, regions);
  ASSERT_TRUE(quad.ok());
  AggregationQuery query;
  query.points = &other;
  query.regions = &regions;
  EXPECT_FALSE((*quad)->Execute(query).ok());
}

}  // namespace
}  // namespace urbane::core
