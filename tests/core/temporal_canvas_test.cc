#include "core/temporal_canvas.h"

#include <gtest/gtest.h>

#include "core/raster_join.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(TemporalCanvasTest, RejectsBadOptions) {
  const auto points = testing::MakeUniformPoints(100, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  TemporalCanvasOptions bad;
  bad.resolution = 0;
  EXPECT_FALSE(TemporalCanvasIndex::Build(points, regions, bad).ok());
  bad.resolution = 64;
  bad.time_bins = 0;
  EXPECT_FALSE(TemporalCanvasIndex::Build(points, regions, bad).ok());
}

TEST(TemporalCanvasTest, FullWindowMatchesBoundedRasterJoin) {
  const auto points = testing::MakeUniformPoints(10000, 2);
  const auto regions = testing::MakeRandomRegions(4, 3);
  TemporalCanvasOptions options;
  options.resolution = 128;
  options.time_bins = 16;
  auto index = TemporalCanvasIndex::Build(points, regions, options);
  ASSERT_TRUE(index.ok());

  RasterJoinOptions raster_options;
  raster_options.resolution = 128;
  auto raster = BoundedRasterJoin::Create(points, regions, raster_options);
  ASSERT_TRUE(raster.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto expected = (*raster)->Execute(query);
  ASSERT_TRUE(expected.ok());

  const auto [t0, t1] = points.TimeRange();
  const auto result = (*index)->QueryTimeWindow(t0, t1 + 1);
  ASSERT_TRUE(result.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(result->counts[r], expected->counts[r]) << "region " << r;
  }
}

TEST(TemporalCanvasTest, BinAlignedWindowMatchesFilteredRasterJoin) {
  const auto points = testing::MakeUniformPoints(8000, 4);
  const auto regions = testing::MakeRandomRegions(3, 5);
  TemporalCanvasOptions options;
  options.resolution = 96;
  options.time_bins = 8;
  auto index = TemporalCanvasIndex::Build(points, regions, options);
  ASSERT_TRUE(index.ok());

  // A window exactly on bin boundaries [bin 2, bin 6).
  const std::int64_t t0 = (*index)->BinStart(2);
  const std::int64_t t1 = (*index)->BinStart(6);
  std::int64_t snapped0 = -1;
  std::int64_t snapped1 = -1;
  const auto result = (*index)->QueryTimeWindow(t0, t1, &snapped0, &snapped1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(snapped0, t0);
  EXPECT_EQ(snapped1, t1);

  RasterJoinOptions raster_options;
  raster_options.resolution = 96;
  auto raster = BoundedRasterJoin::Create(points, regions, raster_options);
  ASSERT_TRUE(raster.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithTime(t0, t1);
  const auto expected = (*raster)->Execute(query);
  ASSERT_TRUE(expected.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(result->counts[r], expected->counts[r]) << "region " << r;
  }
}

TEST(TemporalCanvasTest, SnappingIsOutward) {
  const auto points = testing::MakeUniformPoints(1000, 6);
  const auto regions = testing::MakeRandomRegions(2, 7);
  TemporalCanvasOptions options;
  options.resolution = 64;
  options.time_bins = 10;
  auto index = TemporalCanvasIndex::Build(points, regions, options);
  ASSERT_TRUE(index.ok());
  const std::int64_t mid_bin3 =
      ((*index)->BinStart(3) + (*index)->BinStart(4)) / 2;
  const std::int64_t mid_bin6 =
      ((*index)->BinStart(6) + (*index)->BinStart(7)) / 2;
  std::int64_t snapped0 = 0;
  std::int64_t snapped1 = 0;
  ASSERT_TRUE((*index)
                  ->QueryTimeWindow(mid_bin3, mid_bin6, &snapped0, &snapped1)
                  .ok());
  EXPECT_LE(snapped0, mid_bin3);
  EXPECT_GE(snapped1, mid_bin6);
  EXPECT_EQ(snapped0, (*index)->BinStart(3));
  EXPECT_EQ(snapped1, (*index)->BinStart(7));
}

TEST(TemporalCanvasTest, SnappedWindowNeverLosesPoints) {
  const auto points = testing::MakeUniformPoints(5000, 8);
  const auto regions = testing::MakeTessellationRegions(3, 9);
  TemporalCanvasOptions options;
  options.resolution = 128;
  options.time_bins = 12;
  auto index = TemporalCanvasIndex::Build(points, regions, options);
  ASSERT_TRUE(index.ok());
  // Arbitrary window; the snapped result must count at least the points in
  // the requested window (snap is outward) for the whole partition.
  const auto result = (*index)->QueryTimeWindow(20000, 60000);
  ASSERT_TRUE(result.ok());
  std::uint64_t total = 0;
  for (const auto c : result->counts) total += c;
  std::size_t in_window = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points.t(i) >= 20000 && points.t(i) < 60000) ++in_window;
  }
  EXPECT_GE(total, in_window);
}

TEST(TemporalCanvasTest, EmptyWindowRejected) {
  const auto points = testing::MakeUniformPoints(100, 10);
  const auto regions = testing::MakeRandomRegions(2, 11);
  auto index = TemporalCanvasIndex::Build(points, regions);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE((*index)->QueryTimeWindow(50, 50).ok());
  EXPECT_FALSE((*index)->QueryTimeWindow(60, 50).ok());
}

TEST(TemporalCanvasTest, MemoryScalesWithBins) {
  const auto points = testing::MakeUniformPoints(1000, 12);
  const auto regions = testing::MakeRandomRegions(2, 13);
  TemporalCanvasOptions small;
  small.resolution = 64;
  small.time_bins = 4;
  TemporalCanvasOptions large = small;
  large.time_bins = 32;
  auto a = TemporalCanvasIndex::Build(points, regions, small);
  auto b = TemporalCanvasIndex::Build(points, regions, large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT((*b)->MemoryBytes(), (*a)->MemoryBytes());
  EXPECT_GT((*a)->build_seconds(), 0.0);
}

TEST(TemporalCanvasTest, BinHelpersConsistent) {
  const auto points = testing::MakeUniformPoints(1000, 14);
  const auto regions = testing::MakeRandomRegions(2, 15);
  TemporalCanvasOptions options;
  options.time_bins = 16;
  auto index = TemporalCanvasIndex::Build(points, regions, options);
  ASSERT_TRUE(index.ok());
  for (int b = 0; b < 16; ++b) {
    EXPECT_EQ((*index)->BinForTime((*index)->BinStart(b)), b);
  }
  EXPECT_EQ((*index)->BinForTime((*index)->min_time()), 0);
  EXPECT_EQ((*index)->BinForTime((*index)->max_time()), 15);
}

}  // namespace
}  // namespace urbane::core
