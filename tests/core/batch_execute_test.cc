#include <gtest/gtest.h>

#include "core/raster_join.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(ExecuteBatchTest, EmptyBatchIsEmpty) {
  const auto points = testing::MakeUniformPoints(100, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  auto raster = BoundedRasterJoin::Create(points, regions);
  ASSERT_TRUE(raster.ok());
  const auto results = (*raster)->ExecuteBatch({});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(ExecuteBatchTest, MatchesIndividualExecutes) {
  const auto points = testing::MakeUniformPoints(8000, 2);
  const auto regions = testing::MakeRandomRegions(5, 3);
  RasterJoinOptions options;
  options.resolution = 160;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(raster.ok());

  AggregationQuery base;
  base.points = &points;
  base.regions = &regions;
  base.filter.WithTime(10000, 70000);

  std::vector<AggregationQuery> batch;
  for (const AggregateSpec& spec :
       {AggregateSpec::Count(), AggregateSpec::Sum("v"),
        AggregateSpec::Avg("v"), AggregateSpec::Min("v"),
        AggregateSpec::Max("v")}) {
    AggregationQuery query = base;
    query.aggregate = spec;
    batch.push_back(query);
  }
  const auto batched = (*raster)->ExecuteBatch(batch);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->size(), batch.size());
  for (std::size_t q = 0; q < batch.size(); ++q) {
    const auto individual = (*raster)->Execute(batch[q]);
    ASSERT_TRUE(individual.ok());
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_EQ((*batched)[q].counts[r], individual->counts[r])
          << "query " << q << " region " << r;
      if (individual->counts[r] > 0) {
        EXPECT_NEAR((*batched)[q].values[r], individual->values[r], 1e-9)
            << "query " << q << " region " << r;
      }
      ASSERT_EQ((*batched)[q].error_bounds.size(),
                individual->error_bounds.size());
      EXPECT_NEAR((*batched)[q].error_bounds[r],
                  individual->error_bounds[r], 1e-9)
          << "query " << q << " region " << r;
    }
  }
}

TEST(ExecuteBatchTest, SharedSplatIsCheaperThanSeparateRuns) {
  const auto points = testing::MakeUniformPoints(40000, 4);
  const auto regions = testing::MakeRandomRegions(4, 5);
  RasterJoinOptions options;
  options.resolution = 256;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(raster.ok());
  AggregationQuery base;
  base.points = &points;
  base.regions = &regions;
  std::vector<AggregationQuery> batch;
  for (const AggregateSpec& spec :
       {AggregateSpec::Count(), AggregateSpec::Sum("v"),
        AggregateSpec::Avg("v")}) {
    AggregationQuery query = base;
    query.aggregate = spec;
    batch.push_back(query);
  }
  ASSERT_TRUE((*raster)->ExecuteBatch(batch).ok());
  // SUM and AVG share one sum splat; COUNT shares the count splat: the
  // filter pass runs once, so points_scanned counts the table once.
  EXPECT_EQ((*raster)->stats().points_scanned, points.size());
}

TEST(ExecuteBatchTest, MismatchedFiltersRejected) {
  const auto points = testing::MakeUniformPoints(500, 6);
  const auto regions = testing::MakeRandomRegions(2, 7);
  auto raster = BoundedRasterJoin::Create(points, regions);
  ASSERT_TRUE(raster.ok());
  AggregationQuery a;
  a.points = &points;
  a.regions = &regions;
  AggregationQuery b = a;
  b.filter.WithTime(0, 100);
  EXPECT_FALSE((*raster)->ExecuteBatch({a, b}).ok());
  AggregationQuery c = a;
  c.filter.WithRange("v", 0, 1);
  EXPECT_FALSE((*raster)->ExecuteBatch({a, c}).ok());
}

TEST(ExecuteBatchTest, InvalidQueryInBatchRejected) {
  const auto points = testing::MakeUniformPoints(500, 8);
  const auto regions = testing::MakeRandomRegions(2, 9);
  auto raster = BoundedRasterJoin::Create(points, regions);
  ASSERT_TRUE(raster.ok());
  AggregationQuery good;
  good.points = &points;
  good.regions = &regions;
  AggregationQuery bad = good;
  bad.aggregate = AggregateSpec::Avg("missing");
  EXPECT_FALSE((*raster)->ExecuteBatch({good, bad}).ok());
}

}  // namespace
}  // namespace urbane::core
