#include "core/planner.h"

#include <gtest/gtest.h>

namespace urbane::core {
namespace {

WorkloadProfile BaseProfile() {
  WorkloadProfile profile;
  profile.num_points = 1'000'000;
  profile.num_regions = 200;
  profile.total_region_vertices = 20'000;
  profile.world = geometry::BoundingBox(0, 0, 50000, 40000);
  profile.selectivity = 1.0;
  return profile;
}

TEST(PlannerTest, LargePointSetPrefersRaster) {
  const QueryPlan plan = PlanQuery(BaseProfile(), {.exact = true});
  EXPECT_EQ(plan.method, ExecutionMethod::kAccurateRaster);
  EXPECT_GT(plan.resolution, 0);
}

TEST(PlannerTest, ApproximateQueryPicksBoundedRaster) {
  const QueryPlan plan =
      PlanQuery(BaseProfile(), {.exact = false, .epsilon_world = 100.0});
  EXPECT_EQ(plan.method, ExecutionMethod::kBoundedRaster);
}

TEST(PlannerTest, EpsilonControlsResolution) {
  const QueryPlan coarse =
      PlanQuery(BaseProfile(), {.exact = false, .epsilon_world = 500.0});
  const QueryPlan fine =
      PlanQuery(BaseProfile(), {.exact = false, .epsilon_world = 10.0});
  EXPECT_GT(fine.resolution, coarse.resolution);
}

TEST(PlannerTest, TinyWorkloadPrefersScan) {
  WorkloadProfile profile = BaseProfile();
  profile.num_points = 200;
  profile.num_regions = 3;
  profile.total_region_vertices = 20;
  const QueryPlan plan = PlanQuery(profile, {.exact = true});
  EXPECT_EQ(plan.method, ExecutionMethod::kScan);
}

TEST(PlannerTest, ExistingIndexMakesIndexJoinEligible) {
  WorkloadProfile profile = BaseProfile();
  profile.num_points = 50'000;
  profile.num_regions = 4;
  profile.total_region_vertices = 40;  // simple rectangles
  const QueryPlan without = PlanQuery(profile, {.exact = true});
  profile.has_point_index = true;
  const QueryPlan with = PlanQuery(profile, {.exact = true});
  // With an index available the planner may pick it; without, it cannot.
  EXPECT_NE(without.method, ExecutionMethod::kIndexJoin);
  EXPECT_GT(with.cost_index, 0.0);
}

TEST(PlannerTest, ApproximateBranchPicksIndexJoinWhenCheapest) {
  // Few simple regions over many points: boundary cells are scarce, so the
  // grid join beats the scan, and a tight ε forces a canvas so fine that
  // the bounded raster sweep is the most expensive option. The inexact
  // branch must admit the (exact, hence trivially ε-bounded) index join.
  WorkloadProfile profile = BaseProfile();
  profile.num_points = 50'000;
  profile.num_regions = 4;
  profile.total_region_vertices = 40;
  profile.has_point_index = true;
  const QueryPlan plan =
      PlanQuery(profile, {.exact = false, .epsilon_world = 10.0});
  EXPECT_EQ(plan.method, ExecutionMethod::kIndexJoin);
  EXPECT_LT(plan.cost_index, plan.cost_scan);
  EXPECT_LT(plan.cost_index, plan.cost_raster);

  // Without a point index the same workload must not plan an index join.
  profile.has_point_index = false;
  const QueryPlan no_index =
      PlanQuery(profile, {.exact = false, .epsilon_world = 10.0});
  EXPECT_NE(no_index.method, ExecutionMethod::kIndexJoin);
}

TEST(PlannerTest, ApproximateBranchStillPrefersRasterAtScale) {
  // The headline regime is untouched: huge point sets with a tolerant ε
  // keep planning the bounded raster join even when an index exists.
  WorkloadProfile profile = BaseProfile();
  profile.has_point_index = true;
  const QueryPlan plan =
      PlanQuery(profile, {.exact = false, .epsilon_world = 100.0});
  EXPECT_EQ(plan.method, ExecutionMethod::kBoundedRaster);
}

TEST(PlannerTest, ExplanationMentionsChoice) {
  const QueryPlan plan = PlanQuery(BaseProfile(), {.exact = true});
  EXPECT_NE(plan.explanation.find(ExecutionMethodToString(plan.method)),
            std::string::npos);
}

TEST(PlannerTest, SelectivityReducesRasterCost) {
  WorkloadProfile all = BaseProfile();
  WorkloadProfile filtered = BaseProfile();
  filtered.selectivity = 0.01;
  const QueryPlan plan_all = PlanQuery(all, {.exact = true});
  const QueryPlan plan_filtered = PlanQuery(filtered, {.exact = true});
  EXPECT_LT(plan_filtered.cost_raster, plan_all.cost_raster);
  EXPECT_LT(plan_filtered.cost_scan, plan_all.cost_scan);
}

TEST(PlannerTest, ShardFanOutPassesThroughWithoutChangingTheChoice) {
  // Sharding partitions whatever method wins; it must never change WHICH
  // method wins (every shard pays the same per-row cost model). The plan
  // just carries the fan-out so EXPLAIN and the facade agree.
  WorkloadProfile unsharded = BaseProfile();
  WorkloadProfile sharded = BaseProfile();
  sharded.available_shards = 8;
  for (const bool exact : {true, false}) {
    const QueryPlan plain = PlanQuery(unsharded, {.exact = exact});
    const QueryPlan fanned = PlanQuery(sharded, {.exact = exact});
    EXPECT_EQ(plain.method, fanned.method);
    EXPECT_EQ(plain.shards, 1u);
    EXPECT_EQ(fanned.shards, 8u);
    EXPECT_NE(fanned.explanation.find("shards=8"), std::string::npos)
        << fanned.explanation;
  }
}

TEST(PlannerTest, ZeroAvailableShardsNormalizesToOne) {
  WorkloadProfile profile = BaseProfile();
  profile.available_shards = 0;
  EXPECT_EQ(PlanQuery(profile, {.exact = true}).shards, 1u);
}

TEST(ExecutionMethodToStringTest, Names) {
  EXPECT_STREQ(ExecutionMethodToString(ExecutionMethod::kScan), "scan");
  EXPECT_STREQ(ExecutionMethodToString(ExecutionMethod::kIndexJoin), "index");
  EXPECT_STREQ(ExecutionMethodToString(ExecutionMethod::kBoundedRaster),
               "raster");
  EXPECT_STREQ(ExecutionMethodToString(ExecutionMethod::kAccurateRaster),
               "accurate");
}

}  // namespace
}  // namespace urbane::core
