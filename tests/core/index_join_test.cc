#include "core/index_join.h"

#include <gtest/gtest.h>

#include "core/scan_join.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(IndexJoinTest, MatchesScanOnRandomWorld) {
  const auto points = testing::MakeUniformPoints(5000, 21);
  const auto regions = testing::MakeRandomRegions(8, 22);
  auto index = IndexJoin::Create(points, regions);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto a = (*index)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t r = 0; r < a->size(); ++r) {
    EXPECT_EQ(a->counts[r], b->counts[r]) << "region " << r;
    EXPECT_DOUBLE_EQ(a->values[r], b->values[r]) << "region " << r;
  }
}

TEST(IndexJoinTest, FilteredQueryMatchesScan) {
  const auto points = testing::MakeUniformPoints(5000, 23);
  const auto regions = testing::MakeRandomRegions(6, 24);
  auto index = IndexJoin::Create(points, regions);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Sum("v");
  query.filter.WithTime(20000, 60000).WithRange("v", -5.0, 5.0);
  const auto a = (*index)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t r = 0; r < a->size(); ++r) {
    EXPECT_EQ(a->counts[r], b->counts[r]);
    EXPECT_NEAR(a->values[r], b->values[r], 1e-6);
  }
}

TEST(IndexJoinTest, GridGranularityOptionRespected) {
  const auto points = testing::MakeUniformPoints(4096, 25);
  const auto regions = testing::MakeRandomRegions(2, 25);
  IndexJoinOptions coarse;
  coarse.target_points_per_cell = 1024.0;
  IndexJoinOptions fine;
  fine.target_points_per_cell = 16.0;
  auto coarse_join = IndexJoin::Create(points, regions, coarse);
  auto fine_join = IndexJoin::Create(points, regions, fine);
  ASSERT_TRUE(coarse_join.ok());
  ASSERT_TRUE(fine_join.ok());
  const std::size_t coarse_cells =
      static_cast<std::size_t>((*coarse_join)->grid().cells_x()) *
      (*coarse_join)->grid().cells_y();
  const std::size_t fine_cells =
      static_cast<std::size_t>((*fine_join)->grid().cells_x()) *
      (*fine_join)->grid().cells_y();
  EXPECT_GT(fine_cells, coarse_cells);
}

TEST(IndexJoinTest, BulkInteriorDominatesForLargeRegions) {
  const auto points = testing::MakeUniformPoints(20000, 26);
  // One huge region covering almost everything.
  data::RegionSet regions;
  data::Region region;
  region.id = 0;
  region.name = "big";
  region.geometry = geometry::MultiPolygon(geometry::Polygon(
      geometry::Ring{{1, 1}, {99, 1}, {99, 99}, {1, 99}}));
  ASSERT_TRUE(regions.Add(std::move(region)).ok());
  auto index = IndexJoin::Create(points, regions);
  ASSERT_TRUE(index.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  ASSERT_TRUE((*index)->Execute(query).ok());
  const ExecutorStats& stats = (*index)->stats();
  EXPECT_GT(stats.points_bulk, stats.pip_tests)
      << "interior cells should dominate boundary work for a huge region";
}

TEST(IndexJoinTest, BuildTimeRecorded) {
  const auto points = testing::MakeUniformPoints(1000, 27);
  const auto regions = testing::MakeRandomRegions(2, 27);
  auto index = IndexJoin::Create(points, regions);
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->stats().build_seconds, 0.0);
  EXPECT_GT((*index)->MemoryBytes(), 0u);
  EXPECT_EQ((*index)->name(), "index");
  EXPECT_TRUE((*index)->exact());
}

TEST(IndexJoinTest, WrongRegionsRejected) {
  const auto points = testing::MakeUniformPoints(100, 28);
  const auto regions = testing::MakeRandomRegions(2, 28);
  const auto other_regions = testing::MakeRandomRegions(2, 29);
  auto index = IndexJoin::Create(points, regions);
  ASSERT_TRUE(index.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &other_regions;
  EXPECT_FALSE((*index)->Execute(query).ok());
}

}  // namespace
}  // namespace urbane::core
