#include "core/spatial_aggregation.h"

#include <gtest/gtest.h>

#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(SpatialAggregationTest, ExecuteWithEachMethod) {
  const auto points = testing::MakeUniformPoints(5000, 71);
  const auto regions = testing::MakeRandomRegions(5, 72);
  RasterJoinOptions options;
  options.resolution = 128;
  SpatialAggregation engine(points, regions, options);

  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();
  const auto scan = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(scan.ok());
  for (const ExecutionMethod method :
       {ExecutionMethod::kIndexJoin, ExecutionMethod::kAccurateRaster}) {
    const auto result = engine.Execute(query, method);
    ASSERT_TRUE(result.ok());
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_EQ(result->counts[r], scan->counts[r])
          << ExecutionMethodToString(method) << " region " << r;
    }
  }
  const auto bounded = engine.Execute(query, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->size(), regions.size());
}

TEST(SpatialAggregationTest, ExecutorsAreCached) {
  const auto points = testing::MakeUniformPoints(1000, 73);
  const auto regions = testing::MakeRandomRegions(3, 74);
  SpatialAggregation engine(points, regions);
  const auto a = engine.Executor(ExecutionMethod::kScan);
  const auto b = engine.Executor(ExecutionMethod::kScan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SpatialAggregationTest, ExecuteAutoExactAgreesWithScan) {
  const auto points = testing::MakeUniformPoints(5000, 75);
  const auto regions = testing::MakeRandomRegions(4, 76);
  SpatialAggregation engine(points, regions);
  AggregationQuery query;
  const auto auto_result = engine.ExecuteAuto(query, {.exact = true});
  ASSERT_TRUE(auto_result.ok());
  EXPECT_FALSE(engine.last_plan().explanation.empty());
  const auto scan_result = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(scan_result.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(auto_result->counts[r], scan_result->counts[r]);
  }
}

TEST(SpatialAggregationTest, ExecuteAutoApproximateWithinEpsilonBound) {
  const auto points = testing::MakeUniformPoints(20000, 77);
  const auto regions = testing::MakeRandomRegions(4, 78);
  SpatialAggregation engine(points, regions);
  AggregationQuery query;
  const auto result =
      engine.ExecuteAuto(query, {.exact = false, .epsilon_world = 2.0});
  ASSERT_TRUE(result.ok());
  // The planner should have picked a raster method for 20k points.
  EXPECT_EQ(engine.last_plan().method, ExecutionMethod::kBoundedRaster);
  const auto scan_result = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(scan_result.ok());
  if (!result->error_bounds.empty()) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_LE(std::fabs(result->values[r] - scan_result->values[r]),
                result->error_bounds[r] + 1e-9);
    }
  }
}

TEST(SpatialAggregationTest, EstimateSelectivity) {
  const auto points = testing::MakeUniformPoints(2000, 79);
  const auto regions = testing::MakeRandomRegions(2, 80);
  SpatialAggregation engine(points, regions);
  EXPECT_DOUBLE_EQ(engine.EstimateSelectivity(FilterSpec()).value(), 1.0);
  FilterSpec half;
  half.WithRange("v", 0.0, 100.0);  // v ~ U[-10, 10] -> about half
  const auto selectivity = engine.EstimateSelectivity(half);
  ASSERT_TRUE(selectivity.ok());
  EXPECT_GT(*selectivity, 0.4);
  EXPECT_LT(*selectivity, 0.6);
}

TEST(SpatialAggregationTest, ExecuteManyMatchesIndividual) {
  const auto points = testing::MakeUniformPoints(4000, 90);
  const auto regions = testing::MakeRandomRegions(3, 91);
  RasterJoinOptions options;
  options.resolution = 128;
  SpatialAggregation engine(points, regions, options);

  std::vector<AggregationQuery> batch(3);
  batch[0].aggregate = AggregateSpec::Count();
  batch[1].aggregate = AggregateSpec::Sum("v");
  batch[2].aggregate = AggregateSpec::Avg("v");
  for (auto& q : batch) {
    q.filter.WithTime(5000, 80000);
  }
  for (const ExecutionMethod method :
       {ExecutionMethod::kBoundedRaster, ExecutionMethod::kScan}) {
    const auto many = engine.ExecuteMany(batch, method);
    ASSERT_TRUE(many.ok()) << many.status();
    ASSERT_EQ(many->size(), 3u);
    for (std::size_t q = 0; q < batch.size(); ++q) {
      const auto single = engine.Execute(batch[q], method);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ((*many)[q].counts, single->counts)
          << ExecutionMethodToString(method) << " query " << q;
    }
  }
}

TEST(SpatialAggregationTest, ExecuteManyHeterogeneousFiltersFallsBack) {
  const auto points = testing::MakeUniformPoints(1000, 92);
  const auto regions = testing::MakeRandomRegions(2, 93);
  SpatialAggregation engine(points, regions);
  std::vector<AggregationQuery> batch(2);
  batch[0].filter.WithTime(0, 40000);
  batch[1].filter.WithTime(40000, 90000);
  const auto many =
      engine.ExecuteMany(batch, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(many.ok()) << many.status();
  ASSERT_EQ(many->size(), 2u);
  const auto a = engine.Execute(batch[0], ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*many)[0].counts, a->counts);
}

TEST(SpatialAggregationTest, ResultCacheHitsOnRepeatQueries) {
  const auto points = testing::MakeUniformPoints(3000, 83);
  const auto regions = testing::MakeRandomRegions(3, 84);
  SpatialAggregation engine(points, regions);
  engine.set_result_cache_capacity(64);
  AggregationQuery query;
  query.filter.WithTime(1000, 50000);
  const auto first = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.result_cache_hits(), 0u);
  const auto second = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.result_cache_hits(), 1u);
  EXPECT_EQ(first->counts, second->counts);
  // A different filter or method misses.
  AggregationQuery other = query;
  other.filter.WithRange("v", 0, 1);
  ASSERT_TRUE(engine.Execute(other, ExecutionMethod::kScan).ok());
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kIndexJoin).ok());
  EXPECT_EQ(engine.result_cache_hits(), 1u);
}

TEST(SpatialAggregationTest, ResultCacheCapacityBounded) {
  const auto points = testing::MakeUniformPoints(500, 85);
  const auto regions = testing::MakeRandomRegions(2, 86);
  SpatialAggregation engine(points, regions);
  engine.set_result_cache_capacity(2);
  for (int i = 0; i < 6; ++i) {
    AggregationQuery query;
    query.filter.WithTime(i * 1000, (i + 1) * 1000);
    ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kScan).ok());
  }
  EXPECT_LE(engine.result_cache_size(), 2u);
  // Capacity 0 (the default) disables caching entirely.
  engine.set_result_cache_capacity(0);
  EXPECT_EQ(engine.result_cache_size(), 0u);
  AggregationQuery query;
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kScan).ok());
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kScan).ok());
  EXPECT_EQ(engine.result_cache_size(), 0u);
}

// Regression for the stale-ε bug: a bounded-raster result memoized at a
// coarse resolution must never be served after ExecuteAuto tightens the
// canvas (the old FIFO keyed on method+query only, so the coarse answer —
// and its loose error bounds — kept hitting).
TEST(SpatialAggregationTest, AutoResolutionBumpInvalidatesStaleEpsilonHits) {
  const auto points = testing::MakeUniformPoints(20000, 87);
  const auto regions = testing::MakeRandomRegions(4, 88);
  RasterJoinOptions options;
  options.resolution = 32;  // deliberately coarse starting canvas
  SpatialAggregation engine(points, regions, options);
  engine.set_result_cache_capacity(64);

  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();
  const auto coarse = engine.Execute(query, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(coarse.ok());
  // Same query again: a legitimate hit at the unchanged resolution.
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kBoundedRaster).ok());
  EXPECT_GE(engine.result_cache_hits(), 1u);

  const std::uint64_t epoch_before = engine.config_epoch();
  const auto fine =
      engine.ExecuteAuto(query, {.exact = false, .epsilon_world = 0.5});
  ASSERT_TRUE(fine.ok());
  ASSERT_EQ(engine.last_plan().method, ExecutionMethod::kBoundedRaster);
  ASSERT_GT(engine.last_plan().resolution, 32);
  EXPECT_GT(engine.config_epoch(), epoch_before);

  // Post-bump, the plain Execute must return the fine-ε answer, not the
  // memoized coarse one.
  const auto again = engine.Execute(query, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->values, fine->values);
  EXPECT_EQ(again->error_bounds, fine->error_bounds);
  ASSERT_EQ(coarse->error_bounds.size(), again->error_bounds.size());
  double coarse_bound = 0.0;
  double fine_bound = 0.0;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    coarse_bound += coarse->error_bounds[r];
    fine_bound += again->error_bounds[r];
  }
  // The tighter canvas must have genuinely tightened the bounds — this is
  // what the old cache silently withheld from callers.
  EXPECT_LT(fine_bound, coarse_bound);
}

TEST(SpatialAggregationTest, CacheStatsCountersAndByteBound) {
  const auto points = testing::MakeUniformPoints(2000, 89);
  const auto regions = testing::MakeRandomRegions(3, 90);
  SpatialAggregation engine(points, regions);
  engine.set_result_cache_capacity(32);
  AggregationQuery query;
  query.filter.WithTime(0, 40000);
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kScan).ok());
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kScan).ok());
  const QueryCacheStats stats = engine.result_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.HitRate(), 0.0);
  // A byte bound of zero retains nothing.
  engine.set_result_cache_max_bytes(0);
  EXPECT_EQ(engine.result_cache_size(), 0u);
}

TEST(SpatialAggregationTest, ExecuteManyBatchPathPopulatesAndProbesCache) {
  const auto points = testing::MakeUniformPoints(4000, 94);
  const auto regions = testing::MakeRandomRegions(3, 95);
  RasterJoinOptions options;
  options.resolution = 128;
  SpatialAggregation engine(points, regions, options);
  engine.set_result_cache_capacity(64);

  std::vector<AggregationQuery> batch(3);
  batch[0].aggregate = AggregateSpec::Count();
  batch[1].aggregate = AggregateSpec::Sum("v");
  batch[2].aggregate = AggregateSpec::Avg("v");
  for (auto& q : batch) {
    q.filter.WithTime(5000, 80000);
  }
  const auto first = engine.ExecuteMany(batch, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.result_cache_size(), 3u);  // batch populated per query

  // A single query from the batch hits without touching the executor.
  ASSERT_TRUE(engine.Execute(batch[1], ExecutionMethod::kBoundedRaster).ok());
  EXPECT_GE(engine.result_cache_hits(), 1u);

  // The whole batch replays from the cache with identical answers.
  const std::size_t hits_before = engine.result_cache_hits();
  const auto second =
      engine.ExecuteMany(batch, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(engine.result_cache_hits(), hits_before + 3);
  for (std::size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ((*second)[q].values, (*first)[q].values) << "query " << q;
    EXPECT_EQ((*second)[q].counts, (*first)[q].counts) << "query " << q;
  }
}

TEST(SpatialAggregationTest, InvalidQueryRejected) {
  const auto points = testing::MakeUniformPoints(100, 81);
  const auto regions = testing::MakeRandomRegions(2, 82);
  SpatialAggregation engine(points, regions);
  AggregationQuery query;
  query.aggregate = AggregateSpec::Avg("missing");
  EXPECT_FALSE(engine.Execute(query, ExecutionMethod::kScan).ok());
  EXPECT_FALSE(engine.ExecuteAuto(query, {.exact = true}).ok());
}

}  // namespace
}  // namespace urbane::core
