#include "core/filter.h"

#include <gtest/gtest.h>

#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

data::PointTable SmallTable() {
  data::PointTable table(data::Schema({"v"}));
  // (x, y, t, v)
  EXPECT_TRUE(table.AppendRow(0, 0, 100, {1.0f}).ok());
  EXPECT_TRUE(table.AppendRow(0, 0, 200, {5.0f}).ok());
  EXPECT_TRUE(table.AppendRow(0, 0, 300, {-3.0f}).ok());
  return table;
}

TEST(FilterSpecTest, BuilderChains) {
  FilterSpec spec;
  spec.WithTime(0, 10).WithRange("a", 1, 2).WithRange("b", 3, 4);
  ASSERT_TRUE(spec.time_range.has_value());
  EXPECT_EQ(spec.attribute_ranges.size(), 2u);
  EXPECT_FALSE(spec.IsTrivial());
  EXPECT_TRUE(FilterSpec().IsTrivial());
}

TEST(TimeRangeTest, HalfOpenSemantics) {
  const TimeRange range{100, 200};
  EXPECT_TRUE(range.Contains(100));
  EXPECT_TRUE(range.Contains(199));
  EXPECT_FALSE(range.Contains(200));
  EXPECT_FALSE(range.Contains(99));
}

TEST(CompiledFilterTest, TimeOnly) {
  const data::PointTable table = SmallTable();
  FilterSpec spec;
  spec.WithTime(150, 300);
  const auto filter = CompiledFilter::Compile(spec, table);
  ASSERT_TRUE(filter.ok());
  EXPECT_FALSE(filter->Matches(table, 0));
  EXPECT_TRUE(filter->Matches(table, 1));
  EXPECT_FALSE(filter->Matches(table, 2));  // 300 excluded (half-open)
}

TEST(CompiledFilterTest, AttributeRangeClosed) {
  const data::PointTable table = SmallTable();
  FilterSpec spec;
  spec.WithRange("v", 1.0, 5.0);
  const auto filter = CompiledFilter::Compile(spec, table);
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->Matches(table, 0));   // v == 1 (closed lower)
  EXPECT_TRUE(filter->Matches(table, 1));   // v == 5 (closed upper)
  EXPECT_FALSE(filter->Matches(table, 2));  // v == -3
}

TEST(CompiledFilterTest, ConjunctionOfConditions) {
  const data::PointTable table = SmallTable();
  FilterSpec spec;
  spec.WithTime(0, 250).WithRange("v", 0.0, 10.0);
  const auto filter = CompiledFilter::Compile(spec, table);
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->Matches(table, 0));
  EXPECT_TRUE(filter->Matches(table, 1));
  EXPECT_FALSE(filter->Matches(table, 2));  // fails both
}

TEST(CompiledFilterTest, UnknownAttributeRejected) {
  const data::PointTable table = SmallTable();
  FilterSpec spec;
  spec.WithRange("nope", 0, 1);
  EXPECT_FALSE(CompiledFilter::Compile(spec, table).ok());
}

TEST(CompiledFilterTest, EmptyRangeRejected) {
  const data::PointTable table = SmallTable();
  FilterSpec spec;
  spec.WithRange("v", 5.0, 1.0);
  EXPECT_FALSE(CompiledFilter::Compile(spec, table).ok());
}

TEST(EvaluateFilterTest, TrivialFilterSelectsAll) {
  const data::PointTable table = SmallTable();
  const auto selection = EvaluateFilter(FilterSpec(), table);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->passing(), 3u);
  EXPECT_DOUBLE_EQ(selection->Selectivity(3), 1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(selection->bitmap[i], 1);
    EXPECT_EQ(selection->ids[i], i);
  }
}

TEST(EvaluateFilterTest, BitmapAndIdsConsistent) {
  const data::PointTable table = testing::MakeUniformPoints(2000, 3);
  FilterSpec spec;
  spec.WithRange("v", 0.0, 10.0);  // ~half the points
  const auto selection = EvaluateFilter(spec, table);
  ASSERT_TRUE(selection.ok());
  std::size_t bit_count = 0;
  for (const auto bit : selection->bitmap) {
    bit_count += bit;
  }
  EXPECT_EQ(bit_count, selection->ids.size());
  EXPECT_GT(selection->passing(), 700u);
  EXPECT_LT(selection->passing(), 1300u);
  for (const std::uint32_t id : selection->ids) {
    EXPECT_EQ(selection->bitmap[id], 1);
    EXPECT_GE(table.attribute(id, 0), 0.0f);
  }
}

TEST(CompiledFilterTest, SpatialWindow) {
  const data::PointTable table = testing::MakeUniformPoints(500, 9);
  FilterSpec spec;
  spec.WithWindow(geometry::BoundingBox(25, 25, 75, 75));
  const auto selection = EvaluateFilter(spec, table);
  ASSERT_TRUE(selection.ok());
  EXPECT_GT(selection->passing(), 0u);
  EXPECT_LT(selection->passing(), table.size());
  for (const std::uint32_t id : selection->ids) {
    EXPECT_GE(table.x(id), 25.0f);
    EXPECT_LE(table.x(id), 75.0f);
    EXPECT_GE(table.y(id), 25.0f);
    EXPECT_LE(table.y(id), 75.0f);
  }
  // Roughly a quarter of a uniform square.
  EXPECT_NEAR(selection->Selectivity(table.size()), 0.25, 0.08);
}

TEST(CompiledFilterTest, EmptyWindowRejected) {
  const data::PointTable table = testing::MakeUniformPoints(10, 9);
  FilterSpec spec;
  spec.spatial_window = geometry::BoundingBox();  // empty
  EXPECT_FALSE(CompiledFilter::Compile(spec, table).ok());
}

TEST(FilterSpecTest, WindowMakesSpecNonTrivial) {
  FilterSpec spec;
  EXPECT_TRUE(spec.IsTrivial());
  spec.WithWindow(geometry::BoundingBox(0, 0, 1, 1));
  EXPECT_FALSE(spec.IsTrivial());
}

TEST(EvaluateFilterTest, SelectivityOfEmptyTable) {
  data::PointTable table(data::Schema({"v"}));
  const auto selection = EvaluateFilter(FilterSpec(), table);
  ASSERT_TRUE(selection.ok());
  EXPECT_DOUBLE_EQ(selection->Selectivity(0), 0.0);
}

}  // namespace
}  // namespace urbane::core
