// QueryControl: cooperative deadlines/cancellation polled by executors at
// pass boundaries, and its interaction with the result cache.
#include "core/query.h"

#include <gtest/gtest.h>

#include <chrono>

#include "core/spatial_aggregation.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(QueryControlTest, CheckSemantics) {
  QueryControl control;
  EXPECT_TRUE(control.Check().ok());  // no deadline, not cancelled

  control.SetTimeout(std::chrono::milliseconds(60'000));
  EXPECT_TRUE(control.Check().ok());  // far-future deadline

  control.deadline = QueryControl::Clock::now() -
                     std::chrono::milliseconds(1);
  EXPECT_EQ(control.Check().code(), StatusCode::kDeadlineExceeded);

  control.deadline = QueryControl::Clock::time_point{};  // back to "none"
  EXPECT_TRUE(control.Check().ok());
  control.cancelled.store(true);
  EXPECT_EQ(control.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryControlTest, NullControlIsAlwaysOk) {
  AggregationQuery query;
  EXPECT_EQ(query.control, nullptr);
  EXPECT_TRUE(query.CheckControl().ok());
}

TEST(QueryControlTest, CancelledControlAbortsEveryExecutionMethod) {
  const auto points = testing::MakeUniformPoints(3000, 81);
  const auto regions = testing::MakeRandomRegions(4, 82);
  SpatialAggregation engine(points, regions);

  QueryControl control;
  control.cancelled.store(true);
  for (const ExecutionMethod method :
       {ExecutionMethod::kScan, ExecutionMethod::kIndexJoin,
        ExecutionMethod::kBoundedRaster, ExecutionMethod::kAccurateRaster}) {
    AggregationQuery query;
    query.aggregate = AggregateSpec::Count();
    query.control = &control;
    const auto result = engine.Execute(query, method);
    ASSERT_FALSE(result.ok()) << ExecutionMethodToString(method);
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << ExecutionMethodToString(method);
  }

  // An aborted query must never poison the cache: re-running with the
  // control released produces the real result.
  control.cancelled.store(false);
  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();
  query.control = &control;
  const auto result = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), regions.size());
}

TEST(QueryControlTest, ExpiredDeadlineAbortsExecution) {
  const auto points = testing::MakeUniformPoints(2000, 83);
  const auto regions = testing::MakeRandomRegions(3, 84);
  SpatialAggregation engine(points, regions);

  QueryControl control;
  control.deadline = QueryControl::Clock::now() -
                     std::chrono::milliseconds(1);
  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();
  query.control = &control;
  const auto result = engine.Execute(query, ExecutionMethod::kIndexJoin);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryControlTest, CacheHitsAreExemptFromTheDeadline) {
  // Documented trade-off: a cached result is cheaper than the check is
  // useful, so an expired control does not block serving it.
  const auto points = testing::MakeUniformPoints(2000, 85);
  const auto regions = testing::MakeRandomRegions(3, 86);
  SpatialAggregation engine(points, regions);
  engine.set_result_cache_capacity(16);  // off by default

  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();
  ASSERT_TRUE(engine.Execute(query, ExecutionMethod::kScan).ok());  // warm

  QueryControl control;
  control.cancelled.store(true);
  query.control = &control;  // not part of the fingerprint
  const auto cached = engine.Execute(query, ExecutionMethod::kScan);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->size(), regions.size());
}

}  // namespace
}  // namespace urbane::core
