#include "core/raster_join.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/scan_join.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(MakeCanvasTest, LongerSideGetsResolution) {
  const auto wide = MakeCanvas(geometry::BoundingBox(0, 0, 200, 100), 512);
  EXPECT_EQ(wide.width(), 512);
  EXPECT_EQ(wide.height(), 256);
  const auto tall = MakeCanvas(geometry::BoundingBox(0, 0, 100, 200), 512);
  EXPECT_EQ(tall.height(), 512);
  EXPECT_EQ(tall.width(), 256);
}

TEST(ResolutionForEpsilonTest, HonorsErrorBound) {
  const geometry::BoundingBox world(0, 0, 1000, 800);
  for (const double eps : {50.0, 10.0, 1.0}) {
    const int res = ResolutionForEpsilon(world, eps);
    const auto canvas = MakeCanvas(world, res);
    EXPECT_LE(canvas.EpsilonWorld(), eps * 1.001)
        << "resolution " << res << " violates epsilon " << eps;
  }
  // Tighter epsilon -> more pixels.
  EXPECT_GT(ResolutionForEpsilon(world, 1.0),
            ResolutionForEpsilon(world, 50.0));
}

TEST(BoundedRasterJoinTest, ApproximationWithinReportedBound) {
  const auto points = testing::MakeUniformPoints(20000, 31);
  const auto regions = testing::MakeRandomRegions(6, 32);
  RasterJoinOptions options;
  options.resolution = 256;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(raster.ok());
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto approx = (*raster)->Execute(query);
  const auto exact = (*scan)->Execute(query);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(approx->error_bounds.size(), regions.size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const double error =
        std::fabs(approx->values[r] - exact->values[r]);
    EXPECT_LE(error, approx->error_bounds[r] + 1e-9)
        << "region " << r << " error " << error << " exceeds bound "
        << approx->error_bounds[r];
  }
}

TEST(BoundedRasterJoinTest, ErrorShrinksWithResolution) {
  const auto points = testing::MakeUniformPoints(30000, 33);
  const auto regions = testing::MakeRandomRegions(5, 34);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto exact = (*scan)->Execute(query);
  ASSERT_TRUE(exact.ok());

  double total_error_coarse = 0.0;
  double total_error_fine = 0.0;
  for (const int resolution : {64, 1024}) {
    RasterJoinOptions options;
    options.resolution = resolution;
    auto raster = BoundedRasterJoin::Create(points, regions, options);
    ASSERT_TRUE(raster.ok());
    const auto approx = (*raster)->Execute(query);
    ASSERT_TRUE(approx.ok());
    double total = 0.0;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      total += std::fabs(approx->values[r] - exact->values[r]);
    }
    (resolution == 64 ? total_error_coarse : total_error_fine) = total;
  }
  EXPECT_LT(total_error_fine, total_error_coarse);
}

TEST(BoundedRasterJoinTest, SumAggregateBounded) {
  const auto points = testing::MakeUniformPoints(10000, 35);
  const auto regions = testing::MakeRandomRegions(4, 36);
  RasterJoinOptions options;
  options.resolution = 200;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(raster.ok());
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Sum("v");
  const auto approx = (*raster)->Execute(query);
  const auto exact = (*scan)->Execute(query);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_LE(std::fabs(approx->values[r] - exact->values[r]),
              approx->error_bounds[r] + 1e-6);
  }
}

TEST(BoundedRasterJoinTest, TrianglePipelineMatchesScanline) {
  const auto points = testing::MakeUniformPoints(5000, 37);
  const auto regions = testing::MakeRandomRegions(5, 38);
  RasterJoinOptions scanline_options;
  scanline_options.resolution = 128;
  RasterJoinOptions triangle_options = scanline_options;
  triangle_options.use_triangle_pipeline = true;
  auto a = BoundedRasterJoin::Create(points, regions, scanline_options);
  auto b = BoundedRasterJoin::Create(points, regions, triangle_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto ra = (*a)->Execute(query);
  const auto rb = (*b)->Execute(query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(ra->counts[r], rb->counts[r])
        << "pipelines disagree on region " << r;
  }
}

TEST(BoundedRasterJoinTest, EpsilonMatchesCanvas) {
  const auto points = testing::MakeUniformPoints(100, 39);
  const auto regions = testing::MakeRandomRegions(2, 39);
  RasterJoinOptions options;
  options.resolution = 512;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(raster.ok());
  EXPECT_GT((*raster)->EpsilonWorld(), 0.0);
  EXPECT_DOUBLE_EQ((*raster)->EpsilonWorld(),
                   (*raster)->canvas().EpsilonWorld());
  EXPECT_EQ((*raster)->name(), "raster");
  EXPECT_FALSE((*raster)->exact());
}

TEST(BoundedRasterJoinTest, RejectsBadOptions) {
  const auto points = testing::MakeUniformPoints(10, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  RasterJoinOptions bad;
  bad.resolution = 0;
  EXPECT_FALSE(BoundedRasterJoin::Create(points, regions, bad).ok());
  RasterJoinOptions tiny_world;
  tiny_world.world = geometry::BoundingBox(0, 0, 1, 1);  // doesn't cover
  EXPECT_FALSE(BoundedRasterJoin::Create(points, regions, tiny_world).ok());
}

TEST(BoundedRasterJoinTest, Float32TargetsAblationStaysClose) {
  // GPU-authentic float32 render targets: SUM/AVG answers drift only by
  // float32 rounding relative to the double-target default.
  const auto points = testing::MakeUniformPoints(20000, 42);
  const auto regions = testing::MakeRandomRegions(4, 43);
  RasterJoinOptions double_opts;
  double_opts.resolution = 192;
  RasterJoinOptions float_opts = double_opts;
  float_opts.use_float32_targets = true;
  auto a = BoundedRasterJoin::Create(points, regions, double_opts);
  auto b = BoundedRasterJoin::Create(points, regions, float_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Sum("v");
  const auto rd = (*a)->Execute(query);
  const auto rf = (*b)->Execute(query);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rf.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(rd->counts[r], rf->counts[r]);
    EXPECT_NEAR(rf->values[r], rd->values[r],
                1e-3 * std::max(1.0, std::fabs(rd->values[r])))
        << "region " << r;
  }
}

TEST(BoundedRasterJoinTest, SpatialWindowFilterApplied) {
  const auto points = testing::MakeUniformPoints(5000, 44);
  const auto regions = testing::MakeRandomRegions(3, 45);
  RasterJoinOptions options;
  options.resolution = 128;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(raster.ok());
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithWindow(geometry::BoundingBox(20, 20, 80, 80));
  const auto approx = (*raster)->Execute(query);
  const auto exact = (*scan)->Execute(query);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_LE(std::fabs(approx->values[r] - exact->values[r]),
              approx->error_bounds[r] + 1e-9);
  }
}

TEST(BoundedRasterJoinTest, StatsTrackPixelsAndBoundary) {
  const auto points = testing::MakeUniformPoints(1000, 40);
  const auto regions = testing::MakeRandomRegions(3, 40);
  RasterJoinOptions options;
  options.resolution = 128;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(raster.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  ASSERT_TRUE((*raster)->Execute(query).ok());
  EXPECT_GT((*raster)->stats().pixels_touched, 0u);
  EXPECT_GT((*raster)->stats().boundary_pixels, 0u);
  EXPECT_EQ((*raster)->stats().points_scanned, 1000u);
}

TEST(BoundedRasterJoinTest, DisablingBoundsSkipsThem) {
  const auto points = testing::MakeUniformPoints(500, 41);
  const auto regions = testing::MakeRandomRegions(2, 41);
  RasterJoinOptions options;
  options.resolution = 64;
  options.compute_error_bounds = false;
  auto raster = BoundedRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(raster.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto result = (*raster)->Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->error_bounds.empty());
}

}  // namespace
}  // namespace urbane::core
