// The repo's central property test: over randomized worlds (points, region
// shapes, filters, aggregates), every EXACT executor must agree with the
// full-scan oracle, and the bounded raster join must stay within its
// self-reported error bound. This is the invariant that makes the raster
// substitution for the GPU pipeline trustworthy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/accurate_join.h"
#include "core/index_join.h"
#include "core/quadtree_join.h"
#include "core/raster_join.h"
#include "core/scan_join.h"
#include "core/spatial_aggregation.h"
#include "data/region_generator.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::core {
namespace {

struct WorldConfig {
  std::uint64_t seed;
  std::size_t num_points;
  std::size_t num_regions;
  bool tessellation;     // partition world vs overlapping star polygons
  int resolution;        // raster canvas
  AggregateKind kind;
  bool filtered;

  friend std::ostream& operator<<(std::ostream& os, const WorldConfig& c) {
    return os << "seed" << c.seed << "_pts" << c.num_points << "_reg"
              << c.num_regions << (c.tessellation ? "_tess" : "_star")
              << "_res" << c.resolution << "_"
              << AggregateKindToString(c.kind)
              << (c.filtered ? "_filtered" : "_all");
  }
};

class ExecutorEquivalenceTest : public ::testing::TestWithParam<WorldConfig> {
};

TEST_P(ExecutorEquivalenceTest, AllExactExecutorsAgreeWithScan) {
  const WorldConfig& config = GetParam();
  const auto points =
      testing::MakeUniformPoints(config.num_points, config.seed);
  const data::RegionSet regions =
      config.tessellation
          ? testing::MakeTessellationRegions(4, config.seed ^ 0xBEEF)
          : testing::MakeRandomRegions(config.num_regions,
                                       config.seed ^ 0xBEEF);

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate.kind = config.kind;
  if (query.aggregate.NeedsAttribute()) {
    query.aggregate.attribute = "v";
  }
  if (config.filtered) {
    query.filter.WithTime(15000, 70000).WithRange("v", -7.5, 6.5);
  }

  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  const auto oracle = (*scan)->Execute(query);
  ASSERT_TRUE(oracle.ok());

  RasterJoinOptions options;
  options.resolution = config.resolution;

  // --- index join: exact ---
  auto index = IndexJoin::Create(points, regions);
  ASSERT_TRUE(index.ok());
  const auto index_result = (*index)->Execute(query);
  ASSERT_TRUE(index_result.ok());

  // --- quadtree join: exact ---
  auto quadtree = QuadtreeJoin::Create(points, regions);
  ASSERT_TRUE(quadtree.ok());
  const auto quadtree_result = (*quadtree)->Execute(query);
  ASSERT_TRUE(quadtree_result.ok());

  // --- accurate raster join: exact ---
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(accurate.ok());
  const auto accurate_result = (*accurate)->Execute(query);
  ASSERT_TRUE(accurate_result.ok());

  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(index_result->counts[r], oracle->counts[r])
        << "index join count, region " << r;
    EXPECT_EQ(quadtree_result->counts[r], oracle->counts[r])
        << "quadtree join count, region " << r;
    EXPECT_EQ(accurate_result->counts[r], oracle->counts[r])
        << "accurate join count, region " << r;
    if (oracle->counts[r] == 0) {
      continue;  // AVG/MIN/MAX finalize to NaN on empty groups
    }
    const double tol =
        1e-9 * std::max(1.0, std::fabs(oracle->values[r]));
    EXPECT_NEAR(index_result->values[r], oracle->values[r], tol)
        << "index join value, region " << r;
    EXPECT_NEAR(quadtree_result->values[r], oracle->values[r], tol)
        << "quadtree join value, region " << r;
    EXPECT_NEAR(accurate_result->values[r], oracle->values[r], tol)
        << "accurate join value, region " << r;
  }

  // --- bounded raster join: within reported bound ---
  auto bounded = BoundedRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(bounded.ok());
  const auto approx = (*bounded)->Execute(query);
  ASSERT_TRUE(approx.ok());
  if (config.kind == AggregateKind::kCount ||
      config.kind == AggregateKind::kSum) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_LE(std::fabs(approx->values[r] - oracle->values[r]),
                approx->error_bounds[r] + 1e-6)
          << "bounded join violated its bound, region " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorEquivalenceTest,
    ::testing::Values(
        // Aggregate sweep over star-polygon worlds.
        WorldConfig{101, 8000, 6, false, 128, AggregateKind::kCount, false},
        WorldConfig{102, 8000, 6, false, 128, AggregateKind::kSum, false},
        WorldConfig{103, 8000, 6, false, 128, AggregateKind::kAvg, false},
        WorldConfig{104, 8000, 6, false, 128, AggregateKind::kMin, false},
        WorldConfig{105, 8000, 6, false, 128, AggregateKind::kMax, false},
        // Filtered variants.
        WorldConfig{106, 8000, 6, false, 128, AggregateKind::kCount, true},
        WorldConfig{107, 8000, 6, false, 128, AggregateKind::kAvg, true},
        WorldConfig{108, 8000, 6, false, 128, AggregateKind::kSum, true},
        // Tessellation worlds (shared boundaries stress the pixel rules).
        WorldConfig{109, 10000, 16, true, 128, AggregateKind::kCount, false},
        WorldConfig{110, 10000, 16, true, 192, AggregateKind::kSum, true},
        WorldConfig{111, 6000, 16, true, 64, AggregateKind::kCount, true},
        // Resolution extremes.
        WorldConfig{112, 5000, 4, false, 16, AggregateKind::kCount, false},
        WorldConfig{113, 5000, 4, false, 700, AggregateKind::kCount, false},
        // Small and large worlds.
        WorldConfig{114, 200, 3, false, 128, AggregateKind::kAvg, false},
        WorldConfig{115, 30000, 10, false, 256, AggregateKind::kCount,
                    false}),
    [](const ::testing::TestParamInfo<WorldConfig>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// Observability must be a pure observer: with metrics + tracing enabled and
// a QueryTrace attached, every executor returns bit-identical results to
// the obs-off run — at 1 and at 4 threads. Guards against instrumentation
// accidentally perturbing execution (reordered reductions, skipped work,
// shared state).
TEST(ObservabilityDeterminismTest, ResultsBitIdenticalWithTracingOnAndOff) {
  const auto points = testing::MakeUniformPoints(12'000, 424242);
  const data::RegionSet regions = testing::MakeRandomRegions(8, 424242 ^ 0xBEEF);

  AggregationQuery query;
  query.aggregate = AggregateSpec::Avg("v");
  query.filter.WithTime(10000, 80000).WithRange("v", -8.0, 8.0);

  const ExecutionMethod methods[] = {
      ExecutionMethod::kScan, ExecutionMethod::kIndexJoin,
      ExecutionMethod::kBoundedRaster, ExecutionMethod::kAccurateRaster};

  const bool metrics_was = obs::MetricsEnabled();
  const bool tracing_was = obs::TracingEnabled();
  ThreadPool pool(4);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ExecutionContext exec;
    if (threads > 1) {
      exec.pool = &pool;
      exec.num_threads = threads;
      exec.min_parallel_points = 1;  // small world: force real partitioning
    }
    SpatialAggregation engine(points, regions, RasterJoinOptions(),
                              IndexJoinOptions(), exec);
    for (const ExecutionMethod method : methods) {
      obs::SetMetricsEnabled(false);
      obs::SetTracingEnabled(false);
      const auto baseline = engine.Execute(query, method);
      ASSERT_TRUE(baseline.ok()) << ExecutionMethodToString(method);

      obs::SetMetricsEnabled(true);
      obs::SetTracingEnabled(true);
      obs::QueryTrace trace;
      AggregationQuery traced = query;
      traced.trace = &trace;
      const auto observed = engine.Execute(traced, method);
      ASSERT_TRUE(observed.ok()) << ExecutionMethodToString(method);

      ASSERT_EQ(observed->size(), baseline->size());
      for (std::size_t r = 0; r < baseline->size(); ++r) {
        const double expect = baseline->values[r];
        const double got = observed->values[r];
        if (std::isnan(expect)) {
          EXPECT_TRUE(std::isnan(got))
              << ExecutionMethodToString(method) << " threads=" << threads
              << " region " << r;
        } else {
          EXPECT_EQ(got, expect)  // bitwise, not NEAR
              << ExecutionMethodToString(method) << " threads=" << threads
              << " region " << r;
        }
        EXPECT_EQ(observed->counts[r], baseline->counts[r])
            << ExecutionMethodToString(method) << " threads=" << threads
            << " region " << r;
      }

      // The trace actually recorded the execution it observed.
      EXPECT_FALSE(trace.Empty()) << ExecutionMethodToString(method);
      bool has_execute_span = false;
      for (const obs::TraceSpanRecord& span : trace.Spans()) {
        has_execute_span |= span.name == "execute";
      }
      EXPECT_TRUE(has_execute_span) << ExecutionMethodToString(method);
    }
  }
  obs::SetMetricsEnabled(metrics_was);
  obs::SetTracingEnabled(tracing_was);

  // The serial quadtree executor, which lives outside the facade.
  auto quadtree = QuadtreeJoin::Create(points, regions);
  ASSERT_TRUE(quadtree.ok());
  AggregationQuery direct = query;
  direct.points = &points;
  direct.regions = &regions;
  const auto baseline = (*quadtree)->Execute(direct);
  ASSERT_TRUE(baseline.ok());
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);
  obs::QueryTrace trace;
  direct.trace = &trace;
  const auto observed = (*quadtree)->Execute(direct);
  obs::SetMetricsEnabled(metrics_was);
  obs::SetTracingEnabled(tracing_was);
  ASSERT_TRUE(observed.ok());
  for (std::size_t r = 0; r < baseline->size(); ++r) {
    EXPECT_EQ(observed->counts[r], baseline->counts[r]) << "quadtree " << r;
    if (!std::isnan(baseline->values[r])) {
      EXPECT_EQ(observed->values[r], baseline->values[r]) << "quadtree " << r;
    }
  }
  EXPECT_FALSE(trace.Empty());
}

}  // namespace
}  // namespace urbane::core
