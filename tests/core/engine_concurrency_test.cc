// Concurrent-session safety of the SpatialAggregation facade: one engine,
// many threads. Answers must equal the serial oracle bit-for-bit (executors
// run serially inside per-method locks; cache hits are copies), and the
// whole suite must be clean under `-DURBANE_SANITIZE=thread` (tools/check.sh
// runs exactly this file under TSan).
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/spatial_aggregation.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

std::vector<AggregationQuery> QueryMix() {
  std::vector<AggregationQuery> queries;
  for (int w = 0; w < 3; ++w) {
    AggregationQuery query;
    query.aggregate = AggregateSpec::Count();
    query.filter.WithTime(w * 10000, 30000 + w * 15000);
    queries.push_back(query);
  }
  AggregationQuery sum;
  sum.aggregate = AggregateSpec::Sum("v");
  sum.filter.WithTime(5000, 70000);
  queries.push_back(sum);
  AggregationQuery filtered;
  filtered.aggregate = AggregateSpec::Count();
  filtered.filter.WithRange("v", 0.0, 10.0);
  queries.push_back(filtered);
  AggregationQuery windowed;
  windowed.aggregate = AggregateSpec::Count();
  windowed.filter.WithWindow(geometry::BoundingBox(10, 10, 80, 80));
  queries.push_back(windowed);
  return queries;
}

TEST(EngineConcurrencyTest, HammeredEngineMatchesSerialOracle) {
  const auto points = testing::MakeUniformPoints(4000, 95);
  const auto regions = testing::MakeRandomRegions(3, 96);
  RasterJoinOptions options;
  options.resolution = 128;

  const std::vector<AggregationQuery> queries = QueryMix();
  const ExecutionMethod methods[] = {
      ExecutionMethod::kScan, ExecutionMethod::kIndexJoin,
      ExecutionMethod::kBoundedRaster, ExecutionMethod::kAccurateRaster};

  // Serial oracle: a private engine answers every (query, method) pair.
  SpatialAggregation oracle(points, regions, options);
  std::vector<std::vector<QueryResult>> expected(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const ExecutionMethod method : methods) {
      auto result = oracle.Execute(queries[q], method);
      ASSERT_TRUE(result.ok()) << result.status();
      expected[q].push_back(std::move(*result));
    }
  }

  SpatialAggregation engine(points, regions, options);
  engine.set_result_cache_capacity(128);
  constexpr int kThreads = 4;
  constexpr int kIters = 24;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> errors(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t q = (t * 31 + i * 7) % queries.size();
        const std::size_t m = (t + i) % 4;
        const auto result = engine.Execute(queries[q], methods[m]);
        if (!result.ok()) {
          ++errors[t];
          continue;
        }
        const QueryResult& want = expected[q][m];
        if (result->values != want.values || result->counts != want.counts ||
            result->error_bounds != want.error_bounds) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[t], 0) << "thread " << t;
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  // Revisit traffic must actually have been served from the cache.
  EXPECT_GT(engine.result_cache_hits(), 0u);
  EXPECT_LE(engine.result_cache_size(), 128u);
}

TEST(EngineConcurrencyTest, ConcurrentAutoRebuildIsSafe) {
  const auto points = testing::MakeUniformPoints(20000, 97);
  const auto regions = testing::MakeRandomRegions(4, 98);
  RasterJoinOptions options;
  options.resolution = 32;
  SpatialAggregation engine(points, regions, options);
  engine.set_result_cache_capacity(64);

  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();

  constexpr int kThreads = 4;
  constexpr int kIters = 8;
  std::vector<int> errors(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        StatusOr<QueryResult> result =
            (t % 2 == 0)
                // Planners force resolution bumps (executor rebuilds)...
                ? engine.ExecuteAuto(query, {.exact = false,
                                             .epsilon_world =
                                                 i % 2 == 0 ? 2.0 : 0.5})
                // ...while other sessions execute on the same executor.
                : engine.Execute(query, ExecutionMethod::kBoundedRaster);
        if (!result.ok()) {
          ++errors[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(errors[t], 0) << "thread " << t;
  }

  // The resolution only ratchets up, so after the dust settles the engine
  // answers at the finest requested ε — bit-identical to a fresh engine
  // built directly at that resolution.
  geometry::BoundingBox world = points.Bounds();
  world.Extend(regions.Bounds());
  RasterJoinOptions fine = options;
  fine.resolution = ResolutionForEpsilon(world, 0.5);
  ASSERT_GT(fine.resolution, 32);
  SpatialAggregation settled_oracle(points, regions, fine);
  const auto want =
      settled_oracle.Execute(query, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(want.ok());
  const auto settled = engine.Execute(query, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled->values, want->values);
  EXPECT_EQ(settled->error_bounds, want->error_bounds);
}

}  // namespace
}  // namespace urbane::core
