#include "core/query_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace urbane::core {
namespace {

QueryResult MakeResult(double seed, std::size_t regions = 3) {
  QueryResult result;
  for (std::size_t r = 0; r < regions; ++r) {
    result.values.push_back(seed + static_cast<double>(r));
    result.counts.push_back(static_cast<std::uint64_t>(r) + 1);
  }
  return result;
}

AggregationQuery BaseQuery() {
  AggregationQuery query;
  query.aggregate = AggregateSpec::Count();
  query.filter.WithTime(1000, 2000);
  return query;
}

TEST(QueryCacheFingerprintTest, StableForIdenticalInputs) {
  const AggregationQuery a = BaseQuery();
  const AggregationQuery b = BaseQuery();
  EXPECT_EQ(QueryCache::Fingerprint(a, ExecutionMethod::kScan, 0, 0),
            QueryCache::Fingerprint(b, ExecutionMethod::kScan, 0, 0));
}

TEST(QueryCacheFingerprintTest, EveryKeyComponentSplitsTheKey) {
  const AggregationQuery base = BaseQuery();
  const std::uint64_t key =
      QueryCache::Fingerprint(base, ExecutionMethod::kBoundedRaster, 512, 7);

  // Method.
  EXPECT_NE(key, QueryCache::Fingerprint(base, ExecutionMethod::kScan, 512, 7));
  // Canvas resolution (the ε axis — the headline stale-ε bug).
  EXPECT_NE(key, QueryCache::Fingerprint(base, ExecutionMethod::kBoundedRaster,
                                         1024, 7));
  // Executor-config epoch.
  EXPECT_NE(key, QueryCache::Fingerprint(base, ExecutionMethod::kBoundedRaster,
                                         512, 8));
  // Aggregate.
  AggregationQuery agg = base;
  agg.aggregate = AggregateSpec::Sum("v");
  EXPECT_NE(key, QueryCache::Fingerprint(agg, ExecutionMethod::kBoundedRaster,
                                         512, 7));
  // Time window.
  AggregationQuery time = base;
  time.filter.time_range->end = 2001;
  EXPECT_NE(key, QueryCache::Fingerprint(time, ExecutionMethod::kBoundedRaster,
                                         512, 7));
  // Attribute range.
  AggregationQuery range = base;
  range.filter.WithRange("v", 0.0, 1.0);
  EXPECT_NE(key, QueryCache::Fingerprint(range,
                                         ExecutionMethod::kBoundedRaster, 512,
                                         7));
  // Viewport window.
  AggregationQuery window = base;
  window.filter.WithWindow(geometry::BoundingBox(0, 0, 10, 10));
  EXPECT_NE(key, QueryCache::Fingerprint(window,
                                         ExecutionMethod::kBoundedRaster, 512,
                                         7));
}

TEST(QueryCacheFingerprintTest, CountIgnoresStrayAttribute) {
  AggregationQuery a = BaseQuery();
  AggregationQuery b = BaseQuery();
  b.aggregate.attribute = "v";  // ignored by COUNT
  EXPECT_EQ(QueryCache::Fingerprint(a, ExecutionMethod::kScan, 0, 0),
            QueryCache::Fingerprint(b, ExecutionMethod::kScan, 0, 0));
}

TEST(QueryCacheTest, DisabledByDefault) {
  QueryCache cache;
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, MakeResult(1.0));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCacheTest, LookupInsertRoundTrip) {
  QueryCacheOptions options;
  options.max_entries = 8;
  QueryCache cache(options);
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.Lookup(42).has_value());
  cache.Insert(42, MakeResult(5.0));
  const auto hit = cache.Lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->values, MakeResult(5.0).values);
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCacheOptions options;
  options.max_entries = 2;
  options.shards = 1;  // deterministic eviction order
  QueryCache cache(options);
  cache.Insert(1, MakeResult(1.0));
  cache.Insert(2, MakeResult(2.0));
  ASSERT_TRUE(cache.Lookup(1).has_value());  // 2 is now the LRU entry
  cache.Insert(3, MakeResult(3.0));
  EXPECT_TRUE(cache.Lookup(1, /*record_miss=*/false).has_value());
  EXPECT_FALSE(cache.Lookup(2, /*record_miss=*/false).has_value());
  EXPECT_TRUE(cache.Lookup(3, /*record_miss=*/false).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(QueryCacheTest, ByteBoundEvicts) {
  QueryCacheOptions options;
  options.max_entries = 100;
  options.shards = 1;
  options.max_bytes = 2 * QueryCache::ResultBytes(MakeResult(0.0, 64)) + 16;
  QueryCache cache(options);
  cache.Insert(1, MakeResult(1.0, 64));
  cache.Insert(2, MakeResult(2.0, 64));
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.Insert(3, MakeResult(3.0, 64));
  const QueryCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_LT(stats.entries, 3u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_FALSE(cache.Lookup(1, /*record_miss=*/false).has_value());
}

TEST(QueryCacheTest, OversizedResultNotRetained) {
  QueryCacheOptions options;
  options.max_entries = 4;
  options.shards = 1;
  options.max_bytes = 64;  // smaller than any real result payload
  QueryCache cache(options);
  cache.Insert(1, MakeResult(1.0, 512));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCacheTest, ShrinkingCapacityTrims) {
  QueryCacheOptions options;
  options.max_entries = 8;
  options.shards = 1;
  QueryCache cache(options);
  for (std::uint64_t k = 0; k < 8; ++k) {
    cache.Insert(k, MakeResult(static_cast<double>(k)));
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  cache.set_max_entries(3);
  EXPECT_EQ(cache.stats().entries, 3u);
  cache.set_max_entries(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCacheTest, ClearDropsEntriesKeepsCounters) {
  QueryCacheOptions options;
  options.max_entries = 8;
  QueryCache cache(options);
  cache.Insert(7, MakeResult(7.0));
  ASSERT_TRUE(cache.Lookup(7).has_value());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.Lookup(7).has_value());
}

TEST(QueryCacheTest, ShardedCapacityStaysBounded) {
  QueryCacheOptions options;
  options.max_entries = 16;
  options.shards = 8;
  QueryCache cache(options);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    // Spread keys over all shards (the router uses the high bits).
    cache.Insert(k * 0x9e3779b97f4a7c15ull, MakeResult(1.0));
  }
  EXPECT_LE(cache.stats().entries, 16u);
}

TEST(QueryCacheTest, ConcurrentMixedTrafficIsSafe) {
  QueryCacheOptions options;
  options.max_entries = 64;
  QueryCache cache(options);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  std::vector<int> corrupt(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &corrupt, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>((t * 7 + i) % 97) *
            0x9e3779b97f4a7c15ull;
        const double seed = static_cast<double>((t * 7 + i) % 97);
        if (i % 3 == 0) {
          cache.Insert(key, MakeResult(seed));
        } else if (const auto hit = cache.Lookup(key)) {
          if (hit->values != MakeResult(seed).values) {
            corrupt[t] = 1;  // a key must only ever map to its own result
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(corrupt[t], 0) << "thread " << t << " read a torn entry";
  }
}

}  // namespace
}  // namespace urbane::core
