// The SIMD level must be invisible in results: for both raster executors,
// every aggregate, and 1 or 4 worker threads, running with URBANE_SIMD=off
// must reproduce the SSE2/AVX2 runs bit for bit — values, counts and error
// bounds. The kernels are specified in integer / IEEE-754 terms that do not
// depend on lane count, and executors rebuild their caches per Create, so a
// fresh executor per level exercises the whole pipeline (Morton order,
// splat schedule, sweep caches, span kernels) at that level.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/accurate_join.h"
#include "core/raster_join.h"
#include "raster/simd.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::core {
namespace {

std::vector<raster::SimdLevel> AvailableLevels() {
  std::vector<raster::SimdLevel> levels = {raster::SimdLevel::kOff};
  const int max = static_cast<int>(raster::CpuMaxSimdLevel());
  if (max >= static_cast<int>(raster::SimdLevel::kSse2)) {
    levels.push_back(raster::SimdLevel::kSse2);
  }
  if (max >= static_cast<int>(raster::SimdLevel::kAvx2)) {
    levels.push_back(raster::SimdLevel::kAvx2);
  }
  return levels;
}

/// Restores the environment-derived level however the test exits.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(raster::SimdLevel level) {
    raster::SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { raster::ResetSimdLevelFromEnv(); }
};

struct SimdDetConfig {
  bool accurate;
  AggregateKind kind;

  friend std::ostream& operator<<(std::ostream& os, const SimdDetConfig& c) {
    return os << (c.accurate ? "accurate" : "bounded") << "_"
              << AggregateKindToString(c.kind);
  }
};

StatusOr<QueryResult> RunAtLevel(const SimdDetConfig& config,
                                 raster::SimdLevel level,
                                 const data::PointTable& points,
                                 const data::RegionSet& regions,
                                 const AggregationQuery& query,
                                 const ExecutionContext& exec) {
  ScopedSimdLevel scoped(level);
  RasterJoinOptions options;
  options.resolution = 128;
  options.exec = exec;
  if (config.accurate) {
    URBANE_ASSIGN_OR_RETURN(
        auto join, AccurateRasterJoin::Create(points, regions, options));
    return join->Execute(query);
  }
  URBANE_ASSIGN_OR_RETURN(auto join,
                          BoundedRasterJoin::Create(points, regions, options));
  return join->Execute(query);
}

void ExpectBitIdentical(const QueryResult& got, const QueryResult& want,
                        const char* level) {
  ASSERT_EQ(got.values.size(), want.values.size()) << level;
  ASSERT_EQ(got.counts, want.counts) << level;
  for (std::size_t r = 0; r < want.values.size(); ++r) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.values[r]),
              std::bit_cast<std::uint64_t>(want.values[r]))
        << level << " value, region " << r;
  }
  ASSERT_EQ(got.error_bounds.size(), want.error_bounds.size()) << level;
  for (std::size_t r = 0; r < want.error_bounds.size(); ++r) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.error_bounds[r]),
              std::bit_cast<std::uint64_t>(want.error_bounds[r]))
        << level << " error bound, region " << r;
  }
}

class RasterSimdDeterminismTest
    : public ::testing::TestWithParam<SimdDetConfig> {};

TEST_P(RasterSimdDeterminismTest, LevelsProduceBitIdenticalResults) {
  const SimdDetConfig& config = GetParam();
  const auto points = testing::MakeUniformPoints(6000, 777);
  const data::RegionSet regions = testing::MakeRandomRegions(6, 0xFACADE);

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate.kind = config.kind;
  if (query.aggregate.NeedsAttribute()) {
    query.aggregate.attribute = "v";
  }
  // Dense enough that the Morton schedule gate opens — the level sweep then
  // covers the Z-ordered splat path too.
  query.filter.WithTime(5000, 82000);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    ExecutionContext exec;
    if (threads > 1) {
      exec.pool = &pool;
      exec.num_threads = threads;
      exec.min_parallel_points = 1;
    }

    const auto reference = RunAtLevel(config, raster::SimdLevel::kOff,
                                      points, regions, query, exec);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (const raster::SimdLevel level : AvailableLevels()) {
      const auto result =
          RunAtLevel(config, level, points, regions, query, exec);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectBitIdentical(*result, *reference, raster::SimdLevelName(level));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExecutorsAllAggregates, RasterSimdDeterminismTest,
    ::testing::Values(
        SimdDetConfig{false, AggregateKind::kCount},
        SimdDetConfig{false, AggregateKind::kSum},
        SimdDetConfig{false, AggregateKind::kAvg},
        SimdDetConfig{false, AggregateKind::kMin},
        SimdDetConfig{false, AggregateKind::kMax},
        SimdDetConfig{true, AggregateKind::kCount},
        SimdDetConfig{true, AggregateKind::kSum},
        SimdDetConfig{true, AggregateKind::kAvg},
        SimdDetConfig{true, AggregateKind::kMin},
        SimdDetConfig{true, AggregateKind::kMax}),
    [](const ::testing::TestParamInfo<SimdDetConfig>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

/// The sparse-selection path (row-ordered schedule, Morton gate closed)
/// must agree with the dense path's math as well: identical filters at
/// different selectivities are covered by the suite above; here a sparse
/// filter pins the gate shut and the level sweep still holds.
TEST(RasterSimdDeterminismTest, SparseSelectionLevelsAgree) {
  const auto points = testing::MakeUniformPoints(6000, 778);
  const data::RegionSet regions = testing::MakeRandomRegions(5, 0xBEA7);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Sum("v");
  query.filter.WithTime(1000, 9000);  // ~9% selectivity: gate closed

  const SimdDetConfig bounded{false, AggregateKind::kSum};
  const auto reference = RunAtLevel(bounded, raster::SimdLevel::kOff, points,
                                    regions, query, ExecutionContext());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const raster::SimdLevel level : AvailableLevels()) {
    const auto result = RunAtLevel(bounded, level, points, regions, query,
                                   ExecutionContext());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(*result, *reference, raster::SimdLevelName(level));
  }
}

}  // namespace
}  // namespace urbane::core
