#include "core/scan_join.h"

#include <gtest/gtest.h>

#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(ScanJoinTest, CountsPointsInSquare) {
  // 4 points, one square region covering two of them.
  data::PointTable points(data::Schema({"v"}));
  ASSERT_TRUE(points.AppendRow(1, 1, 0, {2.0f}).ok());
  ASSERT_TRUE(points.AppendRow(2, 2, 0, {3.0f}).ok());
  ASSERT_TRUE(points.AppendRow(9, 9, 0, {4.0f}).ok());
  ASSERT_TRUE(points.AppendRow(-5, 0, 0, {5.0f}).ok());
  data::RegionSet regions;
  data::Region square;
  square.id = 0;
  square.name = "sq";
  square.geometry = geometry::MultiPolygon(geometry::Polygon(
      geometry::Ring{{0, 0}, {5, 0}, {5, 5}, {0, 5}}));
  ASSERT_TRUE(regions.Add(std::move(square)).ok());

  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto result = (*scan)->Execute(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ(result->values[0], 2.0);
  EXPECT_EQ(result->counts[0], 2u);
  EXPECT_TRUE(result->error_bounds.empty());  // exact executor
}

TEST(ScanJoinTest, AllAggregateKinds) {
  data::PointTable points(data::Schema({"v"}));
  ASSERT_TRUE(points.AppendRow(1, 1, 0, {2.0f}).ok());
  ASSERT_TRUE(points.AppendRow(2, 2, 0, {8.0f}).ok());
  ASSERT_TRUE(points.AppendRow(3, 3, 0, {-4.0f}).ok());
  data::RegionSet regions;
  data::Region square;
  square.id = 0;
  square.name = "all";
  square.geometry = geometry::MultiPolygon(geometry::Polygon(
      geometry::Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  ASSERT_TRUE(regions.Add(std::move(square)).ok());
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Sum("v");
  EXPECT_DOUBLE_EQ((*scan)->Execute(query)->values[0], 6.0);
  query.aggregate = AggregateSpec::Avg("v");
  EXPECT_DOUBLE_EQ((*scan)->Execute(query)->values[0], 2.0);
  query.aggregate = AggregateSpec::Min("v");
  EXPECT_DOUBLE_EQ((*scan)->Execute(query)->values[0], -4.0);
  query.aggregate = AggregateSpec::Max("v");
  EXPECT_DOUBLE_EQ((*scan)->Execute(query)->values[0], 8.0);
}

TEST(ScanJoinTest, OverlappingRegionsBothCount) {
  data::PointTable points{data::Schema(std::vector<std::string>{})};
  ASSERT_TRUE(points.AppendRow(5, 5, 0, {}).ok());
  data::RegionSet regions;
  for (int r = 0; r < 2; ++r) {
    data::Region region;
    region.id = r;
    region.name = "ov" + std::to_string(r);
    region.geometry = geometry::MultiPolygon(geometry::Polygon(
        geometry::Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
    ASSERT_TRUE(regions.Add(std::move(region)).ok());
  }
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto result = (*scan)->Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts[0], 1u);
  EXPECT_EQ(result->counts[1], 1u);
}

TEST(ScanJoinTest, FilterApplied) {
  data::PointTable points(data::Schema({"v"}));
  ASSERT_TRUE(points.AppendRow(1, 1, 100, {1.0f}).ok());
  ASSERT_TRUE(points.AppendRow(1, 1, 200, {9.0f}).ok());
  data::RegionSet regions;
  data::Region square;
  square.id = 0;
  square.name = "sq";
  square.geometry = geometry::MultiPolygon(geometry::Polygon(
      geometry::Ring{{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  ASSERT_TRUE(regions.Add(std::move(square)).ok());
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithTime(150, 300);
  EXPECT_EQ((*scan)->Execute(query)->counts[0], 1u);
  query.filter = FilterSpec();
  query.filter.WithRange("v", 0.0, 5.0);
  EXPECT_EQ((*scan)->Execute(query)->counts[0], 1u);
}

TEST(ScanJoinTest, WrongTableRejected) {
  const auto points = testing::MakeUniformPoints(10, 1);
  const auto other_points = testing::MakeUniformPoints(10, 2);
  const auto regions = testing::MakeRandomRegions(2, 1);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &other_points;
  query.regions = &regions;
  EXPECT_FALSE((*scan)->Execute(query).ok());
}

TEST(ScanJoinTest, StatsPopulated) {
  const auto points = testing::MakeUniformPoints(500, 3);
  const auto regions = testing::MakeRandomRegions(4, 3);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  ASSERT_TRUE((*scan)->Execute(query).ok());
  EXPECT_EQ((*scan)->stats().points_scanned, 500u);
  EXPECT_GT((*scan)->stats().query_seconds, 0.0);
  EXPECT_EQ((*scan)->name(), "scan");
  EXPECT_TRUE((*scan)->exact());
}

TEST(ScanJoinTest, EmptyRegionSetYieldsEmptyResult) {
  const auto points = testing::MakeUniformPoints(10, 1);
  data::RegionSet regions;
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto result = (*scan)->Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

}  // namespace
}  // namespace urbane::core
