#include "core/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace urbane::core {
namespace {

TEST(AccumulatorTest, StreamingAdd) {
  Accumulator acc;
  acc.Add(3.0);
  acc.Add(-1.0);
  acc.Add(4.0);
  EXPECT_EQ(acc.count, 3u);
  EXPECT_DOUBLE_EQ(acc.sum, 6.0);
  EXPECT_DOUBLE_EQ(acc.min, -1.0);
  EXPECT_DOUBLE_EQ(acc.max, 4.0);
}

TEST(AccumulatorTest, FinalizePerKind) {
  Accumulator acc;
  acc.Add(2.0);
  acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kCount), 2.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kSum), 6.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kAvg), 3.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kMin), 2.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kMax), 4.0);
}

TEST(AccumulatorTest, EmptyFinalizeSemantics) {
  const Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kCount), 0.0);
  EXPECT_DOUBLE_EQ(acc.Finalize(AggregateKind::kSum), 0.0);
  EXPECT_TRUE(std::isnan(acc.Finalize(AggregateKind::kAvg)));
  EXPECT_TRUE(std::isnan(acc.Finalize(AggregateKind::kMin)));
  EXPECT_TRUE(std::isnan(acc.Finalize(AggregateKind::kMax)));
}

TEST(AccumulatorTest, AddBulkMatchesRepeatedAddForCountSumAvg) {
  Accumulator bulk;
  bulk.AddBulk(3, 9.0);
  Accumulator stream;
  stream.Add(2.0);
  stream.Add(3.0);
  stream.Add(4.0);
  EXPECT_EQ(bulk.count, stream.count);
  EXPECT_DOUBLE_EQ(bulk.sum, stream.sum);
  EXPECT_DOUBLE_EQ(bulk.Finalize(AggregateKind::kAvg),
                   stream.Finalize(AggregateKind::kAvg));
}

TEST(AccumulatorTest, MergeCombines) {
  Accumulator a;
  a.Add(1.0);
  a.Add(5.0);
  Accumulator b;
  b.Add(-2.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 4.0);
  EXPECT_DOUBLE_EQ(a.min, -2.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
}

TEST(AccumulatorTest, MergeMinMaxOnly) {
  Accumulator acc;
  acc.Add(3.0);
  acc.MergeMinMax(-7.0, 10.0);
  EXPECT_DOUBLE_EQ(acc.min, -7.0);
  EXPECT_DOUBLE_EQ(acc.max, 10.0);
  EXPECT_EQ(acc.count, 1u);  // untouched
}

TEST(AggregateSpecTest, Factories) {
  EXPECT_EQ(AggregateSpec::Count().kind, AggregateKind::kCount);
  EXPECT_FALSE(AggregateSpec::Count().NeedsAttribute());
  const AggregateSpec avg = AggregateSpec::Avg("fare");
  EXPECT_EQ(avg.kind, AggregateKind::kAvg);
  EXPECT_EQ(avg.attribute, "fare");
  EXPECT_TRUE(avg.NeedsAttribute());
  EXPECT_EQ(AggregateSpec::Sum("a").kind, AggregateKind::kSum);
  EXPECT_EQ(AggregateSpec::Min("a").kind, AggregateKind::kMin);
  EXPECT_EQ(AggregateSpec::Max("a").kind, AggregateKind::kMax);
}

TEST(AggregateKindToStringTest, Names) {
  EXPECT_STREQ(AggregateKindToString(AggregateKind::kCount), "COUNT");
  EXPECT_STREQ(AggregateKindToString(AggregateKind::kAvg), "AVG");
}

}  // namespace
}  // namespace urbane::core
