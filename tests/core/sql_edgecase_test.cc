// Adversarial / malformed SQL corpus: every input here must come back as a
// clean Status error from ParseQuerySql — no crash, no UB (the suite is run
// under ASan/UBSan and TSan via tools/check.sh). A companion test feeds
// hostile-but-tolerated inputs (the dialect has no string literals, so
// quotes lex as plain symbols; identifiers may be arbitrarily long) where
// the only requirement is "returns, doesn't die".
#include "core/sql.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace urbane::core {
namespace {

struct BadCase {
  const char* label;
  std::string sql;
};

std::vector<BadCase> MalformedCorpus() {
  const std::string q =
      "SELECT COUNT(*) FROM taxi, nbhd WHERE ";  // valid prefix for reuse
  std::vector<BadCase> cases = {
      // --- truncations at every production ---
      {"empty", ""},
      {"whitespace_only", " \t\n\r "},
      {"keyword_only", "SELECT"},
      {"agg_name_only", "SELECT COUNT"},
      {"agg_open_paren", "SELECT COUNT("},
      {"agg_star_unclosed", "SELECT COUNT(*"},
      {"missing_from", "SELECT COUNT(*)"},
      {"from_without_tables", "SELECT COUNT(*) FROM"},
      {"one_from_item", "SELECT COUNT(*) FROM taxi"},
      {"dangling_comma", "SELECT COUNT(*) FROM taxi,"},
      {"empty_where", "SELECT COUNT(*) FROM taxi, nbhd WHERE"},
      {"bare_condition_ident", q + "t"},
      {"in_without_bracket", q + "t IN"},
      {"in_open_bracket", q + "t IN ["},
      {"in_one_number", q + "t IN [0"},
      {"in_number_comma", q + "t IN [0,"},
      {"in_unclosed_range", q + "t IN [0, 10"},
      {"between_nothing", q + "v BETWEEN"},
      {"between_one_bound", q + "v BETWEEN 1"},
      {"between_missing_hi", q + "v BETWEEN 1 AND"},
      {"trailing_and", q + "v = 1 AND"},
      {"group_without_by", "SELECT COUNT(*) FROM a, b GROUP"},
      {"group_by_empty", "SELECT COUNT(*) FROM a, b GROUP BY"},

      // --- aggregate clause abuse ---
      {"unknown_aggregate", "SELECT MEDIAN(v) FROM a, b"},
      {"paren_as_aggregate", "SELECT (v) FROM a, b"},
      {"count_missing_parens", "SELECT COUNT * FROM a, b"},
      {"count_star_no_close", "SELECT COUNT(* FROM a, b"},
      {"sum_of_star", "SELECT SUM(*) FROM a, b"},
      {"sum_empty_args", "SELECT SUM() FROM a, b"},
      {"count_empty_args", "SELECT COUNT() FROM a, b"},
      {"nested_parens", "SELECT COUNT((v)) FROM a, b"},
      {"avg_unclosed", "SELECT AVG(v FROM a, b"},
      {"huge_aggregate_name",
       "SELECT " + std::string(10'000, 'Z') + "(v) FROM a, b"},

      // --- FROM clause abuse ---
      {"numeric_points_set", "SELECT COUNT(*) FROM 123, nbhd"},
      {"numeric_regions_set", "SELECT COUNT(*) FROM taxi, 42"},
      {"missing_comma", "SELECT COUNT(*) FROM taxi nbhd"},
      {"double_comma", "SELECT COUNT(*) FROM taxi,, nbhd"},
      {"star_as_table", "SELECT COUNT(*) FROM *, nbhd"},

      // --- trailing garbage / injection shapes ---
      {"trailing_ident", "SELECT COUNT(*) FROM a, b extra"},
      {"stacked_statement", "SELECT COUNT(*) FROM a, b; DROP TABLE a"},
      {"trailing_group_key", "SELECT COUNT(*) FROM a, b GROUP BY id id"},
      {"group_by_wrong_key", "SELECT COUNT(*) FROM a, b GROUP BY fare"},
      {"group_then_where", "SELECT COUNT(*) FROM a, b GROUP WHERE"},

      // --- quotes: the dialect has no string literals ---
      {"quoted_table", "SELECT COUNT(*) FROM 'taxi', nbhd"},
      {"quoted_aggregate", "SELECT \"COUNT\"(*) FROM a, b"},
      {"unterminated_literal", q + "v = 'unterminated"},
      {"backtick_ident", "SELECT COUNT(*) FROM `taxi`, nbhd"},

      // --- numbers that must not slip through ---
      {"overflow_exponent", q + "v = 1e999999"},
      {"overflow_in_range", q + "v IN [1e999999, 2]"},
      {"exponent_no_digits", q + "v = 1e"},
      {"double_dot_number", q + "v = 1.2.3"},
      {"double_minus", q + "v = --5"},
      {"comparison_no_rhs", q + "v >= abc"},
      {"double_equals", q + "v == 5"},
      {"angle_pair", q + "v <> 5"},

      // --- range bracket abuse ---
      {"half_open_attribute", q + "v IN [1, 2)"},
      {"range_without_brackets", q + "v IN 1, 2]"},
      {"nested_brackets", q + "v IN [[[[1, 2]]]]"},
      {"time_comparison", q + "t < 5"},

      // --- spatial predicate abuse ---
      {"loc_alone", q + "loc"},
      {"inside_nothing", q + "loc INSIDE"},
      {"inside_unknown_target", q + "loc INSIDE sphere"},
      {"box_without_bracket", q + "loc INSIDE BOX"},
      {"box_unclosed", q + "loc INSIDE BOX [1, 2, 3, 4"},
      {"box_three_coords", q + "loc INSIDE BOX [1, 2, 3]"},
      {"box_parens", q + "loc INSIDE BOX (1, 2, 3, 4)"},

      // --- conjunction abuse ---
      {"and_as_condition", q + "AND v = 1"},
      {"double_and", q + "v = 1 AND AND v = 2"},

      // --- hostile bytes (the lexer casts through unsigned char, so high
      // bytes are defined behavior and lex as one-char symbols) ---
      {"high_bytes_in_where", q + "\xFF\xFE v = 1"},
      {"utf8_ellipsis_table", "SELECT COUNT(*) FROM \xE2\x80\xA6, nbhd"},
      {"control_chars", std::string("SELECT \x01\x02 COUNT(*) FROM a, b")},
  };
  // Embedded NUL (cannot be written as a C literal suffix).
  std::string nul = "SELECT ";
  nul.push_back('\0');
  nul += "COUNT(*) FROM a, b";
  cases.push_back({"embedded_nul", nul});
  return cases;
}

TEST(SqlEdgeCaseTest, EveryMalformedInputIsACleanError) {
  const std::vector<BadCase> corpus = MalformedCorpus();
  ASSERT_GE(corpus.size(), 60u);
  for (const BadCase& bad : corpus) {
    const auto parsed = ParseQuerySql(bad.sql);
    EXPECT_FALSE(parsed.ok()) << bad.label << ": " << bad.sql;
    if (!parsed.ok()) {
      // Errors are InvalidArgument with the parser's prefix (including the
      // byte offset of the offending token), never an internal/unknown
      // failure.
      EXPECT_NE(parsed.status().ToString().find("SQL parse error at byte "),
                std::string::npos)
          << bad.label << ": " << parsed.status().ToString();
    }
  }
}

TEST(SqlEdgeCaseTest, ParseErrorsPointAtTheOffendingToken) {
  // The reported byte offset is the index of the offending token's first
  // character in the original string, so a client can underline it.
  struct OffsetCase {
    const char* label;
    std::string sql;
    std::string offending;  // first occurrence locates the expected offset
  };
  const OffsetCase cases[] = {
      {"missing_comma", "SELECT COUNT(*) FROM taxi nbhd", "nbhd"},
      {"unknown_aggregate", "SELECT MEDIAN(v) FROM a, b", "MEDIAN"},
      {"trailing_ident", "SELECT COUNT(*) FROM a, b extra", "extra"},
      {"group_by_wrong_key", "SELECT COUNT(*) FROM a, b GROUP BY fare",
       "fare"},
      {"stacked_statement", "SELECT COUNT(*) FROM a, b; DROP TABLE a", ";"},
      {"double_equals",
       "SELECT COUNT(*) FROM taxi, nbhd WHERE v == 5", "= 5"},
  };
  for (const OffsetCase& c : cases) {
    const auto parsed = ParseQuerySql(c.sql);
    ASSERT_FALSE(parsed.ok()) << c.label;
    const std::string expected =
        "at byte " + std::to_string(c.sql.find(c.offending));
    EXPECT_NE(parsed.status().message().find(expected), std::string::npos)
        << c.label << ": " << parsed.status().ToString()
        << " (expected '" << expected << "')";
  }
  // Truncated input: the offending token is end-of-input, reported at the
  // byte just past the string.
  const std::string truncated = "SELECT COUNT(*) FROM";
  const auto parsed = ParseQuerySql(truncated);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find(
                "at byte " + std::to_string(truncated.size())),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SqlEdgeCaseTest, HostileButTolerated) {
  // These inputs are ugly but legal in the dialect: the parser must return
  // *something* without crashing; whether it accepts them is part of the
  // documented semantics, asserted here so it can't drift silently.
  const std::string long_ident(10'000, 'a');
  struct Tolerated {
    const char* label;
    std::string sql;
    bool expect_ok;
  };
  const Tolerated cases[] = {
      {"long_table_name",
       "SELECT COUNT(*) FROM " + long_ident + ", nbhd", true},
      {"reversed_attribute_range",
       "SELECT COUNT(*) FROM a, b WHERE v IN [5, 1]", true},
      {"reversed_time_range",
       "SELECT COUNT(*) FROM a, b WHERE t IN [100, 0)", true},
      {"huge_but_finite_number",
       "SELECT COUNT(*) FROM a, b WHERE t IN [999999999999999999999999, "
       "1e300)",
       true},
      {"dotted_table_names",
       "SELECT COUNT(*) FROM P.loc, R.geometry", true},
      {"mixed_case_keywords",
       "sElEcT cOuNt(*) fRoM a, b wHeRe V = 1 gRoUp By Id", true},
      {"count_of_attribute", "SELECT COUNT(fare) FROM a, b", true},
      {"explicit_spatial_predicate",
       "SELECT COUNT(*) FROM a, b WHERE P.loc INSIDE R.geometry", true},
  };
  for (const Tolerated& t : cases) {
    const auto parsed = ParseQuerySql(t.sql);
    EXPECT_EQ(parsed.ok(), t.expect_ok)
        << t.label << ": "
        << (parsed.ok() ? "ok" : parsed.status().ToString());
  }
}

TEST(SqlEdgeCaseTest, ManyConjunctsParseWithoutRecursionBlowup) {
  // The condition list is parsed iteratively; 200 conjuncts must neither
  // crash nor overflow the stack.
  std::string sql = "SELECT COUNT(*) FROM a, b WHERE v = 0";
  for (int i = 1; i <= 200; ++i) {
    sql += " AND v = " + std::to_string(i);
  }
  EXPECT_TRUE(ParseQuerySql(sql).ok());
  sql += " AND";  // now truncated mid-conjunction
  EXPECT_FALSE(ParseQuerySql(sql).ok());
}

TEST(SqlEdgeCaseTest, EveryPrefixTruncationReturnsCleanly) {
  // Chop a fully-featured statement at every byte boundary: each prefix
  // must produce a Status (ok for the few prefixes that happen to be
  // complete statements) without reading past the buffer.
  const std::string full =
      "SELECT AVG(P.fare) FROM taxi, nbhd WHERE P.loc INSIDE R.geometry "
      "AND t IN [100, 200) AND fare BETWEEN 2.5 AND 50 AND tip >= 0 "
      "GROUP BY R.id";
  for (std::size_t len = 0; len <= full.size(); ++len) {
    const auto parsed = ParseQuerySql(full.substr(0, len));
    // Reaching here without a sanitizer report is the assertion; also check
    // the result is a genuine Status, not garbage.
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().ToString().empty()) << "len=" << len;
    }
  }
  EXPECT_TRUE(ParseQuerySql(full).ok());
}

}  // namespace
}  // namespace urbane::core
