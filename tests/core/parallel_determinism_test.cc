// Parallel execution must not change answers: for every executor and every
// aggregate, running with an ExecutionContext of N threads must reproduce
// the serial result — counts and integer aggregates bit-identical, float
// SUM/AVG within 1e-6-relative (only the summation order moves), MIN/MAX
// exact. Results must also be reproducible run-to-run at a fixed thread
// count (partitioning is by thread count, not by scheduling).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/accurate_join.h"
#include "core/index_join.h"
#include "core/raster_join.h"
#include "core/scan_join.h"
#include "core/spatial_aggregation.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::core {
namespace {

enum class ExecKind { kScan, kIndex, kBounded, kAccurate };

const char* ExecKindName(ExecKind kind) {
  switch (kind) {
    case ExecKind::kScan:
      return "scan";
    case ExecKind::kIndex:
      return "index";
    case ExecKind::kBounded:
      return "bounded";
    case ExecKind::kAccurate:
      return "accurate";
  }
  return "unknown";
}

struct DetConfig {
  ExecKind exec;
  AggregateKind kind;

  friend std::ostream& operator<<(std::ostream& os, const DetConfig& c) {
    return os << ExecKindName(c.exec) << "_"
              << AggregateKindToString(c.kind);
  }
};

StatusOr<QueryResult> RunWith(ExecKind kind, const data::PointTable& points,
                              const data::RegionSet& regions,
                              const AggregationQuery& query,
                              const ExecutionContext& exec) {
  switch (kind) {
    case ExecKind::kScan: {
      URBANE_ASSIGN_OR_RETURN(auto join,
                              ScanJoin::Create(points, regions, exec));
      return join->Execute(query);
    }
    case ExecKind::kIndex: {
      IndexJoinOptions options;
      options.exec = exec;
      URBANE_ASSIGN_OR_RETURN(auto join,
                              IndexJoin::Create(points, regions, options));
      return join->Execute(query);
    }
    case ExecKind::kBounded: {
      RasterJoinOptions options;
      options.resolution = 128;
      options.exec = exec;
      URBANE_ASSIGN_OR_RETURN(
          auto join, BoundedRasterJoin::Create(points, regions, options));
      return join->Execute(query);
    }
    case ExecKind::kAccurate: {
      RasterJoinOptions options;
      options.resolution = 128;
      options.exec = exec;
      URBANE_ASSIGN_OR_RETURN(
          auto join, AccurateRasterJoin::Create(points, regions, options));
      return join->Execute(query);
    }
  }
  return Status::InvalidArgument("unknown executor kind");
}

class ParallelDeterminismTest : public ::testing::TestWithParam<DetConfig> {};

TEST_P(ParallelDeterminismTest, ParallelMatchesSerial) {
  const DetConfig& config = GetParam();
  const auto points = testing::MakeUniformPoints(8000, 4242);
  const data::RegionSet regions = testing::MakeRandomRegions(8, 0xD15EA5E);

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate.kind = config.kind;
  if (query.aggregate.NeedsAttribute()) {
    query.aggregate.attribute = "v";
  }
  // Non-trivial filter so the parallel filter path is exercised too.
  query.filter.WithTime(10000, 80000).WithRange("v", -9.0, 8.0);

  const auto serial =
      RunWith(config.exec, points, regions, query, ExecutionContext());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (const std::size_t threads : {1, 2, 4, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    ExecutionContext exec;
    exec.pool = &pool;
    exec.num_threads = threads;
    exec.min_parallel_points = 1;  // the test world is small on purpose

    const auto parallel =
        RunWith(config.exec, points, regions, query, exec);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->counts.size(), serial->counts.size());

    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_EQ(parallel->counts[r], serial->counts[r])
          << "count, region " << r;
      if (serial->counts[r] == 0) {
        continue;  // AVG/MIN/MAX finalize to NaN on empty groups
      }
      if (config.kind == AggregateKind::kCount ||
          config.kind == AggregateKind::kMin ||
          config.kind == AggregateKind::kMax) {
        // Order-independent aggregates must be bit-identical.
        EXPECT_EQ(parallel->values[r], serial->values[r])
            << "value, region " << r;
      } else {
        const double tol =
            1e-6 * std::max(1.0, std::fabs(serial->values[r]));
        EXPECT_NEAR(parallel->values[r], serial->values[r], tol)
            << "value, region " << r;
      }
      if (r < serial->error_bounds.size() &&
          r < parallel->error_bounds.size()) {
        const double tol =
            1e-6 * std::max(1.0, std::fabs(serial->error_bounds[r]));
        EXPECT_NEAR(parallel->error_bounds[r], serial->error_bounds[r], tol)
            << "error bound, region " << r;
      }
    }

    // Reproducibility at a fixed thread count: partitioning depends only
    // on num_threads, so a second run is bit-identical — floats included.
    const auto again = RunWith(config.exec, points, regions, query, exec);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_EQ(again->counts[r], parallel->counts[r]);
      if (parallel->counts[r] == 0) continue;
      EXPECT_EQ(again->values[r], parallel->values[r])
          << "rerun value, region " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelDeterminismTest,
    ::testing::Values(
        DetConfig{ExecKind::kScan, AggregateKind::kCount},
        DetConfig{ExecKind::kScan, AggregateKind::kSum},
        DetConfig{ExecKind::kScan, AggregateKind::kAvg},
        DetConfig{ExecKind::kScan, AggregateKind::kMin},
        DetConfig{ExecKind::kScan, AggregateKind::kMax},
        DetConfig{ExecKind::kIndex, AggregateKind::kCount},
        DetConfig{ExecKind::kIndex, AggregateKind::kSum},
        DetConfig{ExecKind::kIndex, AggregateKind::kAvg},
        DetConfig{ExecKind::kIndex, AggregateKind::kMin},
        DetConfig{ExecKind::kIndex, AggregateKind::kMax},
        DetConfig{ExecKind::kBounded, AggregateKind::kCount},
        DetConfig{ExecKind::kBounded, AggregateKind::kSum},
        DetConfig{ExecKind::kBounded, AggregateKind::kAvg},
        DetConfig{ExecKind::kBounded, AggregateKind::kMin},
        DetConfig{ExecKind::kBounded, AggregateKind::kMax},
        DetConfig{ExecKind::kAccurate, AggregateKind::kCount},
        DetConfig{ExecKind::kAccurate, AggregateKind::kSum},
        DetConfig{ExecKind::kAccurate, AggregateKind::kAvg},
        DetConfig{ExecKind::kAccurate, AggregateKind::kMin},
        DetConfig{ExecKind::kAccurate, AggregateKind::kMax}),
    [](const ::testing::TestParamInfo<DetConfig>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// The shared-splat batch path partitions both the splats and the region
// sweep; it must reproduce the serial batch per query.
TEST(ParallelBatchDeterminismTest, ExecuteBatchMatchesSerial) {
  const auto points = testing::MakeUniformPoints(6000, 777);
  const data::RegionSet regions = testing::MakeRandomRegions(6, 0xFACADE);

  std::vector<AggregationQuery> queries(3);
  for (AggregationQuery& query : queries) {
    query.points = &points;
    query.regions = &regions;
    query.filter.WithTime(5000, 80000);
  }
  queries[0].aggregate.kind = AggregateKind::kCount;
  queries[1].aggregate.kind = AggregateKind::kSum;
  queries[1].aggregate.attribute = "v";
  queries[2].aggregate.kind = AggregateKind::kAvg;
  queries[2].aggregate.attribute = "v";

  RasterJoinOptions serial_options;
  serial_options.resolution = 128;
  auto serial_join =
      BoundedRasterJoin::Create(points, regions, serial_options);
  ASSERT_TRUE(serial_join.ok());
  const auto serial = (*serial_join)->ExecuteBatch(queries);
  ASSERT_TRUE(serial.ok());

  for (const std::size_t threads : {2, 4}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    RasterJoinOptions options = serial_options;
    options.exec.pool = &pool;
    options.exec.num_threads = threads;
    options.exec.min_parallel_points = 1;
    auto join = BoundedRasterJoin::Create(points, regions, options);
    ASSERT_TRUE(join.ok());
    const auto parallel = (*join)->ExecuteBatch(queries);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), serial->size());
    for (std::size_t q = 0; q < serial->size(); ++q) {
      for (std::size_t r = 0; r < regions.size(); ++r) {
        EXPECT_EQ((*parallel)[q].counts[r], (*serial)[q].counts[r])
            << "query " << q << ", region " << r;
        if ((*serial)[q].counts[r] == 0) continue;
        const double tol =
            1e-6 * std::max(1.0, std::fabs((*serial)[q].values[r]));
        EXPECT_NEAR((*parallel)[q].values[r], (*serial)[q].values[r], tol)
            << "query " << q << ", region " << r;
      }
    }
  }
}

// The facade-level context must flow into every executor it builds,
// including the ExecuteMany shared-filter batch route.
TEST(ParallelBatchDeterminismTest, FacadeExecuteManyMatchesSerial) {
  const auto points = testing::MakeUniformPoints(6000, 888);
  const data::RegionSet regions = testing::MakeRandomRegions(6, 0xC0FFEE);

  std::vector<AggregationQuery> queries(2);
  queries[0].aggregate.kind = AggregateKind::kCount;
  queries[1].aggregate.kind = AggregateKind::kSum;
  queries[1].aggregate.attribute = "v";

  SpatialAggregation serial_engine(points, regions);
  const auto serial =
      serial_engine.ExecuteMany(queries, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(4);
  ExecutionContext exec;
  exec.pool = &pool;
  exec.num_threads = 4;
  exec.min_parallel_points = 1;
  SpatialAggregation engine(points, regions, RasterJoinOptions(),
                            IndexJoinOptions(), exec);
  const auto parallel =
      engine.ExecuteMany(queries, ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(parallel->size(), serial->size());
  for (std::size_t q = 0; q < serial->size(); ++q) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_EQ((*parallel)[q].counts[r], (*serial)[q].counts[r]);
      if ((*serial)[q].counts[r] == 0) continue;
      const double tol =
          1e-6 * std::max(1.0, std::fabs((*serial)[q].values[r]));
      EXPECT_NEAR((*parallel)[q].values[r], (*serial)[q].values[r], tol);
    }
  }
  // Executors must report the thread count they ran with.
  auto executor = engine.Executor(ExecutionMethod::kBoundedRaster);
  ASSERT_TRUE(executor.ok());
  EXPECT_EQ((*executor)->stats().threads_used, 4u);
}

}  // namespace
}  // namespace urbane::core
