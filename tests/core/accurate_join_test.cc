#include "core/accurate_join.h"

#include <gtest/gtest.h>

#include "core/scan_join.h"
#include "data/region_generator.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

TEST(AccurateRasterJoinTest, ExactCountsMatchScan) {
  const auto points = testing::MakeUniformPoints(20000, 51);
  const auto regions = testing::MakeRandomRegions(8, 52);
  RasterJoinOptions options;
  options.resolution = 128;  // coarse canvas: lots of boundary work, still exact
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(accurate.ok());
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto a = (*accurate)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(a->counts[r], b->counts[r]) << "region " << r;
    EXPECT_DOUBLE_EQ(a->values[r], b->values[r]) << "region " << r;
  }
}

TEST(AccurateRasterJoinTest, ExactAcrossResolutions) {
  const auto points = testing::MakeUniformPoints(8000, 53);
  const auto regions = testing::MakeRandomRegions(4, 54);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto exact = (*scan)->Execute(query);
  ASSERT_TRUE(exact.ok());
  for (const int resolution : {32, 64, 256, 1024}) {
    RasterJoinOptions options;
    options.resolution = resolution;
    auto accurate = AccurateRasterJoin::Create(points, regions, options);
    ASSERT_TRUE(accurate.ok());
    const auto result = (*accurate)->Execute(query);
    ASSERT_TRUE(result.ok());
    for (std::size_t r = 0; r < regions.size(); ++r) {
      EXPECT_EQ(result->counts[r], exact->counts[r])
          << "resolution " << resolution << " region " << r;
    }
  }
}

TEST(AccurateRasterJoinTest, ExactWithHolesAndFilters) {
  const auto points = testing::MakeUniformPoints(10000, 55);
  data::TessellationOptions topts;
  topts.cells_x = 4;
  topts.cells_y = 4;
  topts.bounds = geometry::BoundingBox(0, 0, 100.0, 100.0);
  topts.hole_probability = 0.5;
  const auto regions = data::GenerateTessellation(topts);
  RasterJoinOptions options;
  options.resolution = 200;
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(accurate.ok());
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Avg("v");
  query.filter.WithTime(10000, 70000).WithRange("v", -8.0, 8.0);
  const auto a = (*accurate)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(a->counts[r], b->counts[r]) << "region " << r;
    if (a->counts[r] > 0) {
      EXPECT_NEAR(a->values[r], b->values[r], 1e-9) << "region " << r;
    }
  }
}

TEST(AccurateRasterJoinTest, MinMaxExact) {
  const auto points = testing::MakeUniformPoints(5000, 56);
  const auto regions = testing::MakeRandomRegions(4, 57);
  RasterJoinOptions options;
  options.resolution = 96;
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(accurate.ok());
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  for (const auto& spec :
       {AggregateSpec::Min("v"), AggregateSpec::Max("v")}) {
    query.aggregate = spec;
    const auto a = (*accurate)->Execute(query);
    const auto b = (*scan)->Execute(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (b->counts[r] > 0) {
        EXPECT_FLOAT_EQ(static_cast<float>(a->values[r]),
                        static_cast<float>(b->values[r]))
            << "region " << r;
      }
    }
  }
}

TEST(AccurateRasterJoinTest, TessellationCountsSumToTotal) {
  // A partition of the world must account for every point exactly once.
  const auto points = testing::MakeUniformPoints(30000, 58);
  const auto regions = testing::MakeTessellationRegions(6, 59);
  RasterJoinOptions options;
  options.resolution = 256;
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(accurate.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  const auto result = (*accurate)->Execute(query);
  ASSERT_TRUE(result.ok());
  std::uint64_t total = 0;
  for (const auto count : result->counts) {
    total += count;
  }
  EXPECT_EQ(total, points.size());
}

TEST(AccurateRasterJoinTest, SpatialWindowFilterExact) {
  const auto points = testing::MakeUniformPoints(8000, 64);
  const auto regions = testing::MakeRandomRegions(4, 65);
  RasterJoinOptions options;
  options.resolution = 128;
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(accurate.ok());
  ASSERT_TRUE(scan.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithWindow(geometry::BoundingBox(15, 25, 85, 95));
  const auto a = (*accurate)->Execute(query);
  const auto b = (*scan)->Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->counts, b->counts);
}

TEST(AccurateRasterJoinTest, StatsShowHybridSplit) {
  const auto points = testing::MakeUniformPoints(10000, 60);
  const auto regions = testing::MakeRandomRegions(4, 61);
  RasterJoinOptions options;
  options.resolution = 256;
  auto accurate = AccurateRasterJoin::Create(points, regions, options);
  ASSERT_TRUE(accurate.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  ASSERT_TRUE((*accurate)->Execute(query).ok());
  const ExecutorStats& stats = (*accurate)->stats();
  EXPECT_GT(stats.points_bulk, 0u) << "interior pixels should be bulk-taken";
  EXPECT_GT(stats.pip_tests, 0u) << "boundary pixels need exact tests";
  EXPECT_GT(stats.boundary_pixels, 0u);
  EXPECT_EQ((*accurate)->name(), "accurate");
  EXPECT_TRUE((*accurate)->exact());
  EXPECT_GT((*accurate)->MemoryBytes(), 0u);
}

TEST(AccurateRasterJoinTest, HigherResolutionNeedsFewerExactTests) {
  const auto points = testing::MakeUniformPoints(20000, 62);
  const auto regions = testing::MakeRandomRegions(4, 63);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  std::size_t coarse_tests = 0;
  std::size_t fine_tests = 0;
  for (const int resolution : {64, 512}) {
    RasterJoinOptions options;
    options.resolution = resolution;
    auto accurate = AccurateRasterJoin::Create(points, regions, options);
    ASSERT_TRUE(accurate.ok());
    ASSERT_TRUE((*accurate)->Execute(query).ok());
    (resolution == 64 ? coarse_tests : fine_tests) =
        (*accurate)->stats().pip_tests;
  }
  EXPECT_LT(fine_tests, coarse_tests);
}

}  // namespace
}  // namespace urbane::core
