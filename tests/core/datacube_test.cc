#include "core/datacube.h"

#include <gtest/gtest.h>

#include "core/scan_join.h"
#include "testing/test_worlds.h"

namespace urbane::core {
namespace {

DataCubeOptions FareOptions() {
  DataCubeOptions options;
  options.attribute = "v";
  options.time_bins = 16;
  options.attribute_bins = 8;
  return options;
}

TEST(PreAggregatedCubeTest, RejectsBadOptions) {
  const auto points = testing::MakeUniformPoints(100, 1);
  const auto regions = testing::MakeRandomRegions(2, 1);
  DataCubeOptions bad = FareOptions();
  bad.time_bins = 0;
  EXPECT_FALSE(PreAggregatedCube::Build(points, regions, bad).ok());
  bad = FareOptions();
  bad.attribute = "missing";
  EXPECT_FALSE(PreAggregatedCube::Build(points, regions, bad).ok());
}

TEST(PreAggregatedCubeTest, UnfilteredCountMatchesScan) {
  const auto points = testing::MakeUniformPoints(5000, 2);
  const auto regions = testing::MakeRandomRegions(4, 3);
  auto cube = PreAggregatedCube::Build(points, regions, FareOptions());
  ASSERT_TRUE(cube.ok());
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  EXPECT_TRUE((*cube)->CanServe(query).ok());
  const auto cube_result = (*cube)->Query(query);
  const auto scan_result = (*scan)->Execute(query);
  ASSERT_TRUE(cube_result.ok());
  ASSERT_TRUE(scan_result.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(cube_result->counts[r], scan_result->counts[r]);
  }
}

TEST(PreAggregatedCubeTest, BinAlignedTimeWindowExact) {
  const auto points = testing::MakeUniformPoints(8000, 4);
  const auto regions = testing::MakeTessellationRegions(3, 5);
  auto cube = PreAggregatedCube::Build(points, regions, FareOptions());
  ASSERT_TRUE(cube.ok());
  auto scan = ScanJoin::Create(points, regions);
  ASSERT_TRUE(scan.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.filter.WithTime((*cube)->TimeBinStart(4), (*cube)->TimeBinStart(12));
  ASSERT_TRUE((*cube)->CanServe(query).ok())
      << (*cube)->CanServe(query).ToString();
  const auto cube_result = (*cube)->Query(query);
  const auto scan_result = (*scan)->Execute(query);
  ASSERT_TRUE(cube_result.ok());
  ASSERT_TRUE(scan_result.ok());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    EXPECT_EQ(cube_result->counts[r], scan_result->counts[r]) << r;
  }
}

TEST(PreAggregatedCubeTest, RefusesAdHocConstraints) {
  const auto points = testing::MakeUniformPoints(1000, 6);
  const auto regions = testing::MakeRandomRegions(2, 7);
  auto cube = PreAggregatedCube::Build(points, regions, FareOptions());
  ASSERT_TRUE(cube.ok());

  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;

  // Non-aligned time range.
  query.filter = FilterSpec().WithTime((*cube)->TimeBinStart(2) + 123,
                                       (*cube)->TimeBinStart(9));
  EXPECT_FALSE((*cube)->CanServe(query).ok());

  // Different aggregate.
  query.filter = FilterSpec();
  query.aggregate = AggregateSpec::Avg("v");
  EXPECT_FALSE((*cube)->CanServe(query).ok());

  // Unanticipated attribute filter granularity.
  query.aggregate = AggregateSpec::Count();
  query.filter = FilterSpec().WithRange("v", -1.2345, 3.21);
  EXPECT_FALSE((*cube)->CanServe(query).ok());

  // Spatial window.
  query.filter = FilterSpec().WithWindow(geometry::BoundingBox(0, 0, 50, 50));
  EXPECT_FALSE((*cube)->CanServe(query).ok());

  // New region set (arbitrary polygons) -> rebuild required.
  const auto other_regions = testing::MakeRandomRegions(2, 8);
  query.filter = FilterSpec();
  query.regions = &other_regions;
  EXPECT_FALSE((*cube)->CanServe(query).ok());
}

TEST(PreAggregatedCubeTest, QueryOnUnservableFails) {
  const auto points = testing::MakeUniformPoints(500, 9);
  const auto regions = testing::MakeRandomRegions(2, 10);
  auto cube = PreAggregatedCube::Build(points, regions, FareOptions());
  ASSERT_TRUE(cube.ok());
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  query.aggregate = AggregateSpec::Sum("v");
  EXPECT_FALSE((*cube)->Query(query).ok());
}

TEST(PreAggregatedCubeTest, BuildCostAndMemoryReported) {
  const auto points = testing::MakeUniformPoints(2000, 11);
  const auto regions = testing::MakeRandomRegions(3, 12);
  auto cube = PreAggregatedCube::Build(points, regions, FareOptions());
  ASSERT_TRUE(cube.ok());
  EXPECT_GT((*cube)->build_seconds(), 0.0);
  EXPECT_EQ((*cube)->MemoryBytes(),
            3u * 16u * 8u * sizeof(std::uint64_t));
}

TEST(PreAggregatedCubeTest, CountWithoutAttributeDimension) {
  const auto points = testing::MakeUniformPoints(1000, 13);
  const auto regions = testing::MakeRandomRegions(2, 14);
  DataCubeOptions options;  // no attribute dimension
  options.time_bins = 8;
  auto cube = PreAggregatedCube::Build(points, regions, options);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ((*cube)->attribute_bins(), 1);
  AggregationQuery query;
  query.points = &points;
  query.regions = &regions;
  EXPECT_TRUE((*cube)->CanServe(query).ok());
  // Any attribute filter at all is unservable without the dimension.
  query.filter.WithRange("v", 0, 1);
  EXPECT_FALSE((*cube)->CanServe(query).ok());
}

}  // namespace
}  // namespace urbane::core
