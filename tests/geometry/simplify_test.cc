#include "geometry/simplify.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/segment.h"

namespace urbane::geometry {
namespace {

TEST(SimplifyPolylineTest, KeepsEndpoints) {
  const std::vector<Vec2> line = {{0, 0}, {1, 0.01}, {2, -0.01}, {3, 0}};
  const auto out = SimplifyPolyline(line, 0.1);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front(), line.front());
  EXPECT_EQ(out.back(), line.back());
}

TEST(SimplifyPolylineTest, CollinearCollapsesToEndpoints) {
  const std::vector<Vec2> line = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const auto out = SimplifyPolyline(line, 1e-9);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SimplifyPolylineTest, KeepsSignificantDeviations) {
  const std::vector<Vec2> line = {{0, 0}, {1, 5}, {2, 0}};
  const auto out = SimplifyPolyline(line, 0.5);
  EXPECT_EQ(out.size(), 3u);
}

TEST(SimplifyPolylineTest, ShortInputsUnchanged) {
  const std::vector<Vec2> two = {{0, 0}, {1, 1}};
  EXPECT_EQ(SimplifyPolyline(two, 10.0).size(), 2u);
  const std::vector<Vec2> one = {{0, 0}};
  EXPECT_EQ(SimplifyPolyline(one, 10.0).size(), 1u);
}

TEST(SimplifyPolylineTest, ErrorWithinTolerance) {
  // Noisy sine wave; every dropped vertex must be within tolerance of the
  // simplified chain.
  std::vector<Vec2> line;
  for (int i = 0; i <= 200; ++i) {
    const double x = i * 0.1;
    line.push_back({x, std::sin(x) + 0.01 * ((i % 3) - 1)});
  }
  const double tolerance = 0.05;
  const auto out = SimplifyPolyline(line, tolerance);
  ASSERT_GE(out.size(), 2u);
  EXPECT_LT(out.size(), line.size());
  for (const Vec2& p : line) {
    double best = 1e300;
    for (std::size_t k = 0; k + 1 < out.size(); ++k) {
      best = std::min(best,
                      DistancePointToSegment(p, Segment{out[k], out[k + 1]}));
    }
    EXPECT_LE(best, tolerance + 1e-9);
  }
}

TEST(SimplifyPolygonTest, ReducesVerticesKeepsShape) {
  // A circle with 256 vertices simplifies heavily at a coarse tolerance but
  // keeps most of its area.
  Ring circle;
  for (int i = 0; i < 256; ++i) {
    const double a = 2.0 * M_PI * i / 256;
    circle.push_back({10.0 * std::cos(a), 10.0 * std::sin(a)});
  }
  const Polygon original(circle);
  const Polygon simplified = SimplifyPolygon(original, 0.1);
  EXPECT_LT(simplified.outer().size(), circle.size() / 2);
  EXPECT_GE(simplified.outer().size(), 3u);
  EXPECT_NEAR(simplified.Area(), original.Area(), 0.05 * original.Area());
}

TEST(SimplifyPolygonTest, TinyRingsUntouched) {
  const Polygon triangle(Ring{{0, 0}, {5, 0}, {2, 4}});
  const Polygon out = SimplifyPolygon(triangle, 100.0);
  EXPECT_EQ(out.outer().size(), 3u);
}

TEST(SimplifyPolygonTest, HolesSimplifiedOrDropped) {
  Polygon p(Ring{{0, 0}, {20, 0}, {20, 20}, {0, 20}});
  Ring hole;
  for (int i = 0; i < 64; ++i) {
    const double a = 2.0 * M_PI * i / 64;
    hole.push_back({10 + 2.0 * std::cos(a), 10 + 2.0 * std::sin(a)});
  }
  p.add_hole(hole);
  p.Normalize();
  const Polygon out = SimplifyPolygon(p, 0.2);
  ASSERT_EQ(out.holes().size(), 1u);
  EXPECT_LT(out.holes()[0].size(), 64u);
}

}  // namespace
}  // namespace urbane::geometry
