// Degenerate / tie-breaking cases: points exactly on vertices and edges,
// horizontal edges on the scanline, collinear chains — the configurations
// where sloppy geometry kernels silently disagree with themselves.
#include <gtest/gtest.h>

#include "geometry/polygon.h"
#include "geometry/triangulate.h"
#include "raster/rasterizer.h"

namespace urbane::geometry {
namespace {

TEST(EdgeCasesTest, PointAtVertexIsInside) {
  const Ring square = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  for (const Vec2& v : square) {
    EXPECT_TRUE(RingContains(square, v)) << v;
    EXPECT_TRUE(RingContainsWinding(square, v)) << v;
  }
}

TEST(EdgeCasesTest, RayThroughVertexCountsOnce) {
  // Diamond: a ray through the apex vertex must not double-count.
  const Ring diamond = {{2, 0}, {4, 2}, {2, 4}, {0, 2}};
  EXPECT_TRUE(RingContains(diamond, {2, 2}));
  // Point left of the diamond at apex height: the upward ray from it passes
  // near vertices; must be outside.
  EXPECT_FALSE(RingContains(diamond, {-1, 2}));
  EXPECT_FALSE(RingContains(diamond, {5, 2}));
}

TEST(EdgeCasesTest, HorizontalEdgeOnQueryLine) {
  // Polygon with a horizontal top edge; points level with it.
  const Ring shape = {{0, 0}, {6, 0}, {6, 3}, {4, 3}, {4, 5}, {0, 5}};
  EXPECT_TRUE(RingContains(shape, {5, 3}));   // on the horizontal edge
  EXPECT_TRUE(RingContains(shape, {2, 3}));   // interior at same height
  EXPECT_FALSE(RingContains(shape, {7, 3}));  // outside to the right
}

TEST(EdgeCasesTest, CollinearChainOnBoundary) {
  const Ring with_collinear = {{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_TRUE(RingContains(with_collinear, {3, 0}));
  EXPECT_TRUE(Polygon(with_collinear).Contains({1, 0}));
  EXPECT_NEAR(Polygon(with_collinear).Area(), 16.0, 1e-12);
  const auto tris = TriangulateRing(with_collinear);
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), 16.0, 1e-12);
}

TEST(EdgeCasesTest, TouchingHoleBoundaryStaysInside) {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  p.Normalize();
  // All four hole corners are part of the polygon.
  EXPECT_TRUE(p.Contains({4, 4}));
  EXPECT_TRUE(p.Contains({6, 6}));
  // Just inside the hole is out.
  EXPECT_FALSE(p.Contains({5.0, 5.0}));
}

TEST(EdgeCasesTest, TinySliverPolygonStillMeasurable) {
  const Ring sliver = {{0, 0}, {100, 0}, {100, 1e-7}};
  const Polygon p(sliver);
  EXPECT_GT(p.Area(), 0.0);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(EdgeCasesTest, ScanlineAgreesWithOracleWhenEdgesHitPixelCenters) {
  // Rectangle whose edges pass EXACTLY through pixel-center rows/columns
  // (centers at .5 offsets on a unit grid). The fill and the PIP oracle use
  // the same crossing formula, so they must agree even on these ties.
  const raster::Viewport vp(BoundingBox(0, 0, 8, 8), 8, 8);
  const Ring rect = {{1.5, 1.5}, {5.5, 1.5}, {5.5, 5.5}, {1.5, 5.5}};
  const Polygon poly(rect);
  std::set<std::pair<int, int>> covered;
  raster::ScanlineFillPolygonPixels(
      vp, poly, [&](int x, int y) { covered.insert({x, y}); });
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const Vec2 center = vp.PixelCenter(x, y);
      // Compare against the *crossing-rule* membership, which is what the
      // canvas semantics define (half-open [edge, edge) ownership).
      bool crossing_inside = false;
      const std::size_t n = rect.size();
      for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
        const Vec2& a = rect[j];
        const Vec2& b = rect[i];
        if ((a.y > center.y) != (b.y > center.y)) {
          const double x_at =
              a.x + (b.x - a.x) * (center.y - a.y) / (b.y - a.y);
          if (center.x < x_at) crossing_inside = !crossing_inside;
        }
      }
      EXPECT_EQ(covered.count({x, y}) > 0, crossing_inside)
          << "tie mismatch at " << x << "," << y;
    }
  }
  // Half-open ownership: 4x4 block of pixels [2..5] x [2..5] ... the rect
  // spans centers x in {1.5..5.5}: included centers are 1.5 <= c < 5.5 ->
  // columns 1, 2, 3, 4 (centers 1.5, 2.5, 3.5, 4.5).
  EXPECT_EQ(covered.size(), 16u);
  EXPECT_TRUE(covered.count({1, 1}));
  EXPECT_FALSE(covered.count({5, 5}));
}

TEST(EdgeCasesTest, ZeroAreaRingNeverContains) {
  const Ring degenerate = {{0, 0}, {5, 5}, {10, 10}};
  EXPECT_FALSE(RingContains(degenerate, {20, 20}));
  // Points exactly ON the degenerate segment are boundary-inclusive.
  EXPECT_TRUE(RingContains(degenerate, {5, 5}));
}

TEST(EdgeCasesTest, DuplicateConsecutiveVerticesTolerated) {
  const Ring dup = {{0, 0}, {4, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_NEAR(RingSignedArea(dup), 16.0, 1e-12);
  EXPECT_TRUE(RingContains(dup, {2, 2}));
  const auto tris = TriangulateRing(dup);
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), 16.0, 1e-9);
}

}  // namespace
}  // namespace urbane::geometry
