#include "geometry/convex_hull.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace urbane::geometry {
namespace {

TEST(ConvexHullTest, SquareCorners) {
  const Ring hull = ConvexHull({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_TRUE(RingIsCounterClockwise(hull));
}

TEST(ConvexHullTest, CollinearPointsDropped) {
  const Ring hull = ConvexHull({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_EQ(hull.size(), 4u);  // (1,0) is interior to the bottom edge
}

TEST(ConvexHullTest, DegenerateInputs) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_EQ(ConvexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{0, 0}, {1, 1}}).size(), 2u);
  EXPECT_EQ(ConvexHull({{0, 0}, {1, 1}, {1, 1}}).size(), 2u);  // duplicates
}

TEST(ConvexHullTest, AllCollinearReturnsTwoEndpoints) {
  const Ring hull = ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, ContainsAllInputPoints) {
  Rng rng(31);
  std::vector<Vec2> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.NextGaussian(0, 5), rng.NextGaussian(0, 5)});
  }
  const Ring hull = ConvexHull(points);
  ASSERT_GE(hull.size(), 3u);
  for (const Vec2& p : points) {
    EXPECT_TRUE(RingContains(hull, p)) << p;
  }
}

TEST(ConvexHullTest, HullIsConvex) {
  Rng rng(77);
  std::vector<Vec2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.NextDouble(-3, 3), rng.NextDouble(-3, 3)});
  }
  const Ring hull = ConvexHull(points);
  const std::size_t n = hull.size();
  ASSERT_GE(n, 3u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(Orient2d(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]), 0.0);
  }
}

}  // namespace
}  // namespace urbane::geometry
