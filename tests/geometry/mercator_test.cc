#include "geometry/mercator.h"

#include <gtest/gtest.h>

namespace urbane::geometry {
namespace {

TEST(MercatorTest, OriginMapsToOrigin) {
  const Vec2 xy = LonLatToMercator({0.0, 0.0});
  EXPECT_NEAR(xy.x, 0.0, 1e-9);
  EXPECT_NEAR(xy.y, 0.0, 1e-9);
}

TEST(MercatorTest, RoundTripsLonLat) {
  const LonLat nyc{-73.9857, 40.7484};  // Empire State Building
  const LonLat back = MercatorToLonLat(LonLatToMercator(nyc));
  EXPECT_NEAR(back.lon, nyc.lon, 1e-9);
  EXPECT_NEAR(back.lat, nyc.lat, 1e-9);
}

TEST(MercatorTest, KnownProjectionValues) {
  // Web-Mercator x at lon=180 is pi * R.
  const Vec2 xy = LonLatToMercator({180.0, 0.0});
  EXPECT_NEAR(xy.x, M_PI * 6378137.0, 1.0);
}

TEST(MercatorTest, MonotoneInLatitude) {
  double prev = -1e300;
  for (double lat = -80; lat <= 80; lat += 5) {
    const double y = LonLatToMercator({0.0, lat}).y;
    EXPECT_GT(y, prev);
    prev = y;
  }
}

TEST(MercatorTest, ScaleFactorGrowsWithLatitude) {
  EXPECT_NEAR(MercatorScaleFactor(0.0), 1.0, 1e-12);
  EXPECT_GT(MercatorScaleFactor(60.0), MercatorScaleFactor(40.0));
  EXPECT_NEAR(MercatorScaleFactor(60.0), 2.0, 1e-9);
}

TEST(MercatorTest, ProjectBoundsOrientsCorrectly) {
  const BoundingBox box = ProjectBounds({-74.0, 40.0}, {-73.0, 41.0});
  EXPECT_LT(box.min_x, box.max_x);
  EXPECT_LT(box.min_y, box.max_y);
}

TEST(MercatorTest, NycBoundsPlausible) {
  const BoundingBox nyc = NycMercatorBounds();
  // NYC is roughly 45 km x 40 km; projected Mercator stretches by ~1/cos(40.7°).
  EXPECT_GT(nyc.Width(), 30000.0);
  EXPECT_LT(nyc.Width(), 90000.0);
  EXPECT_GT(nyc.Height(), 30000.0);
  EXPECT_LT(nyc.Height(), 90000.0);
  // Western hemisphere, northern latitude.
  EXPECT_LT(nyc.max_x, 0.0);
  EXPECT_GT(nyc.min_y, 0.0);
}

}  // namespace
}  // namespace urbane::geometry
