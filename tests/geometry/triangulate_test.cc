#include "geometry/triangulate.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace urbane::geometry {
namespace {

TEST(TriangulateRingTest, SquareYieldsTwoTriangles) {
  const auto tris = TriangulateRing({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  ASSERT_TRUE(tris.ok());
  EXPECT_EQ(tris->size(), 2u);
  EXPECT_NEAR(TotalArea(*tris), 1.0, 1e-12);
}

TEST(TriangulateRingTest, TriangleIsIdentity) {
  const auto tris = TriangulateRing({{0, 0}, {2, 0}, {1, 2}});
  ASSERT_TRUE(tris.ok());
  ASSERT_EQ(tris->size(), 1u);
  EXPECT_NEAR(TotalArea(*tris), 2.0, 1e-12);
}

TEST(TriangulateRingTest, RejectsDegenerate) {
  EXPECT_FALSE(TriangulateRing({{0, 0}, {1, 1}}).ok());
  EXPECT_FALSE(TriangulateRing({{0, 0}, {1, 1}, {2, 2}}).ok());
}

TEST(TriangulateRingTest, ClockwiseInputHandled) {
  const auto tris = TriangulateRing({{0, 1}, {1, 1}, {1, 0}, {0, 0}});
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), 1.0, 1e-12);
}

TEST(TriangulateRingTest, ConcavePolygonAreaPreserved) {
  const Ring u = {{0, 0}, {6, 0}, {6, 4}, {4, 4}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  const auto tris = TriangulateRing(u);
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), Polygon(u).Area(), 1e-9);
  // n-gon triangulates into n-2 triangles.
  EXPECT_EQ(tris->size(), u.size() - 2);
}

TEST(TriangulateRingTest, CollinearVerticesAreDropped) {
  const Ring with_collinear = {{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}};
  const auto tris = TriangulateRing(with_collinear);
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), 4.0, 1e-12);
}

TEST(TriangulatePolygonTest, HolePreservesArea) {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  p.Normalize();
  const auto tris = TriangulatePolygon(p);
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), 96.0, 1e-9);
}

TEST(TriangulatePolygonTest, TwoHoles) {
  Polygon p(Ring{{0, 0}, {12, 0}, {12, 8}, {0, 8}});
  p.add_hole(Ring{{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  p.add_hole(Ring{{8, 3}, {10, 3}, {10, 6}, {8, 6}});
  p.Normalize();
  const auto tris = TriangulatePolygon(p);
  ASSERT_TRUE(tris.ok());
  EXPECT_NEAR(TotalArea(*tris), 96.0 - 4.0 - 6.0, 1e-9);
}

TEST(TriangulatePolygonTest, TrianglePointsStayInsidePolygon) {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{3, 3}, {7, 3}, {7, 7}, {3, 7}});
  p.Normalize();
  const auto tris = TriangulatePolygon(p);
  ASSERT_TRUE(tris.ok());
  for (const Triangle& t : *tris) {
    const Vec2 centroid = (t.a + t.b + t.c) / 3.0;
    EXPECT_TRUE(p.Contains(centroid))
        << "triangle centroid " << centroid << " escaped the polygon";
  }
}

TEST(TriangulatePolygonTest, RandomStarPolygonsAreaProperty) {
  Rng rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    Ring ring;
    const int n = 5 + static_cast<int>(rng.NextUint64(40));
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n;
      const double radius = rng.NextDouble(1.0, 4.0);
      ring.push_back({radius * std::cos(angle), radius * std::sin(angle)});
    }
    const Polygon p(ring);
    const auto tris = TriangulatePolygon(p);
    ASSERT_TRUE(tris.ok()) << "trial " << trial;
    EXPECT_NEAR(TotalArea(*tris), p.Area(), 1e-6 * p.Area())
        << "trial " << trial << " n=" << n;
  }
}

TEST(TriangleTest, ContainsIsInclusive) {
  const Triangle t{{0, 0}, {4, 0}, {0, 4}};
  EXPECT_TRUE(t.Contains({1, 1}));
  EXPECT_TRUE(t.Contains({0, 0}));
  EXPECT_TRUE(t.Contains({2, 0}));
  EXPECT_FALSE(t.Contains({3, 3}));
}

}  // namespace
}  // namespace urbane::geometry
