#include "geometry/clip.h"

#include <gtest/gtest.h>

namespace urbane::geometry {
namespace {

TEST(ClipRingToBoxTest, FullyInsideUnchanged) {
  const Ring ring = {{1, 1}, {2, 1}, {2, 2}, {1, 2}};
  const Ring clipped = ClipRingToBox(ring, BoundingBox(0, 0, 10, 10));
  EXPECT_NEAR(RingSignedArea(clipped), RingSignedArea(ring), 1e-12);
}

TEST(ClipRingToBoxTest, FullyOutsideVanishes) {
  const Ring ring = {{20, 20}, {22, 20}, {22, 22}, {20, 22}};
  EXPECT_TRUE(ClipRingToBox(ring, BoundingBox(0, 0, 10, 10)).empty());
}

TEST(ClipRingToBoxTest, HalfOverlapHalvesArea) {
  const Ring ring = {{-5, 0}, {5, 0}, {5, 10}, {-5, 10}};
  const Ring clipped = ClipRingToBox(ring, BoundingBox(0, 0, 10, 10));
  EXPECT_NEAR(std::fabs(RingSignedArea(clipped)), 50.0, 1e-9);
}

TEST(ClipRingToBoxTest, NeverGrowsArea) {
  const Ring ring = {{-3, -3}, {13, -2}, {12, 14}, {-4, 12}};
  const BoundingBox box(0, 0, 10, 10);
  const Ring clipped = ClipRingToBox(ring, box);
  EXPECT_LE(std::fabs(RingSignedArea(clipped)),
            std::fabs(RingSignedArea(ring)) + 1e-9);
  EXPECT_LE(std::fabs(RingSignedArea(clipped)), box.Area() + 1e-9);
  for (const Vec2& v : clipped) {
    EXPECT_TRUE(box.Contains(v));
  }
}

TEST(ClipRingToBoxTest, BoxLargerThanWorldIsIdentity) {
  const Ring ring = {{0, 0}, {4, 0}, {2, 3}};
  const Ring clipped = ClipRingToBox(ring, BoundingBox(-100, -100, 100, 100));
  EXPECT_EQ(clipped.size(), 3u);
}

TEST(ClipPolygonToBoxTest, HolesClippedToo) {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  p.Normalize();
  const Polygon clipped = ClipPolygonToBox(p, BoundingBox(0, 0, 5, 10));
  EXPECT_NEAR(clipped.Area(), 50.0 - 2.0, 1e-9);
  ASSERT_EQ(clipped.holes().size(), 1u);
}

TEST(ClipPolygonToBoxTest, HoleOutsideWindowDropped) {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{7, 7}, {9, 7}, {9, 9}, {7, 9}});
  p.Normalize();
  const Polygon clipped = ClipPolygonToBox(p, BoundingBox(0, 0, 5, 5));
  EXPECT_TRUE(clipped.holes().empty());
  EXPECT_NEAR(clipped.Area(), 25.0, 1e-9);
}

TEST(ClipPolygonToBoxTest, EmptyResultWhenDisjoint) {
  const Polygon p(Ring{{0, 0}, {1, 0}, {1, 1}});
  const Polygon clipped = ClipPolygonToBox(p, BoundingBox(5, 5, 6, 6));
  EXPECT_TRUE(clipped.outer().empty());
}

TEST(ClipSegmentToBoxTest, InsideSegmentUnchanged) {
  Vec2 a{1, 1};
  Vec2 b{2, 2};
  ASSERT_TRUE(ClipSegmentToBox(BoundingBox(0, 0, 10, 10), a, b));
  EXPECT_EQ(a, Vec2(1, 1));
  EXPECT_EQ(b, Vec2(2, 2));
}

TEST(ClipSegmentToBoxTest, CrossingSegmentClipped) {
  Vec2 a{-5, 5};
  Vec2 b{15, 5};
  ASSERT_TRUE(ClipSegmentToBox(BoundingBox(0, 0, 10, 10), a, b));
  EXPECT_DOUBLE_EQ(a.x, 0.0);
  EXPECT_DOUBLE_EQ(b.x, 10.0);
}

TEST(ClipSegmentToBoxTest, OutsideSegmentRejected) {
  Vec2 a{-5, 20};
  Vec2 b{15, 20};
  EXPECT_FALSE(ClipSegmentToBox(BoundingBox(0, 0, 10, 10), a, b));
}

TEST(ClipSegmentToBoxTest, TouchingCornerAccepted) {
  Vec2 a{-1, 1};
  Vec2 b{1, -1};  // passes exactly through (0, 0)
  EXPECT_TRUE(ClipSegmentToBox(BoundingBox(0, 0, 10, 10), a, b));
}

TEST(SegmentIntersectsBoxTest, VariousCases) {
  const BoundingBox box(0, 0, 10, 10);
  EXPECT_TRUE(SegmentIntersectsBox(box, {1, 1}, {2, 2}));      // inside
  EXPECT_TRUE(SegmentIntersectsBox(box, {-5, 5}, {15, 5}));    // crossing
  EXPECT_FALSE(SegmentIntersectsBox(box, {11, 0}, {20, 10}));  // outside
  EXPECT_TRUE(SegmentIntersectsBox(box, {10, 5}, {20, 5}));    // touching
}

TEST(PolygonBoundaryIntersectsBoxTest, DetectsEdgeTouch) {
  const Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(PolygonBoundaryIntersectsBox(p, BoundingBox(9, 9, 11, 11)));
  EXPECT_FALSE(PolygonBoundaryIntersectsBox(p, BoundingBox(3, 3, 5, 5)));
  EXPECT_FALSE(PolygonBoundaryIntersectsBox(p, BoundingBox(20, 20, 30, 30)));
}

TEST(PolygonContainsBoxTest, InteriorExteriorAndStraddle) {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  p.Normalize();
  EXPECT_TRUE(PolygonContainsBox(p, BoundingBox(1, 1, 3, 3)));
  EXPECT_FALSE(PolygonContainsBox(p, BoundingBox(20, 20, 21, 21)));
  EXPECT_FALSE(PolygonContainsBox(p, BoundingBox(-1, -1, 2, 2)));  // straddle
  EXPECT_FALSE(PolygonContainsBox(p, BoundingBox(4.5, 4.5, 5.5, 5.5)));  // in hole
  EXPECT_FALSE(PolygonContainsBox(p, BoundingBox(3, 3, 7, 7)));  // hole inside box
}

}  // namespace
}  // namespace urbane::geometry
