#include "geometry/polygon.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace urbane::geometry {
namespace {

Ring UnitSquare() { return {{0, 0}, {1, 0}, {1, 1}, {0, 1}}; }

Polygon SquareWithHole() {
  Polygon p(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  p.add_hole(Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  p.Normalize();
  return p;
}

TEST(RingSignedAreaTest, OrientationDeterminesSign) {
  EXPECT_DOUBLE_EQ(RingSignedArea(UnitSquare()), 1.0);
  Ring cw = UnitSquare();
  std::reverse(cw.begin(), cw.end());
  EXPECT_DOUBLE_EQ(RingSignedArea(cw), -1.0);
  EXPECT_TRUE(RingIsCounterClockwise(UnitSquare()));
  EXPECT_FALSE(RingIsCounterClockwise(cw));
}

TEST(RingSignedAreaTest, DegenerateRingsAreZero) {
  EXPECT_EQ(RingSignedArea({}), 0.0);
  EXPECT_EQ(RingSignedArea({{1, 1}, {2, 2}}), 0.0);
  EXPECT_EQ(RingSignedArea({{0, 0}, {1, 1}, {2, 2}}), 0.0);  // collinear
}

TEST(RingContainsTest, InteriorAndExterior) {
  const Ring square = UnitSquare();
  EXPECT_TRUE(RingContains(square, {0.5, 0.5}));
  EXPECT_FALSE(RingContains(square, {1.5, 0.5}));
  EXPECT_FALSE(RingContains(square, {-0.5, 0.5}));
  EXPECT_FALSE(RingContains(square, {0.5, 2.0}));
}

TEST(RingContainsTest, BoundaryIsInclusive) {
  const Ring square = UnitSquare();
  EXPECT_TRUE(RingContains(square, {0.0, 0.5}));
  EXPECT_TRUE(RingContains(square, {1.0, 0.5}));
  EXPECT_TRUE(RingContains(square, {0.5, 0.0}));
  EXPECT_TRUE(RingContains(square, {0.0, 0.0}));  // vertex
}

TEST(RingContainsTest, ConcavePolygon) {
  // A "U" shape: the notch is outside.
  const Ring u = {{0, 0}, {6, 0}, {6, 4}, {4, 4}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  EXPECT_TRUE(RingContains(u, {1, 3}));
  EXPECT_TRUE(RingContains(u, {5, 3}));
  EXPECT_FALSE(RingContains(u, {3, 3}));  // in the notch
  EXPECT_TRUE(RingContains(u, {3, 1}));
}

TEST(RingContainsTest, CrossingAndWindingAgreeOnRandomSimplePolygons) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    // Star-convex polygon: always simple.
    Ring ring;
    const int n = 3 + static_cast<int>(rng.NextUint64(12));
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n;
      const double radius = rng.NextDouble(0.5, 2.0);
      ring.push_back({radius * std::cos(angle), radius * std::sin(angle)});
    }
    for (int q = 0; q < 200; ++q) {
      const Vec2 p{rng.NextDouble(-2.5, 2.5), rng.NextDouble(-2.5, 2.5)};
      EXPECT_EQ(RingContains(ring, p), RingContainsWinding(ring, p))
          << "trial " << trial << " point " << p;
    }
  }
}

TEST(PolygonTest, AreaSubtractsHoles) {
  const Polygon p = SquareWithHole();
  EXPECT_DOUBLE_EQ(p.Area(), 100.0 - 4.0);
  EXPECT_DOUBLE_EQ(Polygon(UnitSquare()).Area(), 1.0);
}

TEST(PolygonTest, PerimeterSumsAllRings) {
  const Polygon p = SquareWithHole();
  EXPECT_DOUBLE_EQ(p.Perimeter(), 40.0 + 8.0);
}

TEST(PolygonTest, ContainsRespectsHoles) {
  const Polygon p = SquareWithHole();
  EXPECT_TRUE(p.Contains({1, 1}));
  EXPECT_FALSE(p.Contains({5, 5}));      // inside the hole
  EXPECT_TRUE(p.Contains({4, 5}));       // on the hole boundary -> inside
  EXPECT_FALSE(p.Contains({11, 5}));     // outside
}

TEST(PolygonTest, CentroidOfSquare) {
  const Polygon p(UnitSquare());
  const Vec2 c = p.Centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(PolygonTest, CentroidWithSymmetricHoleStaysCentered) {
  const Polygon p = SquareWithHole();
  const Vec2 c = p.Centroid();
  EXPECT_NEAR(c.x, 5.0, 1e-9);
  EXPECT_NEAR(c.y, 5.0, 1e-9);
}

TEST(PolygonTest, CentroidOrientationInvariant) {
  Ring cw = UnitSquare();
  std::reverse(cw.begin(), cw.end());
  const Vec2 c = Polygon(cw).Centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(PolygonTest, BoundsCoverOuterRing) {
  const Polygon p = SquareWithHole();
  EXPECT_EQ(p.Bounds(), BoundingBox(0, 0, 10, 10));
}

TEST(PolygonTest, NormalizeFixesOrientation) {
  Ring cw_outer = UnitSquare();
  std::reverse(cw_outer.begin(), cw_outer.end());
  Polygon p(cw_outer);
  p.add_hole(Ring{{0.2, 0.2}, {0.4, 0.2}, {0.4, 0.4}, {0.2, 0.4}});  // CCW hole
  p.Normalize();
  EXPECT_TRUE(RingIsCounterClockwise(p.outer()));
  EXPECT_FALSE(RingIsCounterClockwise(p.holes()[0]));
}

TEST(PolygonTest, VertexCountSumsRings) {
  EXPECT_EQ(SquareWithHole().VertexCount(), 8u);
}

TEST(PolygonTest, ValidateAcceptsGoodPolygon) {
  EXPECT_TRUE(SquareWithHole().Validate().ok());
}

TEST(PolygonTest, ValidateRejectsTooFewVertices) {
  EXPECT_FALSE(Polygon(Ring{{0, 0}, {1, 1}}).Validate().ok());
}

TEST(PolygonTest, ValidateRejectsZeroArea) {
  EXPECT_FALSE(Polygon(Ring{{0, 0}, {1, 1}, {2, 2}}).Validate().ok());
}

TEST(PolygonTest, ValidateRejectsSelfIntersection) {
  // Bowtie.
  EXPECT_FALSE(
      Polygon(Ring{{0, 0}, {2, 2}, {2, 0}, {0, 2}}).Validate().ok());
}

TEST(PolygonTest, IsSimpleAcceptsConvexAndConcave) {
  EXPECT_TRUE(Polygon(UnitSquare()).IsSimple());
  const Ring u = {{0, 0}, {6, 0}, {6, 4}, {4, 4}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  EXPECT_TRUE(Polygon(u).IsSimple());
}

TEST(MultiPolygonTest, AggregatesParts) {
  MultiPolygon mp;
  mp.add_part(Polygon(UnitSquare()));
  mp.add_part(Polygon(Ring{{5, 5}, {7, 5}, {7, 7}, {5, 7}}));
  EXPECT_DOUBLE_EQ(mp.Area(), 1.0 + 4.0);
  EXPECT_EQ(mp.VertexCount(), 8u);
  EXPECT_EQ(mp.Bounds(), BoundingBox(0, 0, 7, 7));
  EXPECT_TRUE(mp.Contains({0.5, 0.5}));
  EXPECT_TRUE(mp.Contains({6, 6}));
  EXPECT_FALSE(mp.Contains({3, 3}));
}

TEST(MultiPolygonTest, CentroidIsAreaWeighted) {
  MultiPolygon mp;
  mp.add_part(Polygon(UnitSquare()));  // area 1, centroid (0.5, 0.5)
  mp.add_part(Polygon(Ring{{2, 0}, {4, 0}, {4, 2}, {2, 2}}));  // area 4, (3,1)
  const Vec2 c = mp.Centroid();
  EXPECT_NEAR(c.x, (0.5 * 1 + 3.0 * 4) / 5.0, 1e-9);
  EXPECT_NEAR(c.y, (0.5 * 1 + 1.0 * 4) / 5.0, 1e-9);
}

TEST(MakeRegularPolygonTest, HasRequestedVerticesAndArea) {
  const Polygon hex = MakeRegularPolygon({0, 0}, 2.0, 6);
  EXPECT_EQ(hex.outer().size(), 6u);
  // Regular hexagon area: 3*sqrt(3)/2 * r^2.
  EXPECT_NEAR(hex.Area(), 3.0 * std::sqrt(3.0) / 2.0 * 4.0, 1e-9);
  EXPECT_TRUE(RingIsCounterClockwise(hex.outer()));
}

TEST(MakeRectanglePolygonTest, MatchesBox) {
  const BoundingBox box(1, 2, 4, 6);
  const Polygon rect = MakeRectanglePolygon(box);
  EXPECT_DOUBLE_EQ(rect.Area(), 12.0);
  EXPECT_EQ(rect.Bounds(), box);
}

}  // namespace
}  // namespace urbane::geometry
