#include "geometry/point.h"

#include <gtest/gtest.h>

namespace urbane::geometry {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2Test, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), -1.0);
  EXPECT_DOUBLE_EQ(a.Dot(a), 1.0);
}

TEST(Vec2Test, NormsAndDistances) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.DistanceTo({0.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredDistanceTo({3.0, 0.0}), 16.0);
}

TEST(Orient2dTest, SignsMatchGeometry) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{1.0, 0.0};
  EXPECT_GT(Orient2d(a, b, {0.5, 1.0}), 0.0);   // left of a->b: CCW
  EXPECT_LT(Orient2d(a, b, {0.5, -1.0}), 0.0);  // right: CW
  EXPECT_EQ(Orient2d(a, b, {2.0, 0.0}), 0.0);   // collinear
}

TEST(Orient2dTest, AntiSymmetry) {
  const Vec2 a{0.3, 1.7};
  const Vec2 b{-2.1, 0.4};
  const Vec2 c{5.5, -3.3};
  EXPECT_DOUBLE_EQ(Orient2d(a, b, c), -Orient2d(b, a, c));
}

}  // namespace
}  // namespace urbane::geometry
