#include "geometry/bounding_box.h"

#include <gtest/gtest.h>

namespace urbane::geometry {
namespace {

TEST(BoundingBoxTest, DefaultIsEmpty) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.Width(), 0.0);
  EXPECT_EQ(box.Area(), 0.0);
}

TEST(BoundingBoxTest, ExtendWithPoints) {
  BoundingBox box;
  box.Extend({1.0, 2.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.Width(), 0.0);
  box.Extend({3.0, -1.0});
  EXPECT_EQ(box.min_x, 1.0);
  EXPECT_EQ(box.max_x, 3.0);
  EXPECT_EQ(box.min_y, -1.0);
  EXPECT_EQ(box.max_y, 2.0);
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
}

TEST(BoundingBoxTest, ExtendWithBox) {
  BoundingBox a(0, 0, 1, 1);
  a.Extend(BoundingBox(2, 2, 3, 3));
  EXPECT_EQ(a, BoundingBox(0, 0, 3, 3));
  a.Extend(BoundingBox());  // empty no-op
  EXPECT_EQ(a, BoundingBox(0, 0, 3, 3));
}

TEST(BoundingBoxTest, ContainsPointIsClosed) {
  const BoundingBox box(0, 0, 10, 10);
  EXPECT_TRUE(box.Contains(Vec2{0.0, 0.0}));
  EXPECT_TRUE(box.Contains(Vec2{10.0, 10.0}));
  EXPECT_TRUE(box.Contains(Vec2{5.0, 5.0}));
  EXPECT_FALSE(box.Contains(Vec2{10.0001, 5.0}));
  EXPECT_FALSE(box.Contains(Vec2{-0.0001, 5.0}));
}

TEST(BoundingBoxTest, ContainsBox) {
  const BoundingBox outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(BoundingBox(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(BoundingBox(5, 5, 11, 9)));
  EXPECT_FALSE(outer.Contains(BoundingBox()));  // empty
}

TEST(BoundingBoxTest, IntersectsIsSymmetricAndClosed) {
  const BoundingBox a(0, 0, 5, 5);
  const BoundingBox b(5, 5, 10, 10);  // touch at a corner
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  const BoundingBox c(6, 6, 7, 7);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(BoundingBox()));
}

TEST(BoundingBoxTest, IntersectionComputesOverlap) {
  const BoundingBox a(0, 0, 6, 6);
  const BoundingBox b(4, 2, 10, 8);
  const BoundingBox i = a.Intersection(b);
  EXPECT_EQ(i, BoundingBox(4, 2, 6, 6));
  EXPECT_TRUE(a.Intersection(BoundingBox(7, 7, 8, 8)).IsEmpty());
}

TEST(BoundingBoxTest, ExpandedGrowsEachSide) {
  const BoundingBox box(0, 0, 2, 2);
  EXPECT_EQ(box.Expanded(1.0), BoundingBox(-1, -1, 3, 3));
  EXPECT_TRUE(BoundingBox().Expanded(5.0).IsEmpty());
}

TEST(BoundingBoxTest, CenterAndFromPoints) {
  const BoundingBox box = BoundingBox::FromPoints({4, 6}, {0, 2});
  EXPECT_EQ(box, BoundingBox(0, 2, 4, 6));
  EXPECT_EQ(box.Center(), Vec2(2.0, 4.0));
}

}  // namespace
}  // namespace urbane::geometry
