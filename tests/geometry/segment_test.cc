#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace urbane::geometry {
namespace {

TEST(PointOnSegmentTest, DetectsCollinearWithinBounds) {
  const Segment s{{0, 0}, {4, 4}};
  EXPECT_TRUE(PointOnSegment({2, 2}, s));
  EXPECT_TRUE(PointOnSegment({0, 0}, s));
  EXPECT_TRUE(PointOnSegment({4, 4}, s));
  EXPECT_FALSE(PointOnSegment({5, 5}, s));   // collinear but outside
  EXPECT_FALSE(PointOnSegment({2, 2.1}, s));  // off the line
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {4, 4}}, {{0, 4}, {4, 0}}));
}

TEST(SegmentsIntersectTest, DisjointSegments) {
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
}

TEST(SegmentsIntersectTest, TouchingEndpointCounts) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{2, 2}, {4, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {4, 0}}, {{2, 0}, {2, 5}}));
}

TEST(SegmentsIntersectTest, CollinearOverlapCounts) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {3, 0}}, {{2, 0}, {5, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentIntersectionPointTest, ComputesCrossing) {
  const auto p = SegmentIntersectionPoint({{0, 0}, {4, 4}}, {{0, 4}, {4, 0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->x, 2.0);
  EXPECT_DOUBLE_EQ(p->y, 2.0);
}

TEST(SegmentIntersectionPointTest, ParallelReturnsNullopt) {
  EXPECT_FALSE(
      SegmentIntersectionPoint({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}).has_value());
  // Collinear overlap also yields nullopt (no unique point).
  EXPECT_FALSE(
      SegmentIntersectionPoint({{0, 0}, {3, 0}}, {{1, 0}, {2, 0}}).has_value());
}

TEST(SegmentIntersectionPointTest, NonOverlappingLinesReturnsNullopt) {
  EXPECT_FALSE(
      SegmentIntersectionPoint({{0, 0}, {1, 1}}, {{3, 0}, {4, 1}}).has_value());
}

TEST(DistancePointToSegmentTest, PerpendicularProjection) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(DistancePointToSegment({5, 3}, s), 3.0);
}

TEST(DistancePointToSegmentTest, ClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(DistancePointToSegment({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(DistancePointToSegment({13, 4}, s), 5.0);
}

TEST(DistancePointToSegmentTest, DegenerateSegmentIsPointDistance) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(DistancePointToSegment({4, 5}, s), 5.0);
}

TEST(SquaredDistanceTest, MatchesSquareOfDistance) {
  const Segment s{{0, 0}, {2, 2}};
  const Vec2 p{3, 0};
  EXPECT_NEAR(SquaredDistancePointToSegment(p, s),
              DistancePointToSegment(p, s) * DistancePointToSegment(p, s),
              1e-12);
}

}  // namespace
}  // namespace urbane::geometry
