// HTTP request parser corpus: well-formed requests (including adversarial
// but legal framing like byte-at-a-time delivery and bare-LF terminators),
// a malformed corpus that must fail with a 400-safe message and never
// crash, and the response formatter's invariants.
#include "net/http.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace urbane::net {
namespace {

using State = HttpRequestParser::State;

State FeedAll(HttpRequestParser& parser, const std::string& bytes) {
  return parser.Feed(bytes.data(), bytes.size());
}

TEST(HttpRequestParserTest, ParsesGetWithQueryString) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "GET /v1/regions?layer=nbhd&x=1 HTTP/1.1\r\n"
                    "Host: localhost\r\n"
                    "X-Custom: value with spaces\r\n\r\n"),
            State::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/v1/regions?layer=nbhd&x=1");
  EXPECT_EQ(request.path, "/v1/regions");
  EXPECT_EQ(request.query, "layer=nbhd&x=1");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.QueryParam("layer"), "nbhd");
  EXPECT_EQ(request.QueryParam("x"), "1");
  EXPECT_EQ(request.QueryParam("missing"), "");
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "localhost");
  // Header names are lowercased at parse time; values keep their bytes.
  ASSERT_NE(request.FindHeader("x-custom"), nullptr);
  EXPECT_EQ(*request.FindHeader("x-custom"), "value with spaces");
  EXPECT_EQ(request.FindHeader("X-Custom"), nullptr);
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpRequestParserTest, ParsesPostBodyDeliveredByteByByte) {
  const std::string message =
      "POST /v1/query HTTP/1.1\r\n"
      "Content-Length: 16\r\n\r\n"
      "{\"sql\": \"SELECT\"";
  HttpRequestParser parser;
  for (std::size_t i = 0; i + 1 < message.size(); ++i) {
    ASSERT_NE(parser.Feed(&message[i], 1), State::kError) << "byte " << i;
    ASSERT_NE(parser.state(), State::kDone) << "byte " << i;
  }
  ASSERT_EQ(parser.Feed(&message[message.size() - 1], 1), State::kDone);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "{\"sql\": \"SELECT\"");
}

TEST(HttpRequestParserTest, BodyBytesGluedToHeaderBlock) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"),
            State::kDone);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpRequestParserTest, ToleratesBareLfTerminators) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET /healthz HTTP/1.0\nHost: x\n\n"),
            State::kDone);
  EXPECT_EQ(parser.request().path, "/healthz");
}

TEST(HttpRequestParserTest, SurplusBytesAfterCompleteMessageAreIgnored) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\n\r\n"), State::kDone);
  const std::string extra = "GET /other HTTP/1.1\r\n\r\n";
  EXPECT_EQ(parser.Feed(extra.data(), extra.size()), State::kDone);
  EXPECT_EQ(parser.request().path, "/");  // no pipelining
}

TEST(HttpRequestParserTest, MalformedCorpusFailsWithSafeMessages) {
  const std::vector<std::string> corpus = {
      "\r\n\r\n",                                 // empty request line
      "GARBAGE\r\n\r\n",                          // no spaces
      "GET /\r\n\r\n",                            // missing version
      "GET / FTP/1.1\r\n\r\n",                    // wrong protocol
      " / HTTP/1.1\r\n\r\n",                      // empty method
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",    // header without ':'
      "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",   // header with empty name
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",   // negative length
      "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",  // non-numeric
      "POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",      // empty value
  };
  for (const std::string& bytes : corpus) {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(parser, bytes), State::kError) << bytes;
    EXPECT_FALSE(parser.error().ok()) << bytes;
    EXPECT_EQ(parser.error().code(), StatusCode::kInvalidArgument) << bytes;
    EXPECT_FALSE(parser.error().message().empty()) << bytes;
    // Errors are sticky: more bytes cannot resurrect the parse.
    EXPECT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\n\r\n"), State::kError);
  }
}

TEST(HttpRequestParserTest, EnforcesHeaderLimit) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser(limits);
  // Never sends the terminator: the parser must cut the buffer off at the
  // limit instead of ballooning.
  const std::string chunk(50, 'A');
  State state = State::kHeaders;
  for (int i = 0; i < 10 && state == State::kHeaders; ++i) {
    state = parser.Feed(chunk.data(), chunk.size());
  }
  EXPECT_EQ(state, State::kError);
  EXPECT_NE(parser.error().message().find("header block exceeds"),
            std::string::npos);
}

TEST(HttpRequestParserTest, EnforcesBodyLimit) {
  HttpLimits limits;
  limits.max_body_bytes = 8;
  HttpRequestParser parser(limits);
  EXPECT_EQ(FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            State::kError);
  EXPECT_NE(parser.error().message().find("exceeds limit"),
            std::string::npos);
}

TEST(HttpResponseTest, FormatterWritesFramingHeaders) {
  HttpResponse response;
  response.status = 429;
  response.reason = "";  // resolved from the status
  response.content_type = "application/json";
  response.body = "{\"error\":{}}";
  response.extra_headers.emplace_back("Retry-After", "1");
  const std::string wire = FormatHttpResponse(response);
  EXPECT_EQ(wire.rfind("HTTP/1.1 429 Too Many Requests\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 12\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n\r\n{\"error\":{}}"),
            std::string::npos);
}

TEST(HttpResponseTest, ReasonPhrasesCoverTheServersStatusCodes) {
  EXPECT_STREQ(HttpReasonPhrase(200), "OK");
  EXPECT_STREQ(HttpReasonPhrase(400), "Bad Request");
  EXPECT_STREQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_STREQ(HttpReasonPhrase(416), "Range Not Satisfiable");
  EXPECT_STREQ(HttpReasonPhrase(429), "Too Many Requests");
  EXPECT_STREQ(HttpReasonPhrase(501), "Not Implemented");
  EXPECT_STREQ(HttpReasonPhrase(503), "Service Unavailable");
  EXPECT_STREQ(HttpReasonPhrase(504), "Gateway Timeout");
  EXPECT_STREQ(HttpReasonPhrase(999), "Unknown");
}

}  // namespace
}  // namespace urbane::net
