// Loopback socket plumbing: listener/connector round trips, request
// framing over a real socket, and the timeout guards that keep a slow peer
// from wedging a serving thread.
#include "net/socket.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "net/http.h"

namespace urbane::net {
namespace {

#ifdef __unix__

TEST(SocketTest, ListenConnectSendRecvRoundTrip) {
  ASSERT_TRUE(SocketsAvailable());
  std::uint16_t port = 0;
  StatusOr<int> listen_fd = ListenLoopback(0, 8, &port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
  ASSERT_GT(port, 0);

  StatusOr<int> client = ConnectLoopback(port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_TRUE(WaitReadable(*listen_fd, 2000));
  const int server_fd = AcceptConnection(*listen_fd);
  ASSERT_GE(server_fd, 0);
  SetSocketTimeouts(server_fd, 2000, 2000);
  SetSocketTimeouts(*client, 2000, 2000);

  ASSERT_TRUE(SendAll(*client, "ping").ok());
  char buffer[16];
  StatusOr<std::size_t> n = RecvSome(server_fd, buffer, sizeof(buffer));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(std::string(buffer, *n), "ping");

  // Server responds then closes; RecvAll on the client collects the full
  // payload up to orderly EOF.
  ASSERT_TRUE(SendAll(server_fd, "pong and then some").ok());
  CloseSocket(server_fd);
  std::string response;
  ASSERT_TRUE(RecvAll(*client, &response).ok());
  EXPECT_EQ(response, "pong and then some");

  CloseSocket(*client);
  CloseSocket(*listen_fd);
}

TEST(SocketTest, WaitReadableTimesOutWithoutTraffic) {
  std::uint16_t port = 0;
  StatusOr<int> listen_fd = ListenLoopback(0, 8, &port);
  ASSERT_TRUE(listen_fd.ok());
  EXPECT_FALSE(WaitReadable(*listen_fd, 20));
  EXPECT_EQ(AcceptConnection(*listen_fd), -1);  // EAGAIN, not a crash
  CloseSocket(*listen_fd);
}

TEST(SocketTest, RecvTimeoutFailsInsteadOfHangingForever) {
  std::uint16_t port = 0;
  StatusOr<int> listen_fd = ListenLoopback(0, 8, &port);
  ASSERT_TRUE(listen_fd.ok());
  StatusOr<int> client = ConnectLoopback(port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(WaitReadable(*listen_fd, 2000));
  const int server_fd = AcceptConnection(*listen_fd);
  ASSERT_GE(server_fd, 0);

  // The peer never sends: a 50 ms SO_RCVTIMEO turns the read into an
  // IoError instead of an unbounded stall.
  SetSocketTimeouts(server_fd, 50, 50);
  char buffer[16];
  const StatusOr<std::size_t> n = RecvSome(server_fd, buffer, sizeof(buffer));
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);

  CloseSocket(server_fd);
  CloseSocket(*client);
  CloseSocket(*listen_fd);
}

TEST(SocketTest, ReadHttpRequestFramesOneMessage) {
  std::uint16_t port = 0;
  StatusOr<int> listen_fd = ListenLoopback(0, 8, &port);
  ASSERT_TRUE(listen_fd.ok());

  std::thread client_thread([port] {
    StatusOr<int> fd = ConnectLoopback(port);
    ASSERT_TRUE(fd.ok());
    // Two sends, split mid-body, as a real client's packets might arrive.
    SendAll(*fd, "POST /v1/query HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"sql");
    SendAll(*fd, "\": 1}");
    CloseSocket(*fd);
  });

  ASSERT_TRUE(WaitReadable(*listen_fd, 2000));
  const int server_fd = AcceptConnection(*listen_fd);
  ASSERT_GE(server_fd, 0);
  SetSocketTimeouts(server_fd, 2000, 2000);
  const StatusOr<HttpRequest> request = ReadHttpRequest(server_fd, {});
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->path, "/v1/query");
  EXPECT_EQ(request->body, "{\"sql\": 1}");

  client_thread.join();
  CloseSocket(server_fd);
  CloseSocket(*listen_fd);
}

TEST(SocketTest, ReadHttpRequestReportsEarlyDisconnectAsIoError) {
  std::uint16_t port = 0;
  StatusOr<int> listen_fd = ListenLoopback(0, 8, &port);
  ASSERT_TRUE(listen_fd.ok());
  std::thread client_thread([port] {
    StatusOr<int> fd = ConnectLoopback(port);
    ASSERT_TRUE(fd.ok());
    SendAll(*fd, "GET /healthz HTT");  // hangs up mid request line
    CloseSocket(*fd);
  });
  ASSERT_TRUE(WaitReadable(*listen_fd, 2000));
  const int server_fd = AcceptConnection(*listen_fd);
  ASSERT_GE(server_fd, 0);
  SetSocketTimeouts(server_fd, 2000, 2000);
  const StatusOr<HttpRequest> request = ReadHttpRequest(server_fd, {});
  EXPECT_FALSE(request.ok());
  // IoError (not InvalidArgument): nothing was malformed, the peer left.
  EXPECT_EQ(request.status().code(), StatusCode::kIoError);
  client_thread.join();
  CloseSocket(server_fd);
  CloseSocket(*listen_fd);
}

#else  // !__unix__

TEST(SocketTest, StubsReportNotImplemented) {
  EXPECT_FALSE(SocketsAvailable());
  std::uint16_t port = 0;
  EXPECT_FALSE(ListenLoopback(0, 8, &port).ok());
  EXPECT_FALSE(ConnectLoopback(1).ok());
}

#endif  // __unix__

}  // namespace
}  // namespace urbane::net
