// Shard-merge oracle: for every executor x aggregate x filter x shard
// count {1,2,3,4,8} x pool size {1,4}, the sharded scatter-gather result
// must equal the unsharded executor's. On the dyadic world — attribute
// values k/256, every double sum exact — "equal" is literal bit-identity
// (NaN-aware byte compare, including float SUM/AVG and the bounded
// raster's error bounds). On a random-float world the contract is the
// house one (execution_context.h): reproducible at a fixed shard count on
// any pool, and within 1e-6-relative of the serial summation order.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "shard/sharded_executor.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::shard {
namespace {

struct OracleWorld {
  data::PointTable points;
  data::RegionSet regions;
};

const OracleWorld& DyadicWorld() {
  static const OracleWorld* world = [] {
    auto* w = new OracleWorld();
    w->points = testing::MakeDyadicPoints(4000, 0x5EED);
    w->regions = testing::MakeRandomRegions(8, 0xFACE);
    return w;
  }();
  return *world;
}

const OracleWorld& RandomWorld() {
  static const OracleWorld* world = [] {
    auto* w = new OracleWorld();
    w->points = testing::MakeUniformPoints(4000, 0xD1CE);
    w->regions = testing::MakeRandomRegions(8, 0xB0A7);
    return w;
  }();
  return *world;
}

core::RasterJoinOptions SmallCanvas() {
  core::RasterJoinOptions options;
  options.resolution = 256;
  return options;
}

std::vector<core::AggregateSpec> AllAggregates() {
  return {core::AggregateSpec::Count(), core::AggregateSpec::Sum("v"),
          core::AggregateSpec::Avg("v"), core::AggregateSpec::Min("v"),
          core::AggregateSpec::Max("v")};
}

std::vector<core::FilterSpec> OracleFilters() {
  core::FilterSpec trivial;
  core::FilterSpec window;
  window.spatial_window = geometry::BoundingBox(10.0, 10.0, 35.0, 35.0);
  core::FilterSpec combined;
  combined.spatial_window = geometry::BoundingBox(20.0, 20.0, 80.0, 80.0);
  combined.time_range = core::TimeRange{10000, 50000};
  combined.attribute_ranges.push_back({"v", -5.0, 5.0});
  return {trivial, window, combined};
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Literal bit compare, except any-NaN == any-NaN (AVG/MIN/MAX of an empty
// region); +0.0 vs -0.0 still fails.
void ExpectBitIdentical(const core::QueryResult& sharded,
                        const core::QueryResult& serial,
                        const std::string& what) {
  ASSERT_EQ(sharded.size(), serial.size()) << what;
  ASSERT_EQ(sharded.error_bounds.size(), serial.error_bounds.size()) << what;
  for (std::size_t r = 0; r < serial.size(); ++r) {
    const bool both_nan =
        std::isnan(sharded.values[r]) && std::isnan(serial.values[r]);
    EXPECT_TRUE(both_nan ||
                DoubleBits(sharded.values[r]) == DoubleBits(serial.values[r]))
        << what << " region " << r << ": sharded=" << sharded.values[r]
        << " serial=" << serial.values[r];
    EXPECT_EQ(sharded.counts[r], serial.counts[r]) << what << " region " << r;
    if (!serial.error_bounds.empty()) {
      EXPECT_EQ(DoubleBits(sharded.error_bounds[r]),
                DoubleBits(serial.error_bounds[r]))
          << what << " bound " << r;
    }
  }
}

std::unique_ptr<core::SpatialAggregationExecutor> MakeSerial(
    const OracleWorld& world, core::ExecutionMethod method) {
  switch (method) {
    case core::ExecutionMethod::kScan: {
      auto e = core::ScanJoin::Create(world.points, world.regions);
      EXPECT_TRUE(e.ok());
      return std::move(e).value();
    }
    case core::ExecutionMethod::kIndexJoin: {
      auto e = core::IndexJoin::Create(world.points, world.regions);
      EXPECT_TRUE(e.ok());
      return std::move(e).value();
    }
    case core::ExecutionMethod::kBoundedRaster: {
      auto e = core::BoundedRasterJoin::Create(world.points, world.regions,
                                               SmallCanvas());
      EXPECT_TRUE(e.ok());
      return std::move(e).value();
    }
    case core::ExecutionMethod::kAccurateRaster: {
      auto e = core::AccurateRasterJoin::Create(world.points, world.regions,
                                                SmallCanvas());
      EXPECT_TRUE(e.ok());
      return std::move(e).value();
    }
  }
  return nullptr;
}

core::AggregationQuery MakeQuery(const OracleWorld& world,
                                 const core::AggregateSpec& aggregate,
                                 const core::FilterSpec& filter) {
  core::AggregationQuery query;
  query.points = &world.points;
  query.regions = &world.regions;
  query.aggregate = aggregate;
  query.filter = filter;
  return query;
}

struct OracleConfig {
  core::ExecutionMethod method;
  std::size_t shards;
  std::size_t threads;
};

std::string ConfigName(const ::testing::TestParamInfo<OracleConfig>& info) {
  return std::string(core::ExecutionMethodToString(info.param.method)) +
         "_m" + std::to_string(info.param.shards) + "_t" +
         std::to_string(info.param.threads);
}

class ShardedOracleTest : public ::testing::TestWithParam<OracleConfig> {};

TEST_P(ShardedOracleTest, BitIdenticalToSerialOnDyadicWorld) {
  const OracleConfig config = GetParam();
  const OracleWorld& world = DyadicWorld();
  ThreadPool pool(config.threads);

  ShardedExecutorOptions options;
  options.num_shards = config.shards;
  options.pool = &pool;
  auto sharded = ShardedExecutor::Create(world.points, world.regions,
                                         config.method, options,
                                         SmallCanvas());
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto serial = MakeSerial(world, config.method);
  ASSERT_NE(serial, nullptr);

  for (const core::AggregateSpec& aggregate : AllAggregates()) {
    for (const core::FilterSpec& filter : OracleFilters()) {
      const core::AggregationQuery query = MakeQuery(world, aggregate, filter);
      auto sharded_result = (*sharded)->Execute(query);
      ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();
      auto serial_result = serial->Execute(query);
      ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();
      ExpectBitIdentical(
          *sharded_result, *serial_result,
          std::string(core::ExecutionMethodToString(config.method)) +
              " agg=" + std::to_string(static_cast<int>(aggregate.kind)) +
              " m=" + std::to_string(config.shards) +
              " t=" + std::to_string(config.threads));
    }
  }
}

std::vector<OracleConfig> AllConfigs() {
  std::vector<OracleConfig> configs;
  for (const core::ExecutionMethod method :
       {core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
      for (const std::size_t threads : {1u, 4u}) {
        configs.push_back({method, shards, threads});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, ShardedOracleTest,
                         ::testing::ValuesIn(AllConfigs()), ConfigName);

// Random-float world: the double sums are no longer exact, so across a
// shard-count change only tolerance holds — but for a FIXED shard count
// the result must be bit-reproducible run to run and across pool sizes
// (partials merge in shard order, never completion order).
TEST(ShardedOracleRandomWorldTest, FixedShardCountIsPoolAndRunInvariant) {
  const OracleWorld& world = RandomWorld();
  for (const core::ExecutionMethod method :
       {core::ExecutionMethod::kScan, core::ExecutionMethod::kBoundedRaster}) {
    std::vector<core::QueryResult> runs;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      ShardedExecutorOptions options;
      options.num_shards = 3;
      options.pool = &pool;
      auto sharded = ShardedExecutor::Create(world.points, world.regions,
                                             method, options, SmallCanvas());
      ASSERT_TRUE(sharded.ok());
      for (int repeat = 0; repeat < 2; ++repeat) {
        auto result = (*sharded)->Execute(
            MakeQuery(world, core::AggregateSpec::Avg("v"),
                      core::FilterSpec()));
        ASSERT_TRUE(result.ok());
        runs.push_back(std::move(*result));
      }
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      ExpectBitIdentical(runs[i], runs[0],
                         std::string("reproducibility run ") +
                             std::to_string(i) + " method " +
                             core::ExecutionMethodToString(method));
    }
  }
}

TEST(ShardedOracleRandomWorldTest, WithinRelativeToleranceOfSerial) {
  const OracleWorld& world = RandomWorld();
  ShardedExecutorOptions options;
  options.num_shards = 4;
  for (const core::ExecutionMethod method :
       {core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster}) {
    auto sharded = ShardedExecutor::Create(world.points, world.regions,
                                           method, options, SmallCanvas());
    ASSERT_TRUE(sharded.ok());
    auto serial = MakeSerial(world, method);
    for (const core::AggregateSpec& aggregate :
         {core::AggregateSpec::Sum("v"), core::AggregateSpec::Avg("v")}) {
      const core::AggregationQuery query =
          MakeQuery(world, aggregate, core::FilterSpec());
      auto sharded_result = (*sharded)->Execute(query);
      auto serial_result = serial->Execute(query);
      ASSERT_TRUE(sharded_result.ok());
      ASSERT_TRUE(serial_result.ok());
      for (std::size_t r = 0; r < serial_result->size(); ++r) {
        const double a = sharded_result->values[r];
        const double b = serial_result->values[r];
        if (std::isnan(a) || std::isnan(b)) {
          EXPECT_EQ(std::isnan(a), std::isnan(b));
          continue;
        }
        EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, std::abs(b)))
            << core::ExecutionMethodToString(method) << " region " << r;
        EXPECT_EQ(sharded_result->counts[r], serial_result->counts[r]);
      }
    }
  }
}

}  // namespace
}  // namespace urbane::shard
