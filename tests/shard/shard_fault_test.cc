// Crash-of-one-shard semantics: a shard that fails — injected fault or
// tripped deadline — must fail the WHOLE query with that shard's status.
// Never a partial merge, and deterministically: when several shards fail,
// the lowest shard index wins regardless of completion order. Also covers
// the facade surface (set_num_shards) end to end, including the cache
// epoch bump that keeps unsharded cached results from leaking into a
// sharded configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "core/spatial_aggregation.h"
#include "shard/sharded_executor.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::shard {
namespace {

class ShardFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    points_ = testing::MakeDyadicPoints(1000, 0xFA17);
    regions_ = testing::MakeRandomRegions(4, 0xFA57);
  }

  core::AggregationQuery Query() const {
    core::AggregationQuery query;
    query.points = &points_;
    query.regions = &regions_;
    query.aggregate = core::AggregateSpec::Sum("v");
    return query;
  }

  StatusOr<std::unique_ptr<ShardedExecutor>> Make(
      ShardedExecutorOptions options) {
    return ShardedExecutor::Create(points_, regions_,
                                   core::ExecutionMethod::kScan, options);
  }

  data::PointTable points_;
  data::RegionSet regions_;
};

TEST_F(ShardFaultTest, OneFailingShardFailsTheWholeQuery) {
  ThreadPool pool(4);
  std::atomic<int> healthy_shards{0};
  ShardedExecutorOptions options;
  options.num_shards = 4;
  options.pool = &pool;
  options.fault_injector = [](std::size_t shard) {
    return shard == 2 ? Status::Internal("shard 2 lost its store")
                      : Status::OK();
  };
  options.completion_hook = [&healthy_shards](std::size_t) {
    healthy_shards.fetch_add(1, std::memory_order_relaxed);
  };
  auto sharded = Make(options);
  ASSERT_TRUE(sharded.ok());

  auto result = (*sharded)->Execute(Query());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().ToString().find("shard 2 lost its store"),
            std::string::npos);
  // The other shards DID complete (their partials existed) — and were
  // still discarded rather than merged into a partial answer.
  EXPECT_EQ(healthy_shards.load(std::memory_order_relaxed), 3);
}

TEST_F(ShardFaultTest, LowestFailingShardIndexWinsDeterministically) {
  // Shards 1 and 3 both fail with different codes. Whatever order they
  // complete in, the reported error must be shard 1's — the gather walks
  // slots in shard-index order, so error selection is schedule-free.
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 8; ++repeat) {
    ShardedExecutorOptions options;
    options.num_shards = 4;
    options.pool = &pool;
    options.fault_injector = [](std::size_t shard) {
      if (shard == 1) return Status::NotFound("shard 1 block missing");
      if (shard == 3) return Status::InvalidArgument("shard 3 bad column");
      return Status::OK();
    };
    auto sharded = Make(options);
    ASSERT_TRUE(sharded.ok());
    auto result = (*sharded)->Execute(Query());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound) << "repeat "
                                                             << repeat;
  }
}

TEST_F(ShardFaultTest, CancelledControlPropagatesDeadlineExceeded) {
  ThreadPool pool(2);
  ShardedExecutorOptions options;
  options.num_shards = 3;
  options.pool = &pool;
  auto sharded = Make(options);
  ASSERT_TRUE(sharded.ok());

  core::QueryControl control;
  control.cancelled.store(true);
  core::AggregationQuery query = Query();
  query.control = &control;
  auto result = (*sharded)->Execute(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ShardFaultTest, FailedQueryLeavesExecutorUsable) {
  // A fault is per-query, not per-executor: the next query on the same
  // instance succeeds and matches the serial answer.
  ThreadPool pool(4);
  std::atomic<bool> arm_fault{true};
  ShardedExecutorOptions options;
  options.num_shards = 4;
  options.pool = &pool;
  options.fault_injector = [&arm_fault](std::size_t shard) {
    return (arm_fault.load() && shard == 0) ? Status::Internal("transient")
                                            : Status::OK();
  };
  auto sharded = Make(options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_FALSE((*sharded)->Execute(Query()).ok());

  arm_fault.store(false);
  auto recovered = (*sharded)->Execute(Query());
  ASSERT_TRUE(recovered.ok());

  auto serial = core::ScanJoin::Create(points_, regions_);
  ASSERT_TRUE(serial.ok());
  auto expected = (*serial)->Execute(Query());
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(recovered->size(), expected->size());
  for (std::size_t r = 0; r < expected->size(); ++r) {
    EXPECT_EQ(recovered->values[r], expected->values[r]) << "region " << r;
    EXPECT_EQ(recovered->counts[r], expected->counts[r]) << "region " << r;
  }
}

// Facade smoke: set_num_shards reconfigures every method, results still
// match the unsharded engine, and the config epoch bump firewalls the
// result cache across the reconfiguration.
TEST(ShardFacadeTest, SetNumShardsMatchesUnshardedAndBumpsEpoch) {
  const data::PointTable points = testing::MakeDyadicPoints(1500, 0xFACADE);
  const data::RegionSet regions = testing::MakeRandomRegions(5, 0xD002);
  core::SpatialAggregation engine(points, regions);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Avg("v");

  auto unsharded = engine.Execute(query, core::ExecutionMethod::kScan);
  ASSERT_TRUE(unsharded.ok());

  const std::uint64_t epoch_before = engine.config_epoch();
  engine.set_num_shards(4);
  EXPECT_EQ(engine.num_shards(), 4u);
  EXPECT_GT(engine.config_epoch(), epoch_before);

  for (const core::ExecutionMethod method :
       {core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
        core::ExecutionMethod::kBoundedRaster,
        core::ExecutionMethod::kAccurateRaster}) {
    auto sharded = engine.Execute(query, method);
    ASSERT_TRUE(sharded.ok()) << core::ExecutionMethodToString(method);
  }
  auto sharded_scan = engine.Execute(query, core::ExecutionMethod::kScan);
  ASSERT_TRUE(sharded_scan.ok());
  ASSERT_EQ(sharded_scan->size(), unsharded->size());
  for (std::size_t r = 0; r < unsharded->size(); ++r) {
    const bool both_nan = std::isnan(sharded_scan->values[r]) &&
                          std::isnan(unsharded->values[r]);
    EXPECT_TRUE(both_nan ||
                sharded_scan->values[r] == unsharded->values[r])
        << "region " << r;
  }

  // Back to 1 shard: another epoch bump, same answers.
  const std::uint64_t epoch_mid = engine.config_epoch();
  engine.set_num_shards(1);
  EXPECT_GT(engine.config_epoch(), epoch_mid);
  auto back = engine.Execute(query, core::ExecutionMethod::kScan);
  ASSERT_TRUE(back.ok());
}

TEST(ShardFacadeTest, ShardedFacadeHonorsQueryControl) {
  const data::PointTable points = testing::MakeDyadicPoints(800, 0xC721);
  const data::RegionSet regions = testing::MakeRandomRegions(3, 0x90D);
  core::SpatialAggregation engine(points, regions);
  engine.set_num_shards(3);

  core::QueryControl control;
  control.cancelled.store(true);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  query.control = &control;
  auto result = engine.Execute(std::move(query), core::ExecutionMethod::kScan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace urbane::shard
