// Randomized partition property: ANY disjoint tiling of the row space —
// balanced, wildly skewed, with empty shards, or with single-point shards
// — must merge to the serial result. The partition is scheduling metadata;
// it is not allowed to leak into answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "core/scan_join.h"
#include "shard/sharded_executor.h"
#include "testing/test_worlds.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace urbane::shard {
namespace {

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectSameResult(const core::QueryResult& sharded,
                      const core::QueryResult& serial,
                      const std::string& what) {
  ASSERT_EQ(sharded.size(), serial.size()) << what;
  for (std::size_t r = 0; r < serial.size(); ++r) {
    const bool both_nan =
        std::isnan(sharded.values[r]) && std::isnan(serial.values[r]);
    EXPECT_TRUE(both_nan ||
                DoubleBits(sharded.values[r]) == DoubleBits(serial.values[r]))
        << what << " region " << r << ": " << sharded.values[r] << " vs "
        << serial.values[r];
    EXPECT_EQ(sharded.counts[r], serial.counts[r]) << what << " region " << r;
  }
}

// A random tiling of [0, rows): cut count in [0, max_cuts], cut positions
// uniform WITH repetition — repeats make empty shards, adjacent cuts make
// single-point shards, and clustering near one end makes skew. All three
// degenerate partition families fall out of one generator.
std::vector<core::RowRange> RandomPartition(Rng& rng, std::uint64_t rows,
                                            std::size_t max_cuts) {
  std::vector<std::uint64_t> cuts;
  const std::size_t num_cuts =
      static_cast<std::size_t>(rng.NextInt(0, static_cast<int>(max_cuts)));
  for (std::size_t i = 0; i < num_cuts; ++i) {
    cuts.push_back(
        static_cast<std::uint64_t>(rng.NextInt(0, static_cast<int>(rows))));
  }
  std::sort(cuts.begin(), cuts.end());
  std::vector<core::RowRange> shards;
  std::uint64_t prev = 0;
  for (const std::uint64_t cut : cuts) {
    shards.push_back(core::RowRange{prev, cut});
    prev = cut;
  }
  shards.push_back(core::RowRange{prev, rows});
  return shards;
}

TEST(ShardPropertyTest, AnyPartitionMatchesSerialScan) {
  const data::PointTable points = testing::MakeDyadicPoints(2000, 0xA11CE);
  const data::RegionSet regions = testing::MakeRandomRegions(6, 0xCAFE);
  auto serial = core::ScanJoin::Create(points, regions);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  Rng rng(0x9E3779B9);

  const std::vector<core::AggregateSpec> aggregates = {
      core::AggregateSpec::Count(), core::AggregateSpec::Sum("v"),
      core::AggregateSpec::Avg("v"), core::AggregateSpec::Min("v"),
      core::AggregateSpec::Max("v")};

  for (int trial = 0; trial < 12; ++trial) {
    ShardedExecutorOptions options;
    options.explicit_shards = RandomPartition(rng, points.size(), 9);
    options.pool = &pool;
    auto sharded = ShardedExecutor::Create(
        points, regions, core::ExecutionMethod::kScan, options);
    ASSERT_TRUE(sharded.ok());
    for (const core::AggregateSpec& aggregate : aggregates) {
      core::AggregationQuery query;
      query.points = &points;
      query.regions = &regions;
      query.aggregate = aggregate;
      auto sharded_result = (*sharded)->Execute(query);
      ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();
      auto serial_result = (*serial)->Execute(query);
      ASSERT_TRUE(serial_result.ok());
      ExpectSameResult(*sharded_result, *serial_result,
                       "trial " + std::to_string(trial) + " shards " +
                           std::to_string(options.explicit_shards.size()));
    }
  }
}

// The named degenerate partitions, pinned explicitly so a generator change
// can never silently stop covering them.
TEST(ShardPropertyTest, DegeneratePartitionsMatchSerial) {
  const data::PointTable points = testing::MakeDyadicPoints(500, 0xBEA7);
  const data::RegionSet regions = testing::MakeRandomRegions(5, 0xF00D);
  auto serial = core::ScanJoin::Create(points, regions);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  const std::uint64_t n = points.size();

  const std::vector<std::vector<core::RowRange>> partitions = {
      // All empty but one.
      {{0, 0}, {0, 0}, {0, n}, {n, n}},
      // Single-point leading shards.
      {{0, 1}, {1, 2}, {2, 3}, {3, n}},
      // Heavy skew: 1 row vs everything.
      {{0, n - 1}, {n - 1, n}},
      // Every shard empty except a single-point one at the end.
      {{0, 0}, {0, n - 1}, {n - 1, n}, {n, n}},
  };
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    ShardedExecutorOptions options;
    options.explicit_shards = partitions[p];
    options.pool = &pool;
    auto sharded = ShardedExecutor::Create(
        points, regions, core::ExecutionMethod::kScan, options);
    ASSERT_TRUE(sharded.ok());
    core::AggregationQuery query;
    query.points = &points;
    query.regions = &regions;
    query.aggregate = core::AggregateSpec::Avg("v");
    auto sharded_result = (*sharded)->Execute(query);
    ASSERT_TRUE(sharded_result.ok());
    auto serial_result = (*serial)->Execute(query);
    ASSERT_TRUE(serial_result.ok());
    ExpectSameResult(*sharded_result, *serial_result,
                     "degenerate partition " + std::to_string(p));
  }
}

TEST(ShardPropertyTest, MalformedExplicitPartitionsAreRejected) {
  const data::PointTable points = testing::MakeDyadicPoints(100, 0x5EED);
  const data::RegionSet regions = testing::MakeRandomRegions(3, 0xFEED);
  const std::uint64_t n = points.size();

  const std::vector<std::vector<core::RowRange>> bad = {
      {{0, 50}},                 // does not cover all rows
      {{0, 50}, {60, n}},        // gap
      {{0, 60}, {50, n}},        // overlap / non-ascending
      {{5, n}},                  // does not start at 0
  };
  for (std::size_t p = 0; p < bad.size(); ++p) {
    ShardedExecutorOptions options;
    options.explicit_shards = bad[p];
    auto sharded = ShardedExecutor::Create(
        points, regions, core::ExecutionMethod::kScan, options);
    ASSERT_TRUE(sharded.ok());
    core::AggregationQuery query;
    query.points = &points;
    query.regions = &regions;
    auto result = (*sharded)->Execute(query);
    EXPECT_FALSE(result.ok()) << "partition " << p << " accepted";
  }
}

}  // namespace
}  // namespace urbane::shard
