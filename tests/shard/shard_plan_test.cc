// ShardPlan invariants: every plan tiles [0, rows) exactly, in order, with
// exactly M entries, whatever the alignment does to the boundaries — the
// disjointness the merge contract stands on.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/row_range.h"
#include "shard/shard_plan.h"

namespace urbane::shard {
namespace {

void ExpectTiles(const ShardPlan& plan, std::uint64_t rows,
                 std::size_t shards) {
  ASSERT_EQ(plan.size(), shards);
  std::uint64_t expect = 0;
  for (const core::RowRange& s : plan.shards) {
    EXPECT_EQ(s.begin, expect);
    EXPECT_LE(s.begin, s.end);
    expect = s.end;
  }
  EXPECT_EQ(expect, rows);
}

TEST(ShardPlanTest, TilesExactlyForEveryCount) {
  for (const std::uint64_t rows : {0u, 1u, 2u, 7u, 100u, 1001u}) {
    for (const std::size_t m : {1u, 2u, 3u, 4u, 8u, 16u}) {
      ExpectTiles(MakeShardPlan(rows, m), rows, m);
    }
  }
}

TEST(ShardPlanTest, UnalignedShardsAreBalanced) {
  const ShardPlan plan = MakeShardPlan(1001, 4);
  ExpectTiles(plan, 1001, 4);
  for (const core::RowRange& s : plan.shards) {
    const std::uint64_t size = s.end - s.begin;
    EXPECT_GE(size, 1001u / 4);
    EXPECT_LE(size, 1001u / 4 + 1);
  }
}

TEST(ShardPlanTest, ZeroShardsMeansOne) {
  const ShardPlan plan = MakeShardPlan(100, 0);
  ExpectTiles(plan, 100, 1);
}

TEST(ShardPlanTest, AlignmentSnapsInteriorBoundaries) {
  const ShardPlan plan = MakeShardPlan(1000, 3, /*align_rows=*/128);
  ExpectTiles(plan, 1000, 3);
  for (std::size_t s = 0; s + 1 < plan.size(); ++s) {
    EXPECT_EQ(plan.shards[s].end % 128, 0u) << "interior boundary " << s;
  }
  // The last boundary is the row count itself, aligned or not.
  EXPECT_EQ(plan.shards.back().end, 1000u);
}

TEST(ShardPlanTest, AlignmentLargerThanShareYieldsEmptyLeadingShards) {
  // 100 rows over 4 shards with 4096-row blocks: every interior boundary
  // snaps to 0, so the first three shards are empty and the last owns all
  // rows. Empty shards stay in the plan (well-formed empty partials).
  const ShardPlan plan = MakeShardPlan(100, 4, /*align_rows=*/4096);
  ExpectTiles(plan, 100, 4);
  EXPECT_EQ(plan.shards[0].end, plan.shards[0].begin);
  EXPECT_EQ(plan.shards[1].end, plan.shards[1].begin);
  EXPECT_EQ(plan.shards[2].end, plan.shards[2].begin);
  EXPECT_EQ(plan.shards[3].end - plan.shards[3].begin, 100u);
}

TEST(ShardPlanTest, PlanIsPureFunctionOfItsInputs) {
  for (int repeat = 0; repeat < 3; ++repeat) {
    const ShardPlan a = MakeShardPlan(12345, 8, 256);
    const ShardPlan b = MakeShardPlan(12345, 8, 256);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      EXPECT_EQ(a.shards[s].begin, b.shards[s].begin);
      EXPECT_EQ(a.shards[s].end, b.shards[s].end);
    }
  }
}

TEST(IntersectCandidatesTest, NullCandidatesMeansWholeShard) {
  const core::RowRangeSet set =
      IntersectCandidates(nullptr, core::RowRange{10, 50});
  ASSERT_EQ(set.ranges().size(), 1u);
  EXPECT_EQ(set.ranges()[0].begin, 10u);
  EXPECT_EQ(set.ranges()[0].end, 50u);
}

TEST(IntersectCandidatesTest, NullCandidatesEmptyShardIsEmpty) {
  EXPECT_TRUE(IntersectCandidates(nullptr, core::RowRange{10, 10}).empty());
}

TEST(IntersectCandidatesTest, ClipsRangesToTheShard) {
  core::RowRangeSet candidates(
      {core::RowRange{0, 20}, core::RowRange{30, 40}, core::RowRange{60, 90}});
  const core::RowRangeSet set =
      IntersectCandidates(&candidates, core::RowRange{15, 70});
  ASSERT_EQ(set.ranges().size(), 3u);
  EXPECT_EQ(set.ranges()[0].begin, 15u);
  EXPECT_EQ(set.ranges()[0].end, 20u);
  EXPECT_EQ(set.ranges()[1].begin, 30u);
  EXPECT_EQ(set.ranges()[1].end, 40u);
  EXPECT_EQ(set.ranges()[2].begin, 60u);
  EXPECT_EQ(set.ranges()[2].end, 70u);
}

TEST(IntersectCandidatesTest, FullyPrunedShardYieldsEmptySet) {
  core::RowRangeSet candidates({core::RowRange{0, 10}});
  EXPECT_TRUE(
      IntersectCandidates(&candidates, core::RowRange{50, 80}).empty());
}

// Sharding composes with pruning: the per-shard intersections of any
// candidate set partition the candidate rows exactly.
TEST(IntersectCandidatesTest, ShardIntersectionsPartitionTheCandidates) {
  core::RowRangeSet candidates(
      {core::RowRange{5, 25}, core::RowRange{40, 45}, core::RowRange{60, 99}});
  const ShardPlan plan = MakeShardPlan(100, 7);
  std::uint64_t covered = 0;
  for (const core::RowRange& shard : plan.shards) {
    const core::RowRangeSet piece = IntersectCandidates(&candidates, shard);
    for (const core::RowRange& r : piece.ranges()) {
      covered += r.end - r.begin;
      EXPECT_TRUE(candidates.Contains(r.begin));
      EXPECT_TRUE(candidates.Contains(r.end - 1));
      EXPECT_GE(r.begin, shard.begin);
      EXPECT_LE(r.end, shard.end);
    }
  }
  EXPECT_EQ(covered, 20u + 5u + 39u);
}

}  // namespace
}  // namespace urbane::shard
