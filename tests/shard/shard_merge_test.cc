// The shard-merge contract, aggregate by aggregate — including the unit
// counterexample that kills the naive AVG merge: averaging per-shard
// averages is wrong whenever shard sizes differ, which is why shards
// execute SUM and the merge divides (Σsum, Σcount) once.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/aggregate.h"
#include "shard/shard_merge.h"

namespace urbane::shard {
namespace {

core::QueryResult Partial(std::vector<double> values,
                          std::vector<std::uint64_t> counts,
                          std::vector<double> bounds = {}) {
  core::QueryResult partial;
  partial.values = std::move(values);
  partial.counts = std::move(counts);
  partial.error_bounds = std::move(bounds);
  return partial;
}

TEST(ShardExecutionKindTest, OnlyAvgRemaps) {
  EXPECT_EQ(ShardExecutionKind(core::AggregateKind::kCount),
            core::AggregateKind::kCount);
  EXPECT_EQ(ShardExecutionKind(core::AggregateKind::kSum),
            core::AggregateKind::kSum);
  EXPECT_EQ(ShardExecutionKind(core::AggregateKind::kAvg),
            core::AggregateKind::kSum);
  EXPECT_EQ(ShardExecutionKind(core::AggregateKind::kMin),
            core::AggregateKind::kMin);
  EXPECT_EQ(ShardExecutionKind(core::AggregateKind::kMax),
            core::AggregateKind::kMax);
}

// The satellite counterexample. Shard A holds {2, 4} (sum 6, count 2),
// shard B holds {12} (sum 12, count 1). True average = 18/3 = 6. The naive
// merge — average of per-shard averages — gives (3 + 12)/2 = 7.5. The
// (sum, count) merge must produce exactly 6 and thereby fail the naive
// value.
TEST(ShardMergeTest, AvgMergesSumCountPairsNotAverages) {
  const std::vector<core::QueryResult> partials = {
      Partial({6.0}, {2}),   // SUM partial of shard A = {2, 4}
      Partial({12.0}, {1}),  // SUM partial of shard B = {12}
  };
  const auto merged =
      MergeShardPartials(core::AggregateKind::kAvg, partials);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->values[0], 6.0);
  EXPECT_EQ(merged->counts[0], 3u);

  const double naive = (6.0 / 2.0 + 12.0 / 1.0) / 2.0;
  EXPECT_EQ(naive, 7.5);  // what average-of-averages would have produced
  EXPECT_NE(merged->values[0], naive);
}

TEST(ShardMergeTest, AvgOfNoPointsIsNaNLikeFinalize) {
  const std::vector<core::QueryResult> partials = {Partial({0.0}, {0}),
                                                   Partial({0.0}, {0})};
  const auto merged =
      MergeShardPartials(core::AggregateKind::kAvg, partials);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(std::isnan(merged->values[0]));
  EXPECT_EQ(merged->counts[0], 0u);
}

TEST(ShardMergeTest, CountAndSumAreAdditive) {
  const std::vector<core::QueryResult> partials = {
      Partial({3.0, 0.0}, {3, 0}), Partial({5.0, 2.0}, {5, 2})};
  const auto count =
      MergeShardPartials(core::AggregateKind::kCount, partials);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->values[0], 8.0);
  EXPECT_EQ(count->values[1], 2.0);
  EXPECT_EQ(count->counts[0], 8u);

  const auto sum = MergeShardPartials(core::AggregateKind::kSum, partials);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->values[0], 8.0);
  EXPECT_EQ(sum->values[1], 2.0);
}

TEST(ShardMergeTest, MinMaxSkipNaNEmptyShards) {
  const double nan = std::nan("");
  // Region 0: only shard 1 saw points. Region 1: no shard did.
  const std::vector<core::QueryResult> partials = {
      Partial({nan, nan}, {0, 0}), Partial({-4.5, nan}, {3, 0}),
      Partial({nan, nan}, {0, 0})};
  const auto merged_min =
      MergeShardPartials(core::AggregateKind::kMin, partials);
  ASSERT_TRUE(merged_min.ok());
  EXPECT_EQ(merged_min->values[0], -4.5);
  EXPECT_TRUE(std::isnan(merged_min->values[1]));

  const auto merged_max =
      MergeShardPartials(core::AggregateKind::kMax, partials);
  ASSERT_TRUE(merged_max.ok());
  EXPECT_EQ(merged_max->values[0], -4.5);
  EXPECT_TRUE(std::isnan(merged_max->values[1]));
}

TEST(ShardMergeTest, MinMaxFoldAcrossShards) {
  const std::vector<core::QueryResult> partials = {
      Partial({2.0}, {4}), Partial({-1.0}, {1}), Partial({7.0}, {2})};
  const auto merged_min =
      MergeShardPartials(core::AggregateKind::kMin, partials);
  ASSERT_TRUE(merged_min.ok());
  EXPECT_EQ(merged_min->values[0], -1.0);
  const auto merged_max =
      MergeShardPartials(core::AggregateKind::kMax, partials);
  ASSERT_TRUE(merged_max.ok());
  EXPECT_EQ(merged_max->values[0], 7.0);
  EXPECT_EQ(merged_max->counts[0], 7u);
}

TEST(ShardMergeTest, ErrorBoundsAddAndPropagatePresence) {
  const std::vector<core::QueryResult> with_bounds = {
      Partial({1.0}, {1}, {0.5}), Partial({2.0}, {2}, {1.5})};
  const auto merged =
      MergeShardPartials(core::AggregateKind::kSum, with_bounds);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->error_bounds.size(), 1u);
  EXPECT_EQ(merged->error_bounds[0], 2.0);

  const std::vector<core::QueryResult> without = {Partial({1.0}, {1}),
                                                  Partial({2.0}, {2})};
  const auto plain = MergeShardPartials(core::AggregateKind::kSum, without);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->error_bounds.empty());
}

TEST(ShardMergeTest, MergeIsAFunctionOfPartialsNotArrivalOrder) {
  // Same partials presented in the same slot order must merge identically
  // however many times we run it — the executor guarantees slot order, the
  // merge guarantees purity.
  const std::vector<core::QueryResult> partials = {
      Partial({0.1, 0.2}, {1, 2}, {0.0, 0.25}),
      Partial({0.3, 0.4}, {3, 4}, {0.5, 0.0})};
  const auto once = MergeShardPartials(core::AggregateKind::kSum, partials);
  const auto twice = MergeShardPartials(core::AggregateKind::kSum, partials);
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once->values, twice->values);
  EXPECT_EQ(once->counts, twice->counts);
  EXPECT_EQ(once->error_bounds, twice->error_bounds);
}

TEST(ShardMergeTest, RejectsNoPartials) {
  EXPECT_FALSE(MergeShardPartials(core::AggregateKind::kCount, {}).ok());
}

TEST(ShardMergeTest, RejectsRegionCountDisagreement) {
  const std::vector<core::QueryResult> partials = {
      Partial({1.0}, {1}), Partial({1.0, 2.0}, {1, 2})};
  EXPECT_FALSE(
      MergeShardPartials(core::AggregateKind::kCount, partials).ok());
}

TEST(ShardMergeTest, RejectsMalformedBounds) {
  const std::vector<core::QueryResult> partials = {
      Partial({1.0, 2.0}, {1, 2}, {0.5})};  // bounds shorter than values
  EXPECT_FALSE(
      MergeShardPartials(core::AggregateKind::kSum, partials).ok());
}

}  // namespace
}  // namespace urbane::shard
