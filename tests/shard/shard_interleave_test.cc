// Deterministic concurrency harness: shard completions are forced into
// adversarial orders (reverse, odd/even, rotations) via the completion
// hook, which blocks each shard until the prescribed permutation says it
// may publish. Whatever the completion order, the merged result must be
// bit-identical — the gather merges slots in shard-index order, so arrival
// order is unobservable. This is the GatedBackend trick from the server
// suite applied to the shard layer.
#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "shard/sharded_executor.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::shard {
namespace {

constexpr std::size_t kShards = 4;

// Blocks each shard's publish until every shard earlier in `order` has
// published. All kShards tasks must be in flight at once (the pool has
// kShards workers), so each waits on the others regardless of how the
// scheduler interleaved their execution.
class PublishGate {
 public:
  explicit PublishGate(std::vector<std::size_t> order)
      : order_(std::move(order)) {}

  void WaitForTurn(std::size_t shard) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return next_ < order_.size() && order_[next_] == shard;
    });
    ++next_;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::size_t> order_;
  std::size_t next_ = 0;
};

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitIdentical(const core::QueryResult& a,
                        const core::QueryResult& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.error_bounds.size(), b.error_bounds.size()) << what;
  for (std::size_t r = 0; r < a.size(); ++r) {
    const bool both_nan = std::isnan(a.values[r]) && std::isnan(b.values[r]);
    EXPECT_TRUE(both_nan ||
                DoubleBits(a.values[r]) == DoubleBits(b.values[r]))
        << what << " region " << r;
    EXPECT_EQ(a.counts[r], b.counts[r]) << what << " region " << r;
    if (!a.error_bounds.empty()) {
      EXPECT_EQ(DoubleBits(a.error_bounds[r]), DoubleBits(b.error_bounds[r]))
          << what << " bound " << r;
    }
  }
}

class ShardInterleaveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    points_ = testing::MakeUniformPoints(3000, 0xC0FFEE);
    regions_ = testing::MakeRandomRegions(6, 0x7EA);
  }

  core::QueryResult RunWithOrder(core::ExecutionMethod method,
                                 const std::vector<std::size_t>& order,
                                 const core::AggregateSpec& aggregate) {
    // Exactly kShards workers: every shard task is in flight, so the gate
    // can hold all of them and release in the hostile order.
    ThreadPool pool(kShards);
    PublishGate gate(order);
    ShardedExecutorOptions options;
    options.num_shards = kShards;
    options.pool = &pool;
    options.completion_hook = [&gate](std::size_t shard) {
      gate.WaitForTurn(shard);
    };
    core::RasterJoinOptions raster;
    raster.resolution = 256;
    auto sharded =
        ShardedExecutor::Create(points_, regions_, method, options, raster);
    EXPECT_TRUE(sharded.ok());
    core::AggregationQuery query;
    query.points = &points_;
    query.regions = &regions_;
    query.aggregate = aggregate;
    auto result = (*sharded)->Execute(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result) : core::QueryResult();
  }

  data::PointTable points_;
  data::RegionSet regions_;
};

TEST_F(ShardInterleaveTest, CompletionOrderIsUnobservable) {
  const std::vector<std::vector<std::size_t>> orders = {
      {0, 1, 2, 3},  // in-order baseline
      {3, 2, 1, 0},  // fully reversed
      {1, 3, 0, 2},  // odd shards first
      {2, 0, 3, 1},  // rotation + swap
  };
  for (const core::ExecutionMethod method :
       {core::ExecutionMethod::kScan, core::ExecutionMethod::kBoundedRaster}) {
    for (const core::AggregateSpec& aggregate :
         {core::AggregateSpec::Sum("v"), core::AggregateSpec::Avg("v"),
          core::AggregateSpec::Min("v")}) {
      const core::QueryResult baseline =
          RunWithOrder(method, orders[0], aggregate);
      for (std::size_t o = 1; o < orders.size(); ++o) {
        const core::QueryResult hostile =
            RunWithOrder(method, orders[o], aggregate);
        ExpectBitIdentical(
            hostile, baseline,
            std::string(core::ExecutionMethodToString(method)) + " order " +
                std::to_string(o));
      }
    }
  }
}

// The two scheduling endpoints — all-inline (serial_scatter) and fully
// concurrent with a hostile publish order — bracket every real schedule.
TEST_F(ShardInterleaveTest, SerialScatterMatchesConcurrentScatter) {
  ShardedExecutorOptions serial_options;
  serial_options.num_shards = kShards;
  serial_options.serial_scatter = true;
  auto serial_sharded = ShardedExecutor::Create(
      points_, regions_, core::ExecutionMethod::kScan, serial_options);
  ASSERT_TRUE(serial_sharded.ok());
  core::AggregationQuery query;
  query.points = &points_;
  query.regions = &regions_;
  query.aggregate = core::AggregateSpec::Sum("v");
  auto inline_result = (*serial_sharded)->Execute(query);
  ASSERT_TRUE(inline_result.ok());

  const core::QueryResult concurrent = RunWithOrder(
      core::ExecutionMethod::kScan, {3, 1, 2, 0},
      core::AggregateSpec::Sum("v"));
  ExpectBitIdentical(concurrent, *inline_result, "inline vs concurrent");
}

}  // namespace
}  // namespace urbane::shard
