#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace urbane {
namespace {

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.009);
  EXPECT_LT(elapsed, 5.0);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.005);
}

TEST(WallTimerTest, UnitConversions) {
  WallTimer timer;
  const double s = timer.ElapsedSeconds();
  EXPECT_GE(timer.ElapsedMillis(), s * 1e3);
  EXPECT_GE(timer.ElapsedMicros(), s * 1e6);
}

TEST(LatencyStatsTest, EmptyStatsAreZero) {
  LatencyStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.MinSeconds(), 0.0);
  EXPECT_EQ(stats.MaxSeconds(), 0.0);
  EXPECT_EQ(stats.MeanSeconds(), 0.0);
  EXPECT_EQ(stats.PercentileSeconds(95), 0.0);
}

TEST(LatencyStatsTest, MinMaxMean) {
  LatencyStats stats;
  stats.AddSample(1.0);
  stats.AddSample(2.0);
  stats.AddSample(3.0);
  EXPECT_DOUBLE_EQ(stats.MinSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(stats.MaxSeconds(), 3.0);
  EXPECT_DOUBLE_EQ(stats.MeanSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(stats.MedianSeconds(), 2.0);
}

TEST(LatencyStatsTest, PercentileInterpolates) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.AddSample(static_cast<double>(i));
  }
  EXPECT_NEAR(stats.PercentileSeconds(0), 1.0, 1e-9);
  EXPECT_NEAR(stats.PercentileSeconds(100), 100.0, 1e-9);
  EXPECT_NEAR(stats.PercentileSeconds(50), 50.5, 1e-9);
  // Out-of-range pct clamps.
  EXPECT_NEAR(stats.PercentileSeconds(150), 100.0, 1e-9);
}

TEST(LatencyStatsTest, ClearResets) {
  LatencyStats stats;
  stats.AddSample(1.0);
  stats.Clear();
  EXPECT_TRUE(stats.empty());
}

TEST(FormatDurationTest, PicksAdaptiveUnits) {
  EXPECT_EQ(FormatDuration(2.5), "2.50s");
  EXPECT_EQ(FormatDuration(0.0125), "12.50ms");
  EXPECT_EQ(FormatDuration(42e-6), "42.0us");
  EXPECT_EQ(FormatDuration(120e-9), "120ns");
}

}  // namespace
}  // namespace urbane
