#include "util/string_util.h"

#include <gtest/gtest.h>

namespace urbane {
namespace {

TEST(SplitStringTest, BasicSplit) {
  const auto fields = SplitString("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitStringTest, PreservesEmptyFields) {
  const auto fields = SplitString("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitStringTest, EmptyInputIsOneEmptyField) {
  const auto fields = SplitString("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(TrimWhitespace("word"), "word");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(JoinStringsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo123"), "hello123");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  7 ").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(ParseInt64Test, ParsesAndRejects) {
  EXPECT_EQ(ParseInt64("-42").value(), -42);
  EXPECT_EQ(ParseInt64("1230768000").value(), 1230768000);
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.005), "1.00");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, HandlesLongOutput) {
  const std::string long_arg(5000, 'a');
  const std::string out = StringPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace urbane
