// LatencyRecorder: the phase-isolation regression (a later phase's
// percentiles must never see an earlier phase's samples) plus the
// non-mutating-summary contract bench_server_load depends on.
#include "util/latency.h"

#include <gtest/gtest.h>

#include <vector>

namespace urbane {
namespace {

TEST(LatencyRecorderTest, SummarizesOrderStatistics) {
  LatencyRecorder recorder;
  for (const double v : {5.0, 1.0, 4.0, 2.0, 3.0}) recorder.Record(v);
  const LatencySummary s = recorder.Summarize();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.p50, 3.0);
  // Interpolated tails: p95 of 5 samples sits at position 3.8.
  EXPECT_NEAR(s.p95, 4.8, 1e-12);
  EXPECT_NEAR(s.p99, 4.96, 1e-12);
}

TEST(LatencyRecorderTest, EmptyPhaseSummarizesToZeros) {
  const LatencySummary s = LatencyRecorder().Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

// The regression that motivated the type: without a reset between phases,
// a slow phase A (100ms tail) bleeds into a fast phase B and inflates B's
// p99 by an order of magnitude. With Reset(), phase B's summary is a pure
// function of phase B's samples.
TEST(LatencyRecorderTest, ResetIsolatesPhases) {
  LatencyRecorder recorder;
  for (int i = 0; i < 100; ++i) recorder.Record(100.0);  // slow phase A
  const LatencySummary phase_a = recorder.Summarize();
  EXPECT_EQ(phase_a.p99, 100.0);

  recorder.Reset();
  EXPECT_TRUE(recorder.empty());
  for (int i = 0; i < 100; ++i) recorder.Record(1.0);  // fast phase B
  const LatencySummary phase_b = recorder.Summarize();
  EXPECT_EQ(phase_b.count, 100u);
  EXPECT_EQ(phase_b.p99, 1.0);
  EXPECT_EQ(phase_b.max, 1.0);

  // The failure mode being pinned: had phase A leaked in, the p99 over
  // the blended 200 samples would be A's 100ms, not B's 1ms.
  LatencyRecorder blended;
  for (int i = 0; i < 100; ++i) blended.Record(100.0);
  for (int i = 0; i < 100; ++i) blended.Record(1.0);
  EXPECT_EQ(blended.Summarize().p99, 100.0);
  EXPECT_NE(blended.Summarize().p99, phase_b.p99);
}

TEST(LatencyRecorderTest, SummarizeDoesNotMutateOrReorder) {
  LatencyRecorder recorder;
  const std::vector<double> arrival = {9.0, 2.0, 7.0, 1.0};
  for (const double v : arrival) recorder.Record(v);
  const LatencySummary once = recorder.Summarize();
  EXPECT_EQ(recorder.samples(), arrival);  // still in arrival order
  const LatencySummary twice = recorder.Summarize();
  EXPECT_EQ(once.p50, twice.p50);
  EXPECT_EQ(once.p99, twice.p99);
  EXPECT_EQ(recorder.size(), arrival.size());
}

TEST(LatencyRecorderTest, MergeFoldsPerClientRecorders) {
  LatencyRecorder client_a;
  client_a.Record(1.0);
  client_a.Record(2.0);
  LatencyRecorder client_b;
  client_b.Record(3.0);

  LatencyRecorder phase;
  phase.Merge(client_a);
  phase.Merge(client_b);
  EXPECT_EQ(phase.size(), 3u);
  EXPECT_EQ(phase.Summarize().mean, 2.0);
  // Sources untouched — they can be merged again into another phase.
  EXPECT_EQ(client_a.size(), 2u);
  EXPECT_EQ(client_b.size(), 1u);
}

}  // namespace
}  // namespace urbane
