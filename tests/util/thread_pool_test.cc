#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace urbane {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  ParallelFor(&pool, touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  int count = 0;
  ParallelFor(nullptr, 100,
              [&](std::size_t begin, std::size_t end) {
                count += static_cast<int>(end - begin);
              });
  EXPECT_EQ(count, 100);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallCountRunsInline) {
  ThreadPool pool(4);
  std::size_t total = 0;  // safe: inline path runs on this thread
  ParallelFor(
      &pool, 10,
      [&](std::size_t begin, std::size_t end) { total += end - begin; },
      /*min_chunk=*/1024);
  EXPECT_EQ(total, 10u);
}

TEST(DefaultThreadPoolTest, IsSingleton) {
  EXPECT_EQ(DefaultThreadPool(), DefaultThreadPool());
  EXPECT_GE(DefaultThreadPool()->num_threads(), 1u);
}

}  // namespace
}  // namespace urbane
