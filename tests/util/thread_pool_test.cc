#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

namespace urbane {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  ParallelFor(&pool, touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  int count = 0;
  ParallelFor(nullptr, 100,
              [&](std::size_t begin, std::size_t end) {
                count += static_cast<int>(end - begin);
              });
  EXPECT_EQ(count, 100);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallCountRunsInline) {
  ThreadPool pool(4);
  std::size_t total = 0;  // safe: inline path runs on this thread
  ParallelFor(
      &pool, 10,
      [&](std::size_t begin, std::size_t end) { total += end - begin; },
      /*min_chunk=*/1024);
  EXPECT_EQ(total, 10u);
}

TEST(ThreadPoolBatchTest, WaitScopedToOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ThreadPool::Batch batch = pool.CreateBatch();
  for (int i = 0; i < 50; ++i) {
    batch.Submit([&counter] { counter.fetch_add(1); });
  }
  batch.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolBatchTest, BatchIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ThreadPool::Batch batch = pool.CreateBatch();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      batch.Submit([&counter] { counter.fetch_add(1); });
    }
    batch.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

// Regression: with the old pool-wide in_flight_ counter, two ParallelFor
// callers sharing one pool would each block until BOTH finished. Each
// caller's Wait must scope to its own chunks only.
TEST(ThreadPoolBatchTest, ConcurrentParallelForCallersDoNotEntangle) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  auto caller = [&] {
    for (int round = 0; round < 20; ++round) {
      ParallelFor(&pool, 2048,
                  [&](std::size_t begin, std::size_t end) {
                    total.fetch_add(static_cast<int>(end - begin));
                  },
                  /*min_chunk=*/64);
    }
  };
  std::thread a(caller);
  std::thread b(caller);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 20 * 2048);
}

// Regression: a task that submits a nested batch and waits on it used to
// deadlock a single-worker pool (the only worker was the waiter). The
// waiter must execute its batch's queued tasks itself.
TEST(ThreadPoolBatchTest, NestedSubmitWaitDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> inner_runs{0};
  ThreadPool::Batch outer = pool.CreateBatch();
  outer.Submit([&] {
    ThreadPool::Batch inner = pool.CreateBatch();
    for (int i = 0; i < 8; ++i) {
      inner.Submit([&inner_runs] { inner_runs.fetch_add(1); });
    }
    inner.Wait();
  });
  outer.Wait();
  EXPECT_EQ(inner_runs.load(), 8);
}

// A batch's Wait must return even while another batch holds a worker
// hostage on a long task.
TEST(ThreadPoolBatchTest, WaitDoesNotWaitForOtherBatches) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> slow_started{false};

  ThreadPool::Batch slow = pool.CreateBatch();
  slow.Submit([&slow_started, gate] {
    slow_started.store(true);
    gate.wait();
  });
  while (!slow_started.load()) {
    std::this_thread::yield();
  }

  ThreadPool::Batch quick = pool.CreateBatch();
  std::atomic<int> quick_runs{0};
  for (int i = 0; i < 16; ++i) {
    quick.Submit([&quick_runs] { quick_runs.fetch_add(1); });
  }
  quick.Wait();  // must not block on the gated slow task
  EXPECT_EQ(quick_runs.load(), 16);

  release.set_value();
  slow.Wait();
}

TEST(DefaultThreadPoolTest, IsSingleton) {
  EXPECT_EQ(DefaultThreadPool(), DefaultThreadPool());
  EXPECT_GE(DefaultThreadPool()->num_threads(), 1u);
}

}  // namespace
}  // namespace urbane
