#include "util/status.h"

#include <gtest/gtest.h>

namespace urbane {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("gone").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("dup").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("far").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("pre").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("oops").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("todo").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IoError("disk").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::IoError("disk").message(), "disk");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status status = Status::NotFound("missing file");
  EXPECT_EQ(status.ToString(), "NotFound: missing file");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Status UseHalf(int x, int* out) {
  URBANE_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  const Status status = UseHalf(7, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  URBANE_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace urbane
