#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace urbane {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BoundedUintStaysBelowBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
  }
}

TEST(RngTest, BoundedUintCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextUint64(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(2024);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextGaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(0.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continuation.
  Rng parent_copy(42);
  parent_copy.NextUint64();  // consume the value used to seed the fork
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.NextUint64() == parent_copy.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace urbane
