// AtomicFileWriter's crash-safety contract: a reader can only ever observe
// the old complete file or the new complete file — never a partial write,
// never a stray temp file after abandonment.
#include "util/file_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/csv.h"

namespace urbane {
namespace {

bool FileExists(const std::string& path) {
  return FileSizeBytes(path).ok();
}

TEST(FileUtilTest, FileSizeBytesReportsSizeAndMissingFails) {
  const std::string path = ::testing::TempDir() + "/size_probe.bin";
  ASSERT_TRUE(WriteStringToFile("hello", path).ok());
  auto size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  std::remove(path.c_str());
  EXPECT_FALSE(FileSizeBytes(path).ok());
}

TEST(AtomicFileWriterTest, CommitPublishesAllBytesAtOnce) {
  const std::string path = ::testing::TempDir() + "/atomic_commit.bin";
  auto writer = AtomicFileWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Write("abc", 3).ok());
  // Until Commit, the final path must not exist: readers see nothing.
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".tmp"));
  ASSERT_TRUE(writer->Write("def", 3).ok());
  EXPECT_EQ(writer->offset(), 6u);
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "abcdef");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, AbandonedWriterLeavesOldFileIntact) {
  const std::string path = ::testing::TempDir() + "/atomic_abandon.bin";
  ASSERT_TRUE(WriteStringToFile("old complete contents", path).ok());
  {
    auto writer = AtomicFileWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Write("half-writ", 9).ok());
    // Destroyed without Commit: an interrupted save.
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "old complete contents");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, CommitReplacesExistingFileAtomically) {
  const std::string path = ::testing::TempDir() + "/atomic_replace.bin";
  ASSERT_TRUE(WriteStringToFile("version one", path).ok());
  auto writer = AtomicFileWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Write("version two", 11).ok());
  // The old file stays readable right up to the rename.
  auto before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, "version one");
  ASSERT_TRUE(writer->Commit().ok());
  auto after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, "version two");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, OpenTruncatesStaleTempFromEarlierCrash) {
  const std::string path = ::testing::TempDir() + "/atomic_stale.bin";
  ASSERT_TRUE(WriteStringToFile("stale temp junk", path + ".tmp").ok());
  auto writer = AtomicFileWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Write("x", 1).ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "x");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane
