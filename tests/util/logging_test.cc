#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace urbane {
namespace {

// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotAbortOrThrow) {
  SetLogLevel(LogLevel::kError);
  URBANE_LOG(Debug) << "invisible " << 42;
  URBANE_LOG(Info) << "also invisible";
  URBANE_LOG(Warning) << "still invisible";
  SUCCEED();
}

TEST_F(LoggingTest, EnabledMessagesEmitWithoutCrashing) {
  SetLogLevel(LogLevel::kError);
  URBANE_LOG(Error) << "expected test error output " << 3.14;
  SUCCEED();
}

TEST_F(LoggingTest, CheckPassesOnTrueCondition) {
  URBANE_CHECK(1 + 1 == 2) << "never printed";
  URBANE_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST_F(LoggingTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH(URBANE_CHECK(false) << "boom", "Check failed");
}

TEST_F(LoggingTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(URBANE_CHECK_OK(Status::Internal("bad")), "Internal: bad");
}

TEST_F(LoggingTest, FatalLogAborts) {
  EXPECT_DEATH(URBANE_LOG(Fatal) << "fatal path", "fatal path");
}

}  // namespace
}  // namespace urbane
