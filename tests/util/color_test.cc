#include "util/color.h"

#include <gtest/gtest.h>

namespace urbane {
namespace {

TEST(ColormapTest, EndpointsMatchControlPoints) {
  const Colormap cm = Colormap::Make(ColormapKind::kViridis);
  EXPECT_EQ(cm.Map(0.0), cm.control_points().front());
  EXPECT_EQ(cm.Map(1.0), cm.control_points().back());
}

TEST(ColormapTest, ClampsOutOfRangeInput) {
  const Colormap cm = Colormap::Make(ColormapKind::kMagma);
  EXPECT_EQ(cm.Map(-3.0), cm.Map(0.0));
  EXPECT_EQ(cm.Map(7.0), cm.Map(1.0));
}

TEST(ColormapTest, GrayscaleMidpointIsGray) {
  const Colormap cm = Colormap::Make(ColormapKind::kGrayscale);
  const Rgb mid = cm.Map(0.5);
  EXPECT_NEAR(mid.r, 128, 1);
  EXPECT_EQ(mid.r, mid.g);
  EXPECT_EQ(mid.g, mid.b);
}

TEST(ColormapTest, InterpolationIsMonotoneForGrayscale) {
  const Colormap cm = Colormap::Make(ColormapKind::kGrayscale);
  int prev = -1;
  for (int i = 0; i <= 20; ++i) {
    const Rgb c = cm.Map(i / 20.0);
    EXPECT_GE(static_cast<int>(c.r), prev);
    prev = c.r;
  }
}

TEST(ColormapTest, MapRangeScalesValues) {
  const Colormap cm = Colormap::Make(ColormapKind::kGrayscale);
  EXPECT_EQ(cm.MapRange(5.0, 0.0, 10.0), cm.Map(0.5));
  EXPECT_EQ(cm.MapRange(-1.0, 0.0, 10.0), cm.Map(0.0));
}

TEST(ColormapTest, DegenerateRangeMapsLow) {
  const Colormap cm = Colormap::Make(ColormapKind::kViridis);
  EXPECT_EQ(cm.MapRange(5.0, 3.0, 3.0), cm.Map(0.0));
}

TEST(ColormapTest, CustomControlPoints) {
  const Colormap cm(std::vector<Rgb>{{0, 0, 0}, {100, 0, 0}, {200, 0, 0}});
  EXPECT_EQ(cm.Map(0.5).r, 100);
  EXPECT_EQ(cm.Map(0.25).r, 50);
}

TEST(ColormapTest, AllBuiltinsHaveAtLeastTwoStops) {
  for (const ColormapKind kind :
       {ColormapKind::kViridis, ColormapKind::kMagma,
        ColormapKind::kBlueOrange, ColormapKind::kGrayscale}) {
    EXPECT_GE(Colormap::Make(kind).control_points().size(), 2u);
  }
}

TEST(RgbToHexTest, FormatsLowercaseHex) {
  EXPECT_EQ(RgbToHex({255, 0, 16}), "#ff0010");
  EXPECT_EQ(RgbToHex({0, 0, 0}), "#000000");
}

}  // namespace
}  // namespace urbane
