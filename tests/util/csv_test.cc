#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace urbane {
namespace {

TEST(ParseCsvTest, HeaderAndRows) {
  const auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][2], "6");
}

TEST(ParseCsvTest, QuotedFieldsWithCommasAndNewlines) {
  const auto doc = ParseCsv("name,notes\nalice,\"hi, there\"\nbob,\"l1\nl2\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "hi, there");
  EXPECT_EQ(doc->rows[1][1], "l1\nl2");
}

TEST(ParseCsvTest, EscapedQuotes) {
  const auto doc = ParseCsv("q\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "she said \"hi\"");
}

TEST(ParseCsvTest, CrLfLineEndings) {
  const auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][1], "2");
}

TEST(ParseCsvTest, NoTrailingNewline) {
  const auto doc = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
}

TEST(ParseCsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(ParseCsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(ParseCsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(ParseCsvTest, CustomDelimiter) {
  const auto doc = ParseCsv("a;b\n1;2\n", ';');
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "1");
}

TEST(WriteCsvTest, RoundTripsQuoting) {
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"plain", "with,comma"}, {"quote\"inside", "line\nbreak"}};
  const std::string text = WriteCsv(doc);
  const auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvDocumentTest, ColumnIndex) {
  CsvDocument doc;
  doc.header = {"x", "y", "t"};
  EXPECT_EQ(doc.ColumnIndex("y"), 1);
  EXPECT_EQ(doc.ColumnIndex("missing"), -1);
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/csv_test_roundtrip.csv";
  CsvDocument doc;
  doc.header = {"a"};
  doc.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(WriteCsvFile(doc, path).ok());
  const auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(ReadFileToStringTest, MissingFileFails) {
  EXPECT_FALSE(ReadFileToString("/nonexistent/definitely/missing").ok());
}

}  // namespace
}  // namespace urbane
