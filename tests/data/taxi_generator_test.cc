#include "data/taxi_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace urbane::data {
namespace {

TaxiGeneratorOptions SmallOptions() {
  TaxiGeneratorOptions options;
  options.num_trips = 20000;
  options.seed = 123;
  return options;
}

TEST(TaxiGeneratorTest, ProducesRequestedRows) {
  const PointTable table = GenerateTaxiTrips(SmallOptions());
  EXPECT_EQ(table.size(), 20000u);
  EXPECT_TRUE(table.Validate().ok());
  EXPECT_EQ(table.schema().attribute_count(), 4u);
  EXPECT_TRUE(table.schema().HasAttribute("fare_amount"));
  EXPECT_TRUE(table.schema().HasAttribute("trip_distance"));
}

TEST(TaxiGeneratorTest, PointsInsideBounds) {
  const TaxiGeneratorOptions options = SmallOptions();
  const PointTable table = GenerateTaxiTrips(options);
  const auto bounds = table.Bounds();
  EXPECT_TRUE(options.bounds.Expanded(1.0).Contains(bounds));
}

TEST(TaxiGeneratorTest, TimesWithinWindow) {
  const TaxiGeneratorOptions options = SmallOptions();
  const PointTable table = GenerateTaxiTrips(options);
  const auto [t0, t1] = table.TimeRange();
  EXPECT_GE(t0, options.start_time);
  EXPECT_LT(t1, options.start_time + options.duration_seconds);
}

TEST(TaxiGeneratorTest, DeterministicForSeed) {
  const PointTable a = GenerateTaxiTrips(SmallOptions());
  const PointTable b = GenerateTaxiTrips(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.x(i), b.x(i));
    EXPECT_EQ(a.t(i), b.t(i));
    EXPECT_EQ(a.attribute(i, 0), b.attribute(i, 0));
  }
}

TEST(TaxiGeneratorTest, DifferentSeedsDiffer) {
  TaxiGeneratorOptions other = SmallOptions();
  other.seed = 999;
  const PointTable a = GenerateTaxiTrips(SmallOptions());
  const PointTable b = GenerateTaxiTrips(other);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (a.x(i) == b.x(i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(TaxiGeneratorTest, FareCorrelatesWithDistance) {
  const PointTable table = GenerateTaxiTrips(SmallOptions());
  const auto& fare = table.attribute_column(0);
  const auto& dist = table.attribute_column(1);
  double mean_f = 0.0;
  double mean_d = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    mean_f += fare[i];
    mean_d += dist[i];
  }
  mean_f /= table.size();
  mean_d /= table.size();
  double cov = 0.0;
  double var_f = 0.0;
  double var_d = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    cov += (fare[i] - mean_f) * (dist[i] - mean_d);
    var_f += (fare[i] - mean_f) * (fare[i] - mean_f);
    var_d += (dist[i] - mean_d) * (dist[i] - mean_d);
  }
  const double corr = cov / std::sqrt(var_f * var_d);
  EXPECT_GT(corr, 0.9);
}

TEST(TaxiGeneratorTest, SpatialSkewHotspotsDenser) {
  // With 85% of mass in hotspots, the densest 1% of grid cells should hold
  // far more than 1% of points.
  const PointTable table = GenerateTaxiTrips(SmallOptions());
  const auto bounds = table.Bounds();
  constexpr int kGrid = 50;
  std::vector<std::size_t> cells(kGrid * kGrid, 0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    int cx = static_cast<int>((table.x(i) - bounds.min_x) / bounds.Width() *
                              kGrid);
    int cy = static_cast<int>((table.y(i) - bounds.min_y) / bounds.Height() *
                              kGrid);
    cx = std::clamp(cx, 0, kGrid - 1);
    cy = std::clamp(cy, 0, kGrid - 1);
    ++cells[static_cast<std::size_t>(cy) * kGrid + cx];
  }
  std::sort(cells.rbegin(), cells.rend());
  std::size_t top_mass = 0;
  for (int i = 0; i < kGrid * kGrid / 100; ++i) {
    top_mass += cells[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(static_cast<double>(top_mass) / table.size(), 0.10);
}

TEST(TaxiGeneratorTest, PassengerCountsAreSmallIntegers) {
  const PointTable table = GenerateTaxiTrips(SmallOptions());
  const auto& pax = table.attribute_column(2);
  std::size_t singles = 0;
  for (const float p : pax) {
    EXPECT_GE(p, 1.0f);
    EXPECT_LE(p, 6.0f);
    EXPECT_EQ(p, std::floor(p));
    if (p == 1.0f) ++singles;
  }
  EXPECT_GT(static_cast<double>(singles) / pax.size(), 0.5);
}

TEST(TaxiHourWeightTest, RushHoursBeatEarlyMorning) {
  EXPECT_GT(TaxiHourWeight(8, true), TaxiHourWeight(4, true));
  EXPECT_GT(TaxiHourWeight(19, true), TaxiHourWeight(4, true));
  // Weekend nights are busier than weekday nights.
  EXPECT_GT(TaxiHourWeight(2, false), TaxiHourWeight(2, true));
  // Wraps modulo 24.
  EXPECT_EQ(TaxiHourWeight(26, true), TaxiHourWeight(2, true));
}

TEST(TaxiGeneratorTest, DiurnalProfileMatchesWeights) {
  TaxiGeneratorOptions options = SmallOptions();
  options.num_trips = 50000;
  const PointTable table = GenerateTaxiTrips(options);
  std::vector<std::size_t> by_hour(24, 0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::int64_t seconds_in_day =
        (table.t(i) - options.start_time) % 86400;
    ++by_hour[static_cast<std::size_t>(seconds_in_day / 3600)];
  }
  // Rush hour (19h) should attract several times the 4am demand.
  EXPECT_GT(by_hour[19], 3 * by_hour[4]);
}

}  // namespace
}  // namespace urbane::data
