#include "data/catalog.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace urbane::data {
namespace {

CatalogEntry PointsEntry(const std::string& name, const std::string& path) {
  CatalogEntry entry;
  entry.kind = CatalogEntry::Kind::kPoints;
  entry.name = name;
  entry.path = path;
  return entry;
}

CatalogEntry RegionsEntry(const std::string& name, const std::string& path) {
  CatalogEntry entry;
  entry.kind = CatalogEntry::Kind::kRegions;
  entry.name = name;
  entry.path = path;
  return entry;
}

TEST(FormatFromPathTest, RecognizesExtensions) {
  EXPECT_EQ(FormatFromPath("a/b/taxi.upt"), "upt");
  EXPECT_EQ(FormatFromPath("points.csv"), "csv");
  EXPECT_EQ(FormatFromPath("hoods.urg"), "urg");
  EXPECT_EQ(FormatFromPath("hoods.geojson"), "geojson");
  EXPECT_EQ(FormatFromPath("mystery.bin"), "");
}

TEST(CatalogTest, AddInfersFormat) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(PointsEntry("taxi", "taxi.upt")).ok());
  ASSERT_EQ(catalog.entries().size(), 1u);
  EXPECT_EQ(catalog.entries()[0].format, "upt");
}

TEST(CatalogTest, RejectsBadEntries) {
  Catalog catalog;
  EXPECT_FALSE(catalog.Add(PointsEntry("", "x.upt")).ok());
  EXPECT_FALSE(catalog.Add(PointsEntry("a", "")).ok());
  EXPECT_FALSE(catalog.Add(PointsEntry("a", "x.unknown")).ok());
  // Kind/format mismatch.
  EXPECT_FALSE(catalog.Add(PointsEntry("a", "x.geojson")).ok());
  EXPECT_FALSE(catalog.Add(RegionsEntry("a", "x.csv")).ok());
}

TEST(CatalogTest, RejectsDuplicatesPerKind) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(PointsEntry("a", "a.upt")).ok());
  EXPECT_FALSE(catalog.Add(PointsEntry("a", "b.upt")).ok());
  // Same name under a different kind is fine.
  EXPECT_TRUE(catalog.Add(RegionsEntry("a", "a.urg")).ok());
}

TEST(CatalogTest, FindByKindAndName) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(PointsEntry("taxi", "taxi.upt")).ok());
  ASSERT_TRUE(catalog.Add(RegionsEntry("hoods", "hoods.urg")).ok());
  EXPECT_NE(catalog.Find(CatalogEntry::Kind::kPoints, "taxi"), nullptr);
  EXPECT_EQ(catalog.Find(CatalogEntry::Kind::kRegions, "taxi"), nullptr);
  EXPECT_EQ(catalog.Find(CatalogEntry::Kind::kPoints, "nope"), nullptr);
}

TEST(CatalogTest, JsonRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(PointsEntry("taxi", "data/taxi.upt")).ok());
  ASSERT_TRUE(catalog.Add(PointsEntry("crime", "data/crime.csv")).ok());
  ASSERT_TRUE(catalog.Add(RegionsEntry("hoods", "hoods.geojson")).ok());
  const auto parsed = Catalog::FromJson(catalog.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->entries().size(), 3u);
  EXPECT_EQ(parsed->entries()[1].name, "crime");
  EXPECT_EQ(parsed->entries()[1].format, "csv");
  EXPECT_EQ(parsed->entries()[2].kind, CatalogEntry::Kind::kRegions);
}

TEST(CatalogTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(Catalog::FromJson("not json").ok());
  EXPECT_FALSE(Catalog::FromJson("{}").ok());
  EXPECT_FALSE(Catalog::FromJson(R"({"version": 2, "entries": []})").ok());
  EXPECT_FALSE(Catalog::FromJson(
                   R"({"version": 1, "entries": [{"name": "x"}]})")
                   .ok());
}

TEST(CatalogTest, FileRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(PointsEntry("taxi", "taxi.upt")).ok());
  const std::string path = ::testing::TempDir() + "/workspace.json";
  ASSERT_TRUE(catalog.WriteFile(path).ok());
  const auto loaded = Catalog::ReadFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entries().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane::data
