// Randomized round-trip property: any JsonValue tree the model can
// represent must survive Dump -> Parse -> Dump byte-identically (both
// compact and indented).
#include <gtest/gtest.h>

#include "data/json.h"
#include "util/random.h"

namespace urbane::data {
namespace {

JsonValue RandomValue(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.NextUint64(depth >= 4 ? 4 : 6));
  switch (kind) {
    case 0:
      return JsonValue(nullptr);
    case 1:
      return JsonValue(rng.NextBool());
    case 2: {
      // Mix integers and dirty doubles; avoid NaN/Inf (JSON cannot carry
      // them; the writer degrades them to null by design).
      if (rng.NextBool()) {
        return JsonValue(static_cast<double>(rng.NextInt(-1000000, 1000000)));
      }
      return JsonValue(rng.NextGaussian(0.0, 1e6));
    }
    case 3: {
      std::string s;
      const int len = static_cast<int>(rng.NextUint64(12));
      for (int i = 0; i < len; ++i) {
        // Printable ASCII plus the escape-relevant characters.
        constexpr char kAlphabet[] =
            "abcXYZ019 _-,.:\"\\\n\t/{}[]";
        s.push_back(kAlphabet[rng.NextUint64(sizeof(kAlphabet) - 1)]);
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonValue::Array arr;
      const int n = static_cast<int>(rng.NextUint64(5));
      for (int i = 0; i < n; ++i) {
        arr.push_back(RandomValue(rng, depth + 1));
      }
      return JsonValue(std::move(arr));
    }
    default: {
      JsonValue::Object obj;
      const int n = static_cast<int>(rng.NextUint64(5));
      for (int i = 0; i < n; ++i) {
        obj.emplace_back("k" + std::to_string(i), RandomValue(rng, depth + 1));
      }
      return JsonValue(std::move(obj));
    }
  }
}

class JsonFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonFuzzTest, DumpParseDumpIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const JsonValue original = RandomValue(rng, 0);
    const std::string compact = original.Dump();
    const auto parsed = ParseJson(compact);
    ASSERT_TRUE(parsed.ok()) << compact << " -> " << parsed.status();
    EXPECT_EQ(parsed->Dump(), compact);

    const std::string pretty = original.Dump(2);
    const auto reparsed = ParseJson(pretty);
    ASSERT_TRUE(reparsed.ok()) << pretty;
    EXPECT_EQ(reparsed->Dump(), compact)
        << "indented form parsed differently";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace urbane::data
