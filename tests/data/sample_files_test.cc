// The repository ships a small real GeoJSON sample (hand-digitized borough
// outlines) so users can exercise the loaders without fetching NYC Open
// Data. This test pins its contract.
#include <gtest/gtest.h>

#include "data/geojson.h"
#include "data/taxi_generator.h"
#include "core/spatial_aggregation.h"

namespace urbane::data {
namespace {

// CMake passes the source dir so the test finds the sample regardless of
// the build directory layout.
#ifndef URBANE_SOURCE_DIR
#define URBANE_SOURCE_DIR "."
#endif

const char* SamplePath() {
  return URBANE_SOURCE_DIR "/data/samples/nyc_boroughs_sample.geojson";
}

TEST(SampleFilesTest, BoroughSampleLoads) {
  const auto regions = ReadGeoJsonRegionsFile(SamplePath());
  ASSERT_TRUE(regions.ok()) << regions.status();
  ASSERT_EQ(regions->size(), 5u);
  EXPECT_EQ((*regions)[0].name, "Manhattan");
  EXPECT_EQ((*regions)[4].name, "Staten Island");
  EXPECT_EQ((*regions)[4].geometry.parts().size(), 1u);
  for (const Region& region : regions->regions()) {
    EXPECT_GT(region.geometry.Area(), 0.0) << region.name;
    for (const auto& part : region.geometry.parts()) {
      EXPECT_TRUE(part.Validate().ok()) << region.name;
    }
  }
}

TEST(SampleFilesTest, SampleWorksWithSyntheticTaxis) {
  const auto regions = ReadGeoJsonRegionsFile(SamplePath());
  ASSERT_TRUE(regions.ok());
  TaxiGeneratorOptions options;
  options.num_trips = 20000;
  const PointTable taxis = GenerateTaxiTrips(options);
  core::SpatialAggregation engine(taxis, *regions);
  const auto result = engine.Execute(core::AggregationQuery{},
                                     core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(result.ok()) << result.status();
  // The synthetic city overlaps the real borough outlines (same Mercator
  // frame), so a healthy share of trips lands inside one of them.
  std::uint64_t total = 0;
  for (const auto c : result->counts) total += c;
  EXPECT_GT(total, taxis.size() / 4);
  // Manhattan-ish hotspots: the busiest borough should dominate.
  EXPECT_GT(*std::max_element(result->counts.begin(), result->counts.end()),
            total / 5);
}

}  // namespace
}  // namespace urbane::data
