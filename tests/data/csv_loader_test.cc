#include "data/csv_loader.h"

#include <gtest/gtest.h>

namespace urbane::data {
namespace {

constexpr char kBasicCsv[] =
    "x,y,t,fare\n"
    "1.5,2.5,100,10.0\n"
    "3.5,4.5,200,20.0\n";

TEST(ReadPointTableCsvTest, LoadsRowsAndAttributes) {
  const auto table = ReadPointTableCsv(kBasicCsv);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->size(), 2u);
  EXPECT_FLOAT_EQ(table->x(0), 1.5f);
  EXPECT_EQ(table->t(1), 200);
  ASSERT_TRUE(table->schema().HasAttribute("fare"));
  EXPECT_FLOAT_EQ(table->attribute(1, 0), 20.0f);
}

TEST(ReadPointTableCsvTest, CustomColumnBindings) {
  CsvPointOptions options;
  options.x_column = "lon";
  options.y_column = "lat";
  options.t_column = "pickup";
  const auto table = ReadPointTableCsv(
      "lon,lat,pickup,v\n1,2,3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 1u);
  EXPECT_FLOAT_EQ(table->x(0), 1.0f);
}

TEST(ReadPointTableCsvTest, MissingColumnsRejected) {
  EXPECT_FALSE(ReadPointTableCsv("a,b\n1,2\n").ok());
}

TEST(ReadPointTableCsvTest, BadRowsSkippedByDefault) {
  const auto table = ReadPointTableCsv(
      "x,y,t,v\n1,2,3,4\njunk,2,3,4\n5,6,7,bad\n8,9,10,11\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 2u);
}

TEST(ReadPointTableCsvTest, BadRowsFailWhenStrict) {
  CsvPointOptions options;
  options.skip_bad_rows = false;
  EXPECT_FALSE(
      ReadPointTableCsv("x,y,t\n1,2,junk\n", options).ok());
}

TEST(ReadPointTableCsvTest, LonLatProjection) {
  CsvPointOptions options;
  options.project_lonlat_to_mercator = true;
  const auto table =
      ReadPointTableCsv("x,y,t\n-74.0,40.7,0\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_LT(table->x(0), -8e6f);  // Mercator meters, not degrees
}

TEST(WritePointTableCsvTest, RoundTrips) {
  const auto table = ReadPointTableCsv(kBasicCsv);
  ASSERT_TRUE(table.ok());
  const std::string out = WritePointTableCsv(*table);
  const auto reloaded = ReadPointTableCsv(out);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->size(), table->size());
  for (std::size_t i = 0; i < table->size(); ++i) {
    EXPECT_EQ(reloaded->x(i), table->x(i));
    EXPECT_EQ(reloaded->y(i), table->y(i));
    EXPECT_EQ(reloaded->t(i), table->t(i));
    EXPECT_EQ(reloaded->attribute(i, 0), table->attribute(i, 0));
  }
}

TEST(CsvFileRoundTripTest, WriteAndRead) {
  const auto table = ReadPointTableCsv(kBasicCsv);
  ASSERT_TRUE(table.ok());
  const std::string path = ::testing::TempDir() + "/points_roundtrip.csv";
  ASSERT_TRUE(WritePointTableCsvFile(*table, path).ok());
  const auto loaded = ReadPointTableCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane::data
