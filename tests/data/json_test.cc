#include "data/json.h"

#include <gtest/gtest.h>

namespace urbane::data {
namespace {

TEST(ParseJsonTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->AsBool(), true);
  EXPECT_EQ(ParseJson("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-1e3")->AsNumber(), -1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(ParseJsonTest, ArraysAndObjects) {
  const auto doc = ParseJson(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_EQ(doc->Find("c")->AsString(), "x");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(ParseJsonTest, StringEscapes) {
  const auto doc = ParseJson(R"("line\nbreak \"q\" \\ A")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "line\nbreak \"q\" \\ A");
}

TEST(ParseJsonTest, UnicodeEscapeToUtf8) {
  const auto doc = ParseJson(R"("é")");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "\xC3\xA9");
}

TEST(ParseJsonTest, WhitespaceTolerated) {
  const auto doc = ParseJson(" { \"a\" :\n[ 1 ,\t2 ] } ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->AsArray().size(), 2u);
}

TEST(ParseJsonTest, ErrorsRejected) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("12 34").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("{'single': 1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(ParseJsonTest, DeepNestingBounded) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(ParseJson(deep).ok());  // beyond the depth cap
  std::string ok_depth(50, '[');
  ok_depth += "1";
  ok_depth += std::string(50, ']');
  EXPECT_TRUE(ParseJson(ok_depth).ok());
}

TEST(JsonDumpTest, RoundTripsCompact) {
  const std::string src = R"({"a":[1,2.5,"x"],"b":{"c":null,"d":false}})";
  const auto doc = ParseJson(src);
  ASSERT_TRUE(doc.ok());
  const auto re = ParseJson(doc->Dump());
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re->Dump(), doc->Dump());
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimal) {
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-7.0).Dump(), "-7");
  EXPECT_EQ(JsonValue(2.5).Dump(), "2.5");
}

TEST(JsonDumpTest, StringsEscaped) {
  EXPECT_EQ(JsonValue("a\"b\nc").Dump(), R"("a\"b\nc")");
}

TEST(JsonDumpTest, IndentedOutputHasNewlines) {
  JsonValue doc(JsonValue::Object{{"k", JsonValue(1)}});
  const std::string pretty = doc.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("  \"k\": 1"), std::string::npos);
}

TEST(JsonValueTest, SetOverwritesAndAppends) {
  JsonValue doc(JsonValue::Object{});
  doc.Set("a", JsonValue(1));
  doc.Set("b", JsonValue(2));
  doc.Set("a", JsonValue(3));
  EXPECT_DOUBLE_EQ(doc.Find("a")->AsNumber(), 3.0);
  EXPECT_EQ(doc.AsObject().size(), 2u);
}

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.5).is_number());
  EXPECT_TRUE(JsonValue("s").is_string());
  EXPECT_TRUE(JsonValue(JsonValue::Array{}).is_array());
  EXPECT_TRUE(JsonValue(JsonValue::Object{}).is_object());
}

}  // namespace
}  // namespace urbane::data
