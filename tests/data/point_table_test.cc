#include "data/point_table.h"

#include <gtest/gtest.h>

#include <utility>

namespace urbane::data {
namespace {

PointTable MakeTable() {
  PointTable table(Schema({"fare", "tip"}));
  EXPECT_TRUE(table.AppendRow(1.0f, 2.0f, 100, {10.0f, 1.0f}).ok());
  EXPECT_TRUE(table.AppendRow(3.0f, 4.0f, 200, {20.0f, 2.0f}).ok());
  return table;
}

TEST(PointTableTest, AppendAndAccess) {
  const PointTable table = MakeTable();
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FLOAT_EQ(table.x(1), 3.0f);
  EXPECT_FLOAT_EQ(table.y(0), 2.0f);
  EXPECT_EQ(table.t(1), 200);
  EXPECT_FLOAT_EQ(table.attribute(1, 0), 20.0f);
  EXPECT_FLOAT_EQ(table.attribute(0, 1), 1.0f);
}

TEST(PointTableTest, AppendRowArityChecked) {
  PointTable table(Schema({"fare"}));
  EXPECT_FALSE(table.AppendRow(0, 0, 0, {1.0f, 2.0f}).ok());
  EXPECT_FALSE(table.AppendRow(0, 0, 0, {}).ok());
  EXPECT_EQ(table.size(), 0u);
}

TEST(PointTableTest, AttributeByName) {
  const PointTable table = MakeTable();
  const float* fares = table.AttributeByName("fare");
  ASSERT_NE(fares, nullptr);
  EXPECT_FLOAT_EQ(fares[1], 20.0f);
  EXPECT_EQ(table.AttributeByName("nope"), nullptr);
}

TEST(PointTableTest, ViewBorrowsColumnsWithoutCopying) {
  const PointTable owner = MakeTable();
  auto view_or = PointTable::View(
      owner.schema(), owner.xs(), owner.ys(), owner.ts(),
      {owner.attribute_data(0), owner.attribute_data(1)}, owner.size());
  ASSERT_TRUE(view_or.ok());
  const PointTable view = std::move(view_or).value();
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.size(), owner.size());
  EXPECT_EQ(view.xs(), owner.xs());  // same pointer, no copy
  EXPECT_FLOAT_EQ(view.x(1), owner.x(1));
  EXPECT_EQ(view.t(0), owner.t(0));
  EXPECT_FLOAT_EQ(view.attribute(1, 0), 20.0f);
  const float* fares = view.AttributeByName("fare");
  ASSERT_NE(fares, nullptr);
  EXPECT_EQ(fares, owner.attribute_data(0));
  EXPECT_TRUE(view.Validate().ok());
  const auto bounds = view.Bounds();
  EXPECT_DOUBLE_EQ(bounds.min_x, owner.Bounds().min_x);
  EXPECT_EQ(view.TimeRange(), owner.TimeRange());
}

TEST(PointTableTest, ViewRejectsAppendsAndBadShapes) {
  const PointTable owner = MakeTable();
  auto view_or = PointTable::View(
      owner.schema(), owner.xs(), owner.ys(), owner.ts(),
      {owner.attribute_data(0), owner.attribute_data(1)}, owner.size());
  ASSERT_TRUE(view_or.ok());
  PointTable view = std::move(view_or).value();
  EXPECT_FALSE(view.AppendRow(0, 0, 0, {1.0f, 2.0f}).ok());

  // Arity mismatch and null columns are rejected up front.
  EXPECT_FALSE(PointTable::View(owner.schema(), owner.xs(), owner.ys(),
                                owner.ts(), {owner.attribute_data(0)},
                                owner.size())
                   .ok());
  EXPECT_FALSE(PointTable::View(owner.schema(), nullptr, owner.ys(),
                                owner.ts(),
                                {owner.attribute_data(0),
                                 owner.attribute_data(1)},
                                owner.size())
                   .ok());
}

TEST(PointTableTest, CachedExtentsShortCircuitScans) {
  PointTable table = MakeTable();
  geometry::BoundingBox box;
  box.Extend({1.0, 2.0});
  box.Extend({3.0, 4.0});
  table.SetCachedExtents(box, {100, 200});
  EXPECT_DOUBLE_EQ(table.Bounds().min_x, 1.0);
  EXPECT_DOUBLE_EQ(table.Bounds().max_y, 4.0);
  EXPECT_EQ(table.TimeRange(),
            (std::pair<std::int64_t, std::int64_t>{100, 200}));
}

TEST(PointTableTest, BoundsAndTimeRange) {
  const PointTable table = MakeTable();
  const auto bounds = table.Bounds();
  EXPECT_DOUBLE_EQ(bounds.min_x, 1.0);
  EXPECT_DOUBLE_EQ(bounds.max_y, 4.0);
  const auto [t0, t1] = table.TimeRange();
  EXPECT_EQ(t0, 100);
  EXPECT_EQ(t1, 200);
}

TEST(PointTableTest, EmptyTable) {
  PointTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_TRUE(table.Bounds().IsEmpty());
  EXPECT_EQ(table.TimeRange(), (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_TRUE(table.Validate().ok());
}

TEST(PointTableTest, ValidateCatchesRaggedColumns) {
  PointTable table(Schema({"v"}));
  table.AppendXyt(0, 0, 0);  // fast path leaves attribute column short
  EXPECT_FALSE(table.Validate().ok());
  table.mutable_attribute_column(0).push_back(1.0f);
  EXPECT_TRUE(table.Validate().ok());
}

TEST(PointTableTest, ColumnPointersAreContiguous) {
  const PointTable table = MakeTable();
  EXPECT_EQ(table.xs()[0], table.x(0));
  EXPECT_EQ(table.xs()[1], table.x(1));
  EXPECT_EQ(table.ts()[1], 200);
}

TEST(PointTableTest, MemoryBytesGrowsWithRows) {
  PointTable table(Schema({"v"}));
  const std::size_t before = table.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table.AppendRow(0, 0, 0, {1.0f}).ok());
  }
  EXPECT_GT(table.MemoryBytes(), before);
}

}  // namespace
}  // namespace urbane::data
