#include "data/event_generator.h"

#include <gtest/gtest.h>

namespace urbane::data {
namespace {

TEST(EventGeneratorTest, ServiceRequestsSchema) {
  UrbanEventOptions options;
  options.kind = UrbanEventKind::kServiceRequests311;
  options.num_events = 5000;
  const PointTable table = GenerateUrbanEvents(options);
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_TRUE(table.schema().HasAttribute("category"));
  EXPECT_TRUE(table.schema().HasAttribute("response_hours"));
  EXPECT_TRUE(table.Validate().ok());
}

TEST(EventGeneratorTest, CrimeSchema) {
  UrbanEventOptions options;
  options.kind = UrbanEventKind::kCrimeIncidents;
  options.num_events = 5000;
  const PointTable table = GenerateUrbanEvents(options);
  EXPECT_TRUE(table.schema().HasAttribute("severity"));
  EXPECT_TRUE(table.schema().HasAttribute("indoor"));
}

TEST(EventGeneratorTest, BoundsAndTimesRespected) {
  UrbanEventOptions options;
  options.num_events = 5000;
  const PointTable table = GenerateUrbanEvents(options);
  EXPECT_TRUE(options.bounds.Expanded(1.0).Contains(table.Bounds()));
  const auto [t0, t1] = table.TimeRange();
  EXPECT_GE(t0, options.start_time);
  EXPECT_LT(t1, options.start_time + options.duration_seconds);
}

TEST(EventGeneratorTest, SeverityInRange) {
  UrbanEventOptions options;
  options.kind = UrbanEventKind::kCrimeIncidents;
  options.num_events = 2000;
  const PointTable table = GenerateUrbanEvents(options);
  const auto& severity = table.attribute_column(0);
  for (const float s : severity) {
    EXPECT_GE(s, 1.0f);
    EXPECT_LE(s, 5.0f);
  }
}

TEST(EventGeneratorTest, CrimeIsNightWeighted) {
  UrbanEventOptions options;
  options.kind = UrbanEventKind::kCrimeIncidents;
  options.num_events = 30000;
  const PointTable table = GenerateUrbanEvents(options);
  std::size_t night = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::int64_t hour =
        ((table.t(i) - options.start_time) % 86400) / 3600;
    if (hour >= 20 || hour < 4) {
      ++night;
    }
  }
  // Night hours are 8/24 of the day; crime should be heavily over-indexed.
  EXPECT_GT(static_cast<double>(night) / table.size(), 0.5);
}

TEST(EventGeneratorTest, DeterministicPerSeedAndKind) {
  UrbanEventOptions options;
  options.num_events = 1000;
  const PointTable a = GenerateUrbanEvents(options);
  const PointTable b = GenerateUrbanEvents(options);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.x(i), b.x(i));
    EXPECT_EQ(a.t(i), b.t(i));
  }
  options.kind = UrbanEventKind::kCrimeIncidents;
  const PointTable c = GenerateUrbanEvents(options);
  int same = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (a.x(i) == c.x(i)) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace urbane::data
