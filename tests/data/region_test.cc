#include "data/region.h"

#include <gtest/gtest.h>

namespace urbane::data {
namespace {

Region MakeSquare(std::int64_t id, double x0, double y0, double size) {
  Region region;
  region.id = id;
  region.name = "sq" + std::to_string(id);
  region.geometry = geometry::MultiPolygon(geometry::Polygon(geometry::Ring{
      {x0, y0}, {x0 + size, y0}, {x0 + size, y0 + size}, {x0, y0 + size}}));
  return region;
}

TEST(RegionSetTest, AddAndLookup) {
  RegionSet set;
  ASSERT_TRUE(set.Add(MakeSquare(10, 0, 0, 1)).ok());
  ASSERT_TRUE(set.Add(MakeSquare(20, 5, 5, 2)).ok());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.IndexOfId(20), 1);
  EXPECT_EQ(set.IndexOfId(99), -1);
  EXPECT_EQ(set[0].name, "sq10");
}

TEST(RegionSetTest, RejectsDuplicateIds) {
  RegionSet set;
  ASSERT_TRUE(set.Add(MakeSquare(1, 0, 0, 1)).ok());
  EXPECT_FALSE(set.Add(MakeSquare(1, 5, 5, 1)).ok());
  EXPECT_EQ(set.size(), 1u);
}

TEST(RegionSetTest, RejectsEmptyGeometry) {
  RegionSet set;
  Region region;
  region.id = 1;
  region.name = "empty";
  EXPECT_FALSE(set.Add(std::move(region)).ok());
}

TEST(RegionSetTest, BoundsUnionAllRegions) {
  RegionSet set;
  ASSERT_TRUE(set.Add(MakeSquare(1, 0, 0, 1)).ok());
  ASSERT_TRUE(set.Add(MakeSquare(2, 5, 5, 2)).ok());
  EXPECT_EQ(set.Bounds(), geometry::BoundingBox(0, 0, 7, 7));
}

TEST(RegionSetTest, VertexCountAndRegionBounds) {
  RegionSet set;
  ASSERT_TRUE(set.Add(MakeSquare(1, 0, 0, 1)).ok());
  ASSERT_TRUE(set.Add(MakeSquare(2, 5, 5, 2)).ok());
  EXPECT_EQ(set.TotalVertexCount(), 8u);
  const auto boxes = set.RegionBounds();
  ASSERT_EQ(boxes.size(), 2u);
  EXPECT_EQ(boxes[1], geometry::BoundingBox(5, 5, 7, 7));
}

TEST(RegionSetTest, NormalizeAllFixesOrientation) {
  RegionSet set;
  Region region;
  region.id = 1;
  region.name = "cw";
  geometry::Ring cw = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};  // clockwise
  region.geometry = geometry::MultiPolygon(geometry::Polygon(cw));
  ASSERT_TRUE(set.Add(std::move(region)).ok());
  set.NormalizeAll();
  EXPECT_TRUE(geometry::RingIsCounterClockwise(
      set[0].geometry.parts()[0].outer()));
}

TEST(RegionSetTest, MemoryBytesGrowsWithGeometry) {
  RegionSet small;
  ASSERT_TRUE(small.Add(MakeSquare(1, 0, 0, 1)).ok());
  RegionSet large;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(large.Add(MakeSquare(i, i, 0, 1)).ok());
  }
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace urbane::data
