#include "data/geojson.h"

#include <gtest/gtest.h>

namespace urbane::data {
namespace {

constexpr char kSimpleFeatureCollection[] = R"({
  "type": "FeatureCollection",
  "features": [
    {
      "type": "Feature",
      "properties": {"name": "alpha", "id": 7},
      "geometry": {
        "type": "Polygon",
        "coordinates": [[[0, 0], [1, 0], [1, 1], [0, 1], [0, 0]]]
      }
    },
    {
      "type": "Feature",
      "properties": {"name": "beta"},
      "geometry": {
        "type": "MultiPolygon",
        "coordinates": [
          [[[2, 2], [3, 2], [3, 3], [2, 3], [2, 2]]],
          [[[5, 5], [6, 5], [6, 6], [5, 6], [5, 5]]]
        ]
      }
    }
  ]
})";

GeoJsonReadOptions PlanarOptions() {
  GeoJsonReadOptions options;
  options.project_lonlat_to_mercator = false;
  return options;
}

TEST(ReadGeoJsonTest, ParsesFeatures) {
  const auto regions = ReadGeoJsonRegions(kSimpleFeatureCollection,
                                          PlanarOptions());
  ASSERT_TRUE(regions.ok()) << regions.status();
  ASSERT_EQ(regions->size(), 2u);
  EXPECT_EQ((*regions)[0].name, "alpha");
  EXPECT_EQ((*regions)[0].id, 7);
  EXPECT_EQ((*regions)[1].name, "beta");
  EXPECT_EQ((*regions)[1].geometry.parts().size(), 2u);
  EXPECT_NEAR((*regions)[0].geometry.Area(), 1.0, 1e-9);
}

TEST(ReadGeoJsonTest, ClosingVertexDropped) {
  const auto regions = ReadGeoJsonRegions(kSimpleFeatureCollection,
                                          PlanarOptions());
  ASSERT_TRUE(regions.ok());
  EXPECT_EQ((*regions)[0].geometry.parts()[0].outer().size(), 4u);
}

TEST(ReadGeoJsonTest, PolygonWithHole) {
  const char* geojson = R"({
    "type": "FeatureCollection",
    "features": [{
      "type": "Feature",
      "properties": {"name": "donut"},
      "geometry": {
        "type": "Polygon",
        "coordinates": [
          [[0,0],[10,0],[10,10],[0,10],[0,0]],
          [[4,4],[6,4],[6,6],[4,6],[4,4]]
        ]
      }
    }]
  })";
  const auto regions = ReadGeoJsonRegions(geojson, PlanarOptions());
  ASSERT_TRUE(regions.ok());
  const auto& poly = (*regions)[0].geometry.parts()[0];
  EXPECT_EQ(poly.holes().size(), 1u);
  EXPECT_NEAR(poly.Area(), 96.0, 1e-9);
  EXPECT_FALSE(poly.Contains({5, 5}));
}

TEST(ReadGeoJsonTest, ProjectsLonLatByDefault) {
  const char* geojson = R"({
    "type": "FeatureCollection",
    "features": [{
      "type": "Feature",
      "properties": {"name": "nyc-ish"},
      "geometry": {"type": "Polygon",
        "coordinates": [[[-74.0,40.7],[-73.9,40.7],[-73.9,40.8],[-74.0,40.8],[-74.0,40.7]]]}
    }]
  })";
  const auto regions = ReadGeoJsonRegions(geojson);
  ASSERT_TRUE(regions.ok());
  // Projected coordinates are megameter-scale negatives for NYC longitudes.
  EXPECT_LT((*regions)[0].geometry.Bounds().max_x, -8e6);
}

TEST(ReadGeoJsonTest, SkipsNonPolygonFeatures) {
  const char* geojson = R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature", "properties": {},
       "geometry": {"type": "Point", "coordinates": [1, 2]}},
      {"type": "Feature", "properties": {"name": "poly"},
       "geometry": {"type": "Polygon",
         "coordinates": [[[0,0],[1,0],[1,1],[0,0]]]}}
    ]
  })";
  const auto regions = ReadGeoJsonRegions(geojson, PlanarOptions());
  ASSERT_TRUE(regions.ok());
  EXPECT_EQ(regions->size(), 1u);
}

TEST(ReadGeoJsonTest, RejectsNonFeatureCollection) {
  EXPECT_FALSE(ReadGeoJsonRegions(R"({"type": "Feature"})").ok());
  EXPECT_FALSE(ReadGeoJsonRegions("[1,2,3]").ok());
  EXPECT_FALSE(ReadGeoJsonRegions("not json").ok());
}

TEST(ReadGeoJsonTest, RejectsDegenerateRing) {
  const char* geojson = R"({
    "type": "FeatureCollection",
    "features": [{
      "type": "Feature", "properties": {},
      "geometry": {"type": "Polygon", "coordinates": [[[0,0],[1,1],[0,0]]]}
    }]
  })";
  EXPECT_FALSE(ReadGeoJsonRegions(geojson, PlanarOptions()).ok());
}

TEST(ReadGeoJsonTest, DuplicateIdsFallBackToSequential) {
  const char* geojson = R"({
    "type": "FeatureCollection",
    "features": [
      {"type": "Feature", "properties": {"id": 3, "name": "a"},
       "geometry": {"type": "Polygon", "coordinates": [[[0,0],[1,0],[1,1],[0,0]]]}},
      {"type": "Feature", "properties": {"id": 3, "name": "b"},
       "geometry": {"type": "Polygon", "coordinates": [[[2,2],[3,2],[3,3],[2,2]]]}}
    ]
  })";
  const auto regions = ReadGeoJsonRegions(geojson, PlanarOptions());
  ASSERT_TRUE(regions.ok()) << regions.status();
  EXPECT_EQ(regions->size(), 2u);
  EXPECT_NE((*regions)[0].id, (*regions)[1].id);
}

TEST(WriteGeoJsonTest, RoundTripsPlanar) {
  const auto regions = ReadGeoJsonRegions(kSimpleFeatureCollection,
                                          PlanarOptions());
  ASSERT_TRUE(regions.ok());
  const std::string out = WriteGeoJsonRegions(*regions,
                                              /*unproject_to_lonlat=*/false);
  const auto reparsed = ReadGeoJsonRegions(out, PlanarOptions());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->size(), regions->size());
  EXPECT_EQ((*reparsed)[0].name, "alpha");
  EXPECT_NEAR((*reparsed)[1].geometry.Area(), (*regions)[1].geometry.Area(),
              1e-9);
}

TEST(WriteGeoJsonTest, MercatorRoundTripThroughLonLat) {
  const char* geojson = R"({
    "type": "FeatureCollection",
    "features": [{
      "type": "Feature", "properties": {"name": "x"},
      "geometry": {"type": "Polygon",
        "coordinates": [[[-74.0,40.7],[-73.9,40.7],[-73.9,40.8],[-74.0,40.7]]]}
    }]
  })";
  const auto regions = ReadGeoJsonRegions(geojson);
  ASSERT_TRUE(regions.ok());
  const std::string out = WriteGeoJsonRegions(*regions);
  const auto reparsed = ReadGeoJsonRegions(out);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_NEAR((*reparsed)[0].geometry.Area(), (*regions)[0].geometry.Area(),
              1e-3 * (*regions)[0].geometry.Area());
}

}  // namespace
}  // namespace urbane::data
