#include "data/region_generator.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace urbane::data {
namespace {

TEST(TessellationTest, ProducesRequestedCellCount) {
  TessellationOptions options;
  options.cells_x = 4;
  options.cells_y = 3;
  options.bounds = geometry::BoundingBox(0, 0, 100, 100);
  const RegionSet regions = GenerateTessellation(options);
  EXPECT_EQ(regions.size(), 12u);
}

TEST(TessellationTest, CoversBoundsWithoutOverlapByArea) {
  TessellationOptions options;
  options.cells_x = 6;
  options.cells_y = 6;
  options.bounds = geometry::BoundingBox(0, 0, 100, 100);
  options.edge_subdivisions = 4;
  const RegionSet regions = GenerateTessellation(options);
  double total_area = 0.0;
  for (const Region& region : regions.regions()) {
    total_area += region.geometry.Area();
  }
  // Shared wiggled edges cancel: the tessellation partitions the bounds.
  EXPECT_NEAR(total_area, 100.0 * 100.0, 1e-6 * 100 * 100);
}

TEST(TessellationTest, PointMembershipIsPartition) {
  TessellationOptions options;
  options.cells_x = 5;
  options.cells_y = 5;
  options.bounds = geometry::BoundingBox(0, 0, 100, 100);
  const RegionSet regions = GenerateTessellation(options);
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    const geometry::Vec2 p{rng.NextDouble(1, 99), rng.NextDouble(1, 99)};
    int owners = 0;
    for (const Region& region : regions.regions()) {
      if (region.geometry.Contains(p)) {
        ++owners;
      }
    }
    // Interior points belong to exactly one region; points exactly on a
    // shared (boundary-inclusive) edge may belong to two, but random
    // doubles never land there.
    EXPECT_EQ(owners, 1) << "point " << p;
  }
}

TEST(TessellationTest, DeterministicForSeed) {
  TessellationOptions options;
  options.cells_x = 3;
  options.cells_y = 3;
  options.seed = 99;
  const RegionSet a = GenerateTessellation(options);
  const RegionSet b = GenerateTessellation(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].geometry.VertexCount(), b[i].geometry.VertexCount());
    EXPECT_DOUBLE_EQ(a[i].geometry.Area(), b[i].geometry.Area());
  }
}

TEST(TessellationTest, EdgeSubdivisionsIncreaseVertexCount) {
  TessellationOptions coarse;
  coarse.cells_x = 4;
  coarse.cells_y = 4;
  coarse.edge_subdivisions = 0;
  TessellationOptions fine = coarse;
  fine.edge_subdivisions = 10;
  EXPECT_GT(GenerateTessellation(fine).TotalVertexCount(),
            GenerateTessellation(coarse).TotalVertexCount());
}

TEST(TessellationTest, HolesPunchedWhenRequested) {
  TessellationOptions options;
  options.cells_x = 4;
  options.cells_y = 4;
  options.hole_probability = 1.0;
  const RegionSet regions = GenerateTessellation(options);
  std::size_t holes = 0;
  for (const Region& region : regions.regions()) {
    for (const auto& part : region.geometry.parts()) {
      holes += part.holes().size();
    }
  }
  EXPECT_EQ(holes, 16u);
}

TEST(TessellationTest, RegionsValidatePolygons) {
  TessellationOptions options;
  options.cells_x = 4;
  options.cells_y = 4;
  options.edge_subdivisions = 5;
  const RegionSet regions = GenerateTessellation(options);
  for (const Region& region : regions.regions()) {
    for (const auto& part : region.geometry.parts()) {
      EXPECT_TRUE(part.Validate().ok())
          << region.name << ": " << part.Validate();
    }
  }
}

TEST(PresetGeneratorsTest, ExpectedScales) {
  EXPECT_EQ(GenerateBoroughs().size(), 6u);
  EXPECT_EQ(GenerateNeighborhoods().size(), 256u);
  EXPECT_EQ(GenerateCensusTracts().size(), 46u * 46u);
}

TEST(RandomRegionsTest, CountAndVertices) {
  RandomRegionOptions options;
  options.count = 20;
  options.vertices_per_region = 48;
  const RegionSet regions = GenerateRandomRegions(options);
  ASSERT_EQ(regions.size(), 20u);
  for (const Region& region : regions.regions()) {
    EXPECT_EQ(region.geometry.VertexCount(), 48u);
    EXPECT_TRUE(region.geometry.parts()[0].IsSimple());
  }
}

TEST(RandomRegionsTest, StaysWithinBounds) {
  RandomRegionOptions options;
  options.count = 15;
  options.bounds = geometry::BoundingBox(0, 0, 50, 50);
  const RegionSet regions = GenerateRandomRegions(options);
  for (const Region& region : regions.regions()) {
    EXPECT_TRUE(options.bounds.Expanded(1.0).Contains(
        region.geometry.Bounds()))
        << region.name;
  }
}

}  // namespace
}  // namespace urbane::data
