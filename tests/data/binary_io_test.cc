#include "data/binary_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/region_generator.h"
#include "testing/test_worlds.h"
#include "util/csv.h"

namespace urbane::data {
namespace {

TEST(PointTableBinaryTest, RoundTrips) {
  const PointTable table = testing::MakeUniformPoints(5000, 42);
  const std::string path = ::testing::TempDir() + "/points.upt";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  const auto loaded = ReadPointTableBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), table.size());
  EXPECT_EQ(loaded->schema(), table.schema());
  for (std::size_t i = 0; i < table.size(); i += 97) {
    EXPECT_EQ(loaded->x(i), table.x(i));
    EXPECT_EQ(loaded->y(i), table.y(i));
    EXPECT_EQ(loaded->t(i), table.t(i));
    EXPECT_EQ(loaded->attribute(i, 0), table.attribute(i, 0));
  }
  std::remove(path.c_str());
}

TEST(PointTableBinaryTest, EmptyTableRoundTrips) {
  PointTable table(Schema({"v"}));
  const std::string path = ::testing::TempDir() + "/empty.upt";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  const auto loaded = ReadPointTableBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->schema().attribute_count(), 1u);
  std::remove(path.c_str());
}

TEST(PointTableBinaryTest, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/bad_magic.upt";
  ASSERT_TRUE(WriteStringToFile("NOPE-this-is-not-a-snapshot", path).ok());
  EXPECT_FALSE(ReadPointTableBinary(path).ok());
  std::remove(path.c_str());
}

TEST(PointTableBinaryTest, RejectsTruncatedFile) {
  const PointTable table = testing::MakeUniformPoints(1000, 1);
  const std::string path = ::testing::TempDir() + "/trunc.upt";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(
      WriteStringToFile(content->substr(0, content->size() / 2), path).ok());
  EXPECT_FALSE(ReadPointTableBinary(path).ok());
  std::remove(path.c_str());
}

TEST(PointTableBinaryTest, MissingFileFails) {
  EXPECT_FALSE(ReadPointTableBinary("/no/such/file.upt").ok());
}

TEST(RegionSetBinaryTest, RoundTripsWithHoles) {
  TessellationOptions options;
  options.cells_x = 4;
  options.cells_y = 4;
  options.hole_probability = 0.5;
  options.bounds = geometry::BoundingBox(0, 0, 100, 100);
  const RegionSet regions = GenerateTessellation(options);
  const std::string path = ::testing::TempDir() + "/regions.urg";
  ASSERT_TRUE(WriteRegionSetBinary(regions, path).ok());
  const auto loaded = ReadRegionSetBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, regions[i].id);
    EXPECT_EQ((*loaded)[i].name, regions[i].name);
    EXPECT_DOUBLE_EQ((*loaded)[i].geometry.Area(), regions[i].geometry.Area());
    EXPECT_EQ((*loaded)[i].geometry.VertexCount(),
              regions[i].geometry.VertexCount());
  }
  std::remove(path.c_str());
}

TEST(RegionSetBinaryTest, RejectsWrongMagic) {
  const PointTable table = testing::MakeUniformPoints(10, 1);
  const std::string path = ::testing::TempDir() + "/cross_magic.bin";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  // A point-table snapshot is not a region-set snapshot.
  EXPECT_FALSE(ReadRegionSetBinary(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane::data
