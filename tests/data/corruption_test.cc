// Failure injection: snapshot files truncated or bit-flipped at arbitrary
// offsets must be rejected with a clean Status — never a crash, hang, or
// silent short read.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/binary_io.h"
#include "data/region_generator.h"
#include "testing/test_worlds.h"
#include "util/csv.h"

namespace urbane::data {
namespace {

class TruncationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweepTest, TruncatedPointSnapshotRejected) {
  const PointTable table = testing::MakeUniformPoints(2000, 77);
  // Parameter-unique filename: ctest runs each instance as its own process
  // against the same TempDir, so a shared name races under -j.
  const std::string path = ::testing::TempDir() + "/trunc_sweep_" +
                           std::to_string(GetParam()) + ".upt";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  const std::size_t keep =
      content->size() * static_cast<std::size_t>(GetParam()) / 100;
  ASSERT_TRUE(WriteStringToFile(content->substr(0, keep), path).ok());
  const auto loaded = ReadPointTableBinary(path);
  // Every strict prefix must fail (the trailing attribute column makes the
  // full length load-bearing).
  EXPECT_FALSE(loaded.ok()) << "kept " << keep << " of " << content->size();
  std::remove(path.c_str());
}

TEST_P(TruncationSweepTest, TruncatedRegionSnapshotRejected) {
  const RegionSet regions = testing::MakeTessellationRegions(4, 78);
  const std::string path = ::testing::TempDir() + "/trunc_sweep_" +
                           std::to_string(GetParam()) + ".urg";
  ASSERT_TRUE(WriteRegionSetBinary(regions, path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  const std::size_t keep =
      content->size() * static_cast<std::size_t>(GetParam()) / 100;
  ASSERT_TRUE(WriteStringToFile(content->substr(0, keep), path).ok());
  EXPECT_FALSE(ReadRegionSetBinary(path).ok());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Fractions, TruncationSweepTest,
                         ::testing::Values(0, 3, 10, 25, 50, 75, 90, 99));

TEST(CorruptionTest, LengthFieldBitFlipRejected) {
  // Flip high bits in the row-count field so it claims an absurd size; the
  // reader must refuse rather than attempt a huge allocation.
  const PointTable table = testing::MakeUniformPoints(100, 79);
  const std::string path = ::testing::TempDir() + "/bitflip.upt";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bytes = std::move(*content);
  // Layout: magic(4) + attr_count(8) + name(len 8 + 1) + count(8)...
  // The row count sits right after the single-attribute name "v".
  const std::size_t count_offset = 4 + 8 + 8 + 1;
  ASSERT_LT(count_offset + 8, bytes.size());
  bytes[count_offset + 7] = '\x7f';  // blow up the top byte
  ASSERT_TRUE(WriteStringToFile(bytes, path).ok());
  EXPECT_FALSE(ReadPointTableBinary(path).ok());
  std::remove(path.c_str());
}

TEST(CorruptionTest, WrongMagicNamesFoundAndExpected) {
  // A URG1 region file handed to the point-table reader must say exactly
  // what it found and what it wanted — the actionable half of the error.
  const RegionSet regions = testing::MakeTessellationRegions(2, 80);
  const std::string path = ::testing::TempDir() + "/cross_format.urg";
  ASSERT_TRUE(WriteRegionSetBinary(regions, path).ok());
  const auto loaded = ReadPointTableBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("URG1"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("UPT1"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(CorruptionTest, OversizedCountErrorNamesByteOffset) {
  const PointTable table = testing::MakeUniformPoints(100, 81);
  const std::string path = ::testing::TempDir() + "/count_offset.upt";
  ASSERT_TRUE(WritePointTableBinary(table, path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bytes = std::move(*content);
  const std::size_t count_offset = 4 + 8 + 8 + 1;  // row count field
  ASSERT_LT(count_offset + 8, bytes.size());
  bytes[count_offset + 7] = '\x7f';
  ASSERT_TRUE(WriteStringToFile(bytes, path).ok());
  const auto loaded = ReadPointTableBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  // The message must locate the corrupt field by byte offset, pointing past
  // the magic + attribute block where the count lives.
  EXPECT_NE(loaded.status().message().find("offset"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find(std::to_string(count_offset)),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(CorruptionTest, EmptyFileRejected) {
  // Not "empty.upt": binary_io_test writes that name from another ctest
  // process, and the two race under -j.
  const std::string path = ::testing::TempDir() + "/empty_zero_bytes.upt";
  ASSERT_TRUE(WriteStringToFile("", path).ok());
  EXPECT_FALSE(ReadPointTableBinary(path).ok());
  EXPECT_FALSE(ReadRegionSetBinary(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane::data
