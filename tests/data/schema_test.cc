#include "data/schema.h"

#include <gtest/gtest.h>

namespace urbane::data {
namespace {

TEST(SchemaTest, CreateValid) {
  const auto schema = Schema::Create({"fare", "distance"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->attribute_count(), 2u);
  EXPECT_EQ(schema->attribute_name(0), "fare");
  EXPECT_EQ(schema->AttributeIndex("distance"), 1);
  EXPECT_TRUE(schema->HasAttribute("fare"));
  EXPECT_FALSE(schema->HasAttribute("tip"));
  EXPECT_EQ(schema->AttributeIndex("tip"), -1);
}

TEST(SchemaTest, EmptySchemaOk) {
  const auto schema = Schema::Create({});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->attribute_count(), 0u);
}

TEST(SchemaTest, RejectsDuplicates) {
  EXPECT_FALSE(Schema::Create({"a", "a"}).ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Create({""}).ok());
}

TEST(SchemaTest, RejectsImplicitColumnCollisions) {
  EXPECT_FALSE(Schema::Create({"x"}).ok());
  EXPECT_FALSE(Schema::Create({"y"}).ok());
  EXPECT_FALSE(Schema::Create({"t"}).ok());
}

TEST(SchemaTest, EqualityByNames) {
  EXPECT_EQ(Schema::Create({"a", "b"}).value(),
            Schema::Create({"a", "b"}).value());
  EXPECT_FALSE(Schema::Create({"a"}).value() ==
               Schema::Create({"b"}).value());
}

}  // namespace
}  // namespace urbane::data
