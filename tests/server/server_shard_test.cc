// Sharded execution behind the HTTP server. Two obligations: (1) a query
// that fails inside the sharded engine — one shard crashed, a deadline
// tripped — must come back as the taxonomy-correct HTTP error with the
// error envelope and NO result rows, because a failed scatter-gather never
// merges a partial answer; (2) a healthy sharded engine must serve
// responses byte-identical to the unsharded engine, so turning on --shards
// is invisible to clients.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/json.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "server/json_api.h"
#include "server/query_server.h"
#include "testing/test_worlds.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"

namespace urbane::server {
namespace {

struct HttpReply {
  int status = 0;
  std::string body;
};

HttpReply Post(std::uint16_t port, const std::string& path,
               const std::string& json) {
  HttpReply reply;
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return reply;
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  const std::string raw = "POST " + path + " HTTP/1.1\r\nHost: x\r\n" +
                          "Content-Length: " + std::to_string(json.size()) +
                          "\r\n\r\n" + json;
  std::string response;
  if (net::SendAll(*fd, raw).ok() && net::RecvAll(*fd, &response).ok() &&
      response.size() >= 12) {
    reply.status = std::atoi(response.c_str() + 9);
    const std::size_t split = response.find("\r\n\r\n");
    if (split != std::string::npos) reply.body = response.substr(split + 4);
  }
  net::CloseSocket(*fd);
  return reply;
}

/// A backend standing in for a sharded engine whose scatter-gather failed:
/// it returns exactly the Status the shard layer reports (the first failed
/// shard's, by shard index) and never any rows — which is what the real
/// ShardedExecutor guarantees (see shard_fault_test).
class FailedShardBackend : public QueryBackend {
 public:
  explicit FailedShardBackend(Status failure) : failure_(std::move(failure)) {}

  StatusOr<BackendResult> ExecuteSql(
      const std::string&, std::optional<core::ExecutionMethod>,
      const core::QueryControl*, obs::QueryProfile*) override {
    return failure_;
  }
  std::vector<CatalogEntry> ListDatasets() override { return {}; }
  std::vector<CatalogEntry> ListRegionLayers() override { return {}; }

 private:
  Status failure_;
};

struct TaxonomyCase {
  Status failure;
  int http_status;
  const char* code_token;
};

TEST(ServerShardFaultTest, ShardFailuresMapToTaxonomyCorrectHttpErrors) {
  if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
  const std::vector<TaxonomyCase> cases = {
      {Status::Internal("shard 2 lost its store"), 500, "\"Internal\""},
      {Status::NotFound("shard 1 block missing"), 404, "\"NotFound\""},
      {Status::InvalidArgument("shard 0 bad column"), 400,
       "\"InvalidArgument\""},
      {Status::DeadlineExceeded("query deadline exceeded"), 504,
       "\"DeadlineExceeded\""},
  };
  for (const TaxonomyCase& c : cases) {
    FailedShardBackend backend(c.failure);
    QueryServer server(&backend);
    ASSERT_TRUE(server.Start().ok());
    const HttpReply reply =
        Post(server.port(), "/v1/query",
             R"({"sql": "SELECT COUNT(*) FROM a, b"})");
    EXPECT_EQ(reply.status, c.http_status) << c.failure.ToString();
    EXPECT_NE(reply.body.find(c.code_token), std::string::npos) << reply.body;
    EXPECT_NE(reply.body.find(c.failure.message()), std::string::npos)
        << reply.body;
    // Never a partial merge on the wire: the error envelope carries no
    // result rows.
    EXPECT_EQ(reply.body.find("\"regions\""), std::string::npos) << reply.body;
    server.Stop();
  }
}

class ServerShardRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
    // Dyadic values: every double sum exact, so sharded and unsharded
    // engines render byte-identical JSON (%.17g round-trips doubles).
    const data::PointTable points = testing::MakeDyadicPoints(5000, 0x5E2F);
    const data::RegionSet regions = testing::MakeTessellationRegions(3, 7);
    ASSERT_TRUE(sharded_manager_.AddPointDataset("pts", points).ok());
    ASSERT_TRUE(sharded_manager_.AddRegionLayer("cells", regions).ok());
    ASSERT_TRUE(plain_manager_.AddPointDataset("pts", points).ok());
    ASSERT_TRUE(plain_manager_.AddRegionLayer("cells", regions).ok());
    sharded_manager_.set_engine_shards(4);
  }

  app::DatasetManager sharded_manager_;
  app::DatasetManager plain_manager_;
};

TEST_F(ServerShardRoundTripTest, ShardedResponsesMatchUnshardedByteForByte) {
  app::DatasetManagerBackend sharded_backend(&sharded_manager_);
  app::DatasetManagerBackend plain_backend(&plain_manager_);
  QueryServer server(&sharded_backend);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> statements = {
      "SELECT COUNT(*) FROM pts, cells", "SELECT AVG(v) FROM pts, cells",
      "SELECT SUM(v) FROM pts, cells"};
  for (const std::string& sql : statements) {
    for (const char* method : {"scan", "accurate"}) {
      StatusOr<BackendResult> direct = plain_backend.ExecuteSql(
          sql,
          std::string(method) == "scan" ? core::ExecutionMethod::kScan
                                        : core::ExecutionMethod::kAccurateRaster,
          nullptr, nullptr);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      const std::string expected =
          RenderResult(*direct, 0.0).Find("regions")->Dump();

      const HttpReply reply =
          Post(server.port(), "/v1/query",
               "{\"sql\": \"" + sql + "\", \"method\": \"" + method + "\"}");
      ASSERT_EQ(reply.status, 200) << sql << " via " << method << ": "
                                   << reply.body;
      const auto parsed = data::ParseJson(reply.body);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed->Find("regions")->Dump(), expected)
          << sql << " via " << method;
    }
  }
  server.Stop();
  EXPECT_EQ(server.served(), statements.size() * 2);
}

TEST_F(ServerShardRoundTripTest, ShardMetricsSurfaceAfterShardedQueries) {
  obs::SetMetricsEnabled(true);
  if (!obs::MetricsEnabled()) GTEST_SKIP() << "obs compiled out";
  app::DatasetManagerBackend backend(&sharded_manager_);
  ASSERT_TRUE(backend
                  .ExecuteSql("SELECT SUM(v) FROM pts, cells",
                              core::ExecutionMethod::kScan, nullptr, nullptr)
                  .ok());
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<int> fd = net::ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  std::string response;
  ASSERT_TRUE(
      net::SendAll(*fd, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  ASSERT_TRUE(net::RecvAll(*fd, &response).ok());
  net::CloseSocket(*fd);
  EXPECT_NE(response.find("shard_queries"), std::string::npos) << response;
  EXPECT_NE(response.find("shard_fanout"), std::string::npos) << response;
  server.Stop();
  obs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace urbane::server
