// End-to-end tests for the concurrent HTTP/JSON query server. Two backends
// are used: the real DatasetManager adapter for round-trip fidelity
// (responses over the wire must match in-process execution bit for bit),
// and a gate-controlled fake whose queries block until released, which
// makes the admission-control, drain, and deadline schedules deterministic
// instead of timing-dependent.
#include "server/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/json.h"
#include "net/socket.h"
#include "server/json_api.h"
#include "testing/test_worlds.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"

namespace urbane::server {
namespace {

struct HttpReply {
  int status = 0;       // 0 on transport failure
  std::string headers;  // status line + headers
  std::string body;
};

HttpReply Fetch(std::uint16_t port, const std::string& raw_request) {
  HttpReply reply;
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return reply;
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  std::string response;
  if (net::SendAll(*fd, raw_request).ok() &&
      net::RecvAll(*fd, &response).ok() && response.size() >= 12) {
    reply.status = std::atoi(response.c_str() + 9);
    const std::size_t split = response.find("\r\n\r\n");
    if (split != std::string::npos) {
      reply.headers = response.substr(0, split);
      reply.body = response.substr(split + 4);
    }
  }
  net::CloseSocket(*fd);
  return reply;
}

HttpReply Post(std::uint16_t port, const std::string& path,
               const std::string& json) {
  return Fetch(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\n" +
                         "Content-Length: " + std::to_string(json.size()) +
                         "\r\n\r\n" + json);
}

HttpReply Get(std::uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

bool WaitFor(const std::function<bool()>& condition, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!condition()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// A backend whose queries block on a gate until Release() — or until
/// their QueryControl reports cancellation/deadline, mirroring how real
/// executors poll at pass boundaries. Lets tests freeze the worker pool in
/// a known state (N executing, M queued) with no sleeps-as-synchronization.
class GatedBackend : public QueryBackend {
 public:
  StatusOr<BackendResult> ExecuteSql(
      const std::string& sql, std::optional<core::ExecutionMethod> method,
      const core::QueryControl* control,
      obs::QueryProfile* profile) override {
    (void)sql;
    (void)method;
    (void)profile;
    active_.fetch_add(1, std::memory_order_acq_rel);
    Status verdict = Status::OK();
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!released_) {
        if (control != nullptr) {
          verdict = control->Check();
          if (!verdict.ok()) break;
        }
        cv_.wait_for(lock, std::chrono::milliseconds(5));
      }
    }
    active_.fetch_sub(1, std::memory_order_acq_rel);
    if (!verdict.ok()) return verdict;
    BackendResult result;
    result.dataset = "gated";
    result.regions_layer = "gated";
    result.method = "scan";
    result.exact = true;
    RegionRow row;
    row.id = 1;
    row.name = "only";
    row.value = 1.0;
    row.count = 1;
    result.rows.push_back(row);
    return result;
  }

  std::vector<CatalogEntry> ListDatasets() override { return {}; }
  std::vector<CatalogEntry> ListRegionLayers() override { return {}; }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }
  int active() const { return active_.load(std::memory_order_acquire); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  std::atomic<int> active_{0};
};

/// Real-engine world shared by the fidelity tests.
class QueryServerRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
    ASSERT_TRUE(manager_
                    .AddPointDataset(
                        "pts", testing::MakeUniformPoints(5000, /*seed=*/42))
                    .ok());
    ASSERT_TRUE(manager_
                    .AddRegionLayer("cells",
                                    testing::MakeTessellationRegions(3, 7))
                    .ok());
    backend_ = std::make_unique<app::DatasetManagerBackend>(&manager_);
  }

  /// The canonical rendering of a direct in-process execution, reduced to
  /// the fields that must match over the wire (elapsed_ms may differ).
  std::string DirectRegionsJson(const std::string& sql,
                                core::ExecutionMethod method) {
    StatusOr<BackendResult> result =
        backend_->ExecuteSql(sql, method, nullptr, nullptr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return "";
    return RenderResult(*result, 0.0).Find("regions")->Dump();
  }

  app::DatasetManager manager_;
  std::unique_ptr<app::DatasetManagerBackend> backend_;
};

TEST_F(QueryServerRoundTripTest, ConcurrentQueriesMatchInProcessExecution) {
  // Two statements with different shapes; every HTTP response must render
  // the exact bytes the in-process engine produces (%.17g round-trips
  // doubles, so string equality is value equality).
  const std::string count_sql = "SELECT COUNT(*) FROM pts, cells";
  const std::string sum_sql = "SELECT SUM(v) FROM pts, cells";
  const std::string expected_count =
      DirectRegionsJson(count_sql, core::ExecutionMethod::kAccurateRaster);
  const std::string expected_sum =
      DirectRegionsJson(sum_sql, core::ExecutionMethod::kAccurateRaster);
  ASSERT_FALSE(expected_count.empty());
  ASSERT_FALSE(expected_sum.empty());

  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const bool use_sum = (t + i) % 2 == 0;
        const std::string& sql = use_sum ? sum_sql : count_sql;
        const HttpReply reply = Post(
            server.port(), "/v1/query",
            "{\"sql\": \"" + sql + "\", \"method\": \"accurate\"}");
        if (reply.status != 200) {
          failures.fetch_add(1);
          continue;
        }
        const auto parsed = data::ParseJson(reply.body);
        if (!parsed.ok() ||
            parsed->Find("schema")->AsString() != "urbane.result.v1" ||
            parsed->Find("regions")->Dump() !=
                (use_sum ? expected_sum : expected_count)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.served(), kThreads * kRequestsPerThread);
  EXPECT_EQ(server.rejected_overload(), 0u);
}

TEST_F(QueryServerRoundTripTest, CatalogAndTelemetryEndpoints) {
  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());

  const HttpReply datasets = Get(server.port(), "/v1/datasets");
  EXPECT_EQ(datasets.status, 200);
  {
    const auto parsed = data::ParseJson(datasets.body);
    ASSERT_TRUE(parsed.ok()) << datasets.body;
    EXPECT_EQ(parsed->Find("schema")->AsString(), "urbane.catalog.v1");
    ASSERT_EQ(parsed->Find("datasets")->AsArray().size(), 1u);
    EXPECT_EQ(parsed->Find("datasets")->AsArray()[0].Find("name")->AsString(),
              "pts");
    EXPECT_EQ(parsed->Find("datasets")->AsArray()[0].Find("size")->AsNumber(),
              5000.0);
  }
  const HttpReply regions = Get(server.port(), "/v1/regions");
  EXPECT_EQ(regions.status, 200);
  EXPECT_NE(regions.body.find("\"cells\""), std::string::npos);

  // Telemetry rides the same listener: one port for traffic and scrape.
  EXPECT_EQ(Get(server.port(), "/healthz").status, 200);
  const HttpReply metrics = Get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain"), std::string::npos);
  EXPECT_EQ(Get(server.port(), "/slowlog").status, 200);

  server.Stop();
}

TEST_F(QueryServerRoundTripTest, ErrorTaxonomyOverTheWire) {
  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  // Malformed JSON body -> 400 with the error envelope.
  HttpReply reply = Post(port, "/v1/query", "{not json");
  EXPECT_EQ(reply.status, 400);
  EXPECT_NE(reply.body.find("\"InvalidArgument\""), std::string::npos);

  // SQL parse errors surface the byte offset of the offending token.
  reply = Post(port, "/v1/query", R"({"sql": "SELECT BOGUS(v) FROM a, b"})");
  EXPECT_EQ(reply.status, 400);
  EXPECT_NE(reply.body.find("SQL parse error at byte 7"), std::string::npos);

  // Binding failures are 404, not 400: the statement was well-formed.
  reply = Post(port, "/v1/query",
               R"({"sql": "SELECT COUNT(*) FROM nosuch, cells"})");
  EXPECT_EQ(reply.status, 404);
  EXPECT_NE(reply.body.find("\"NotFound\""), std::string::npos);

  // Wrong verbs and unknown endpoints.
  EXPECT_EQ(Get(port, "/v1/query").status, 405);
  EXPECT_EQ(Post(port, "/metrics", "{}").status, 405);
  EXPECT_EQ(Get(port, "/v2/nope").status, 404);

  // Malformed HTTP framing -> 400 from the request parser.
  EXPECT_EQ(Fetch(port, "GARBAGE\r\n\r\n").status, 400);
  EXPECT_EQ(Fetch(port, "GET /\r\n\r\n").status, 400);
  EXPECT_EQ(
      Fetch(port, "POST /v1/query HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
          .status,
      400);

  // A peer that hangs up mid-request gets no response; the server must
  // shrug it off and keep serving.
  {
    StatusOr<int> fd = net::ConnectLoopback(port);
    ASSERT_TRUE(fd.ok());
    net::SendAll(*fd, "GET /heal");
    net::CloseSocket(*fd);
  }
  EXPECT_EQ(Get(port, "/healthz").status, 200);

  server.Stop();
}

TEST(QueryServerAdmissionTest, OverloadShedsWith429AndServesEveryAdmission) {
  if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
  GatedBackend backend;
  QueryServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 2;
  options.retry_after_seconds = 3;
  QueryServer server(&backend, options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  const std::string body = R"({"sql": "SELECT COUNT(*) FROM a, b"})";

  // Freeze the pool: one request executing (gated), two parked in the
  // admission queue — exactly at capacity.
  std::vector<std::thread> admitted;
  std::vector<HttpReply> admitted_replies(3);
  admitted.emplace_back(
      [&] { admitted_replies[0] = Post(port, "/v1/query", body); });
  ASSERT_TRUE(WaitFor([&] { return backend.active() == 1; }));
  admitted.emplace_back(
      [&] { admitted_replies[1] = Post(port, "/v1/query", body); });
  admitted.emplace_back(
      [&] { admitted_replies[2] = Post(port, "/v1/query", body); });
  ASSERT_TRUE(WaitFor([&] { return server.accepted() == 3; }));

  // Every further arrival must be shed from the acceptor with 429 and a
  // Retry-After hint — the backend never sees them.
  for (int i = 0; i < 5; ++i) {
    const HttpReply shed = Post(port, "/v1/query", body);
    EXPECT_EQ(shed.status, 429) << "burst request " << i;
    EXPECT_NE(shed.headers.find("Retry-After: 3"), std::string::npos);
  }
  EXPECT_EQ(server.rejected_overload(), 5u);
  EXPECT_EQ(backend.active(), 1);  // shed load never reached the engine

  // Open the gate: every admitted request completes with 200 — overload
  // may refuse work, it may never drop admitted work.
  backend.Release();
  for (std::thread& t : admitted) t.join();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admitted_replies[i].status, 200) << "admitted request " << i;
  }
  server.Stop();
  EXPECT_EQ(server.served(), 3u);
}

TEST(QueryServerDrainTest, StopFinishesInFlightAndRefusesQueued) {
  if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
  GatedBackend backend;
  QueryServerOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 8;
  QueryServer server(&backend, options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  const std::string body = R"({"sql": "SELECT COUNT(*) FROM a, b"})";

  // One request executing, two queued behind it.
  std::vector<std::thread> clients;
  std::vector<HttpReply> replies(3);
  clients.emplace_back([&] { replies[0] = Post(port, "/v1/query", body); });
  ASSERT_TRUE(WaitFor([&] { return backend.active() == 1; }));
  clients.emplace_back([&] { replies[1] = Post(port, "/v1/query", body); });
  clients.emplace_back([&] { replies[2] = Post(port, "/v1/query", body); });
  ASSERT_TRUE(WaitFor([&] { return server.accepted() == 3; }));

  std::thread stopper([&] { server.Stop(); });
  // Wait for the drain to latch (so the queued pair cannot slip into
  // execution), then let the in-flight query finish.
  ASSERT_TRUE(WaitFor([&] { return server.draining(); }));
  backend.Release();
  stopper.join();
  for (std::thread& t : clients) t.join();

  // The in-flight request completed normally; the queued ones were refused
  // with 503 instead of silently dropped.
  EXPECT_EQ(replies[0].status, 200);
  EXPECT_EQ(replies[1].status, 503);
  EXPECT_EQ(replies[2].status, 503);
  EXPECT_NE(replies[1].body.find("draining"), std::string::npos);
  EXPECT_EQ(server.rejected_draining(), 2u);

  // The listener is gone: new connections get nothing.
  EXPECT_EQ(Get(port, "/healthz").status, 0);
}

TEST(QueryServerDrainTest, DrainDeadlineCancelsStuckQueries) {
  if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
  GatedBackend backend;  // never released: the query is stuck until cancel
  QueryServerOptions options;
  options.worker_threads = 1;
  options.drain_timeout_ms = 100;
  QueryServer server(&backend, options);
  ASSERT_TRUE(server.Start().ok());

  HttpReply reply;
  std::thread client(
      [&] { reply = Post(server.port(), "/v1/query",
                         R"({"sql": "SELECT COUNT(*) FROM a, b"})"); });
  ASSERT_TRUE(WaitFor([&] { return backend.active() == 1; }));

  // Stop() must return despite the wedged query: past drain_timeout_ms it
  // cancels the worker's control and the query aborts as 504.
  server.Stop();
  client.join();
  EXPECT_EQ(reply.status, 504);
  EXPECT_NE(reply.body.find("\"DeadlineExceeded\""), std::string::npos);
}

TEST(QueryServerDeadlineTest, PerRequestTimeoutYields504) {
  if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
  GatedBackend backend;  // gated: only the deadline can end the query
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  const HttpReply reply = Post(
      server.port(), "/v1/query",
      R"({"sql": "SELECT COUNT(*) FROM a, b", "timeout_ms": 50})");
  EXPECT_EQ(reply.status, 504);
  EXPECT_NE(reply.body.find("\"DeadlineExceeded\""), std::string::npos);
  EXPECT_NE(reply.body.find("deadline exceeded"), std::string::npos);

  // A deadline belongs to its request alone: after 504, the next request
  // (no timeout) executes normally once the gate opens.
  backend.Release();
  EXPECT_EQ(Post(server.port(), "/v1/query",
                 R"({"sql": "SELECT COUNT(*) FROM a, b"})")
                .status,
            200);
  server.Stop();
}

TEST(QueryServerLifecycleTest, StartStopRestartSemantics) {
  if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
  GatedBackend backend;
  backend.Release();  // queries complete immediately
  QueryServer server(&backend);
  EXPECT_FALSE(server.running());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_FALSE(server.Start().ok());  // double start refused

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);

  ASSERT_TRUE(server.Start().ok());  // restart binds a fresh listener
  EXPECT_EQ(Get(server.port(), "/healthz").status, 200);
  server.Stop();

  QueryServer no_backend(nullptr);
  EXPECT_FALSE(no_backend.Start().ok());
}

}  // namespace
}  // namespace urbane::server
