// Wire-format tests for the query server's JSON API: request validation,
// result/catalog/error rendering, and the Status -> HTTP status mapping.
// No sockets — the transport is exercised in query_server_test.cc.
#include "server/json_api.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "data/json.h"

namespace urbane::server {
namespace {

TEST(ParseApiRequestTest, AcceptsMinimalAndFullBodies) {
  StatusOr<ApiRequest> minimal =
      ParseApiRequest(R"({"sql": "SELECT COUNT(*) FROM taxi, nbhd"})");
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_EQ(minimal->sql, "SELECT COUNT(*) FROM taxi, nbhd");
  // Default engine: the paper's exact raster join.
  ASSERT_TRUE(minimal->method.has_value());
  EXPECT_EQ(*minimal->method, core::ExecutionMethod::kAccurateRaster);
  EXPECT_EQ(minimal->timeout_ms, 0);

  StatusOr<ApiRequest> full = ParseApiRequest(
      R"({"sql": "SELECT AVG(v) FROM p, r", "method": "index",)"
      R"( "timeout_ms": 250})");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_TRUE(full->method.has_value());
  EXPECT_EQ(*full->method, core::ExecutionMethod::kIndexJoin);
  EXPECT_EQ(full->timeout_ms, 250);
}

TEST(ParseApiRequestTest, AutoMethodMeansPlannerChoice) {
  StatusOr<ApiRequest> request =
      ParseApiRequest(R"({"sql": "SELECT COUNT(*) FROM a, b",)"
                      R"( "method": "auto"})");
  ASSERT_TRUE(request.ok());
  EXPECT_FALSE(request->method.has_value());
}

TEST(ParseApiRequestTest, RejectsMalformedBodies) {
  const std::vector<std::string> corpus = {
      "",                                      // empty
      "not json at all",                       // lexer failure
      "[1, 2, 3]",                             // not an object
      "{}",                                    // missing sql
      R"({"sql": 42})",                        // sql not a string
      R"({"sql": ""})",                        // sql empty
      R"({"sql": "SELECT", "method": 7})",     // method not a string
      R"({"sql": "SELECT", "method": "x"})",   // unknown method
      R"({"sql": "SELECT", "timeout_ms": -5})",     // negative timeout
      R"({"sql": "SELECT", "timeout_ms": "fast"})",  // non-numeric timeout
      R"({"sql": "SELECT")",                   // truncated JSON
  };
  for (const std::string& body : corpus) {
    const StatusOr<ApiRequest> request = ParseApiRequest(body);
    EXPECT_FALSE(request.ok()) << body;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument) << body;
    EXPECT_EQ(HttpStatusForError(request.status()), 400) << body;
  }
}

TEST(ParseMethodNameTest, MapsEveryName) {
  EXPECT_EQ(**ParseMethodName("scan"), core::ExecutionMethod::kScan);
  EXPECT_EQ(**ParseMethodName("index"), core::ExecutionMethod::kIndexJoin);
  EXPECT_EQ(**ParseMethodName("raster"),
            core::ExecutionMethod::kBoundedRaster);
  EXPECT_EQ(**ParseMethodName("accurate"),
            core::ExecutionMethod::kAccurateRaster);
  EXPECT_FALSE(ParseMethodName("auto")->has_value());
  EXPECT_FALSE(ParseMethodName("quantum").ok());
}

TEST(RenderResultTest, EmitsSchemaAndNullsNonFiniteValues) {
  BackendResult result;
  result.dataset = "taxi";
  result.regions_layer = "nbhd";
  result.method = "accurate";
  result.exact = true;
  RegionRow populated;
  populated.id = 7;
  populated.name = "Midtown";
  populated.value = 12.5;
  populated.count = 4;
  result.rows.push_back(populated);
  RegionRow empty;  // AVG over an empty group: NaN must render as null
  empty.id = 8;
  empty.name = "Harbor";
  empty.value = std::nan("");
  empty.count = 0;
  empty.error_bound = 0.25;
  empty.has_error_bound = true;
  result.rows.push_back(empty);

  const std::string json = RenderResult(result, 3.5).Dump();
  const auto parsed = data::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->Find("schema")->AsString(), "urbane.result.v1");
  EXPECT_EQ(parsed->Find("dataset")->AsString(), "taxi");
  EXPECT_TRUE(parsed->Find("exact")->AsBool());
  const data::JsonValue* regions = parsed->Find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_EQ(regions->AsArray().size(), 2u);
  const data::JsonValue& first = regions->AsArray()[0];
  EXPECT_EQ(first.Find("id")->AsNumber(), 7.0);
  EXPECT_EQ(first.Find("name")->AsString(), "Midtown");
  EXPECT_EQ(first.Find("value")->AsNumber(), 12.5);
  EXPECT_EQ(first.Find("error_bound"), nullptr);  // exact row: omitted
  const data::JsonValue& second = regions->AsArray()[1];
  EXPECT_TRUE(second.Find("value")->is_null());
  EXPECT_EQ(second.Find("error_bound")->AsNumber(), 0.25);
}

TEST(RenderCatalogTest, ListsEntriesUnderTheGivenKey) {
  std::vector<CatalogEntry> entries(2);
  entries[0].name = "taxi";
  entries[0].size = 100000;
  entries[1].name = "crime";
  entries[1].size = 5000;
  const auto parsed = data::ParseJson(RenderCatalog("datasets", entries).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("schema")->AsString(), "urbane.catalog.v1");
  const data::JsonValue* datasets = parsed->Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->AsArray().size(), 2u);
  EXPECT_EQ(datasets->AsArray()[0].Find("name")->AsString(), "taxi");
  EXPECT_EQ(datasets->AsArray()[0].Find("size")->AsNumber(), 100000.0);
}

TEST(RenderErrorTest, WrapsCodeAndMessage) {
  const auto parsed = data::ParseJson(
      RenderError(Status::NotFound("unknown data set 'bogus'")).Dump());
  ASSERT_TRUE(parsed.ok());
  const data::JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->AsString(), "NotFound");
  EXPECT_EQ(error->Find("message")->AsString(), "unknown data set 'bogus'");
}

TEST(HttpStatusForErrorTest, MapsTheErrorTaxonomy) {
  EXPECT_EQ(HttpStatusForError(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusForError(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusForError(Status::AlreadyExists("x")), 409);
  EXPECT_EQ(HttpStatusForError(Status::FailedPrecondition("x")), 409);
  EXPECT_EQ(HttpStatusForError(Status::OutOfRange("x")), 416);
  EXPECT_EQ(HttpStatusForError(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(HttpStatusForError(Status::NotImplemented("x")), 501);
  EXPECT_EQ(HttpStatusForError(Status::Internal("x")), 500);
  EXPECT_EQ(HttpStatusForError(Status::IoError("x")), 500);
}

}  // namespace
}  // namespace urbane::server
