// End-to-end trace-context propagation and per-request profiles over the
// HTTP surface: an inbound W3C traceparent must be honored and echoed; a
// malformed one must be IGNORED (fresh context, request still served —
// the spec forbids rejecting on a bad header); `?profile=1` (or
// X-Urbane-Profile: 1) must attach an urbane.profile.v1 document whose
// trace id matches the response header, the retained copy at
// GET /v1/profiles/<trace_id>, and — when the journal is on — the trace
// stamp on every event the request emitted. One id links every artifact.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/json.h"
#include "net/socket.h"
#include "obs/event_journal.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "server/query_server.h"
#include "testing/test_worlds.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"

namespace urbane::server {
namespace {

constexpr char kInboundTraceparent[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
constexpr char kInboundTraceId[] = "4bf92f3577b34da6a3ce929d0e0e4736";

struct HttpReply {
  int status = 0;
  std::string headers;  // raw header block, lowercased names by the peer
  std::string body;
};

HttpReply RoundTrip(std::uint16_t port, const std::string& raw) {
  HttpReply reply;
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return reply;
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  std::string response;
  if (net::SendAll(*fd, raw).ok() && net::RecvAll(*fd, &response).ok() &&
      response.size() >= 12) {
    reply.status = std::atoi(response.c_str() + 9);
    const std::size_t split = response.find("\r\n\r\n");
    if (split != std::string::npos) {
      reply.headers = response.substr(0, split);
      reply.body = response.substr(split + 4);
    }
  }
  net::CloseSocket(*fd);
  return reply;
}

HttpReply Post(std::uint16_t port, const std::string& target,
               const std::string& json,
               const std::vector<std::pair<std::string, std::string>>&
                   extra_headers = {}) {
  std::string raw = "POST " + target + " HTTP/1.1\r\nHost: x\r\n";
  for (const auto& [name, value] : extra_headers) {
    raw += name + ": " + value + "\r\n";
  }
  raw += "Content-Length: " + std::to_string(json.size()) + "\r\n\r\n" + json;
  return RoundTrip(port, raw);
}

HttpReply Get(std::uint16_t port, const std::string& target) {
  return RoundTrip(port, "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

/// The echoed traceparent header value, or "" when the response lacks one.
std::string EchoedTraceparent(const HttpReply& reply) {
  const std::string needle = "\r\ntraceparent: ";
  // Header names may come back in any case; the server emits lowercase.
  const std::size_t at = reply.headers.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = reply.headers.find("\r\n", begin);
  return reply.headers.substr(begin, end - begin);
}

class ServerProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
    ASSERT_TRUE(manager_
                    .AddPointDataset("pts",
                                     testing::MakeDyadicPoints(4000, 0x9AFE))
                    .ok());
    ASSERT_TRUE(manager_
                    .AddRegionLayer("cells",
                                    testing::MakeTessellationRegions(3, 5))
                    .ok());
    obs::ProfileStore::Global().Clear();
  }

  app::DatasetManager manager_;
};

constexpr char kQueryJson[] =
    R"({"sql": "SELECT SUM(v) FROM pts, cells", "method": "scan"})";

TEST_F(ServerProfileTest, InboundTraceparentIsHonoredEndToEnd) {
  app::DatasetManagerBackend backend(&manager_);
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  const HttpReply reply =
      Post(server.port(), "/v1/query?profile=1", kQueryJson,
           {{"traceparent", kInboundTraceparent}});
  ASSERT_EQ(reply.status, 200) << reply.body;

  // The response echoes the inherited trace id (fresh parent span id is
  // allowed; the trace id is the correlation key).
  const std::string echoed = EchoedTraceparent(reply);
  ASSERT_EQ(echoed.size(), 55u) << echoed;
  EXPECT_EQ(echoed.substr(3, 32), kInboundTraceId);

  // The body embeds the profile document under the same trace.
  const auto parsed = data::ParseJson(reply.body);
  ASSERT_TRUE(parsed.ok());
  const data::JsonValue* profile = parsed->Find("profile");
  ASSERT_NE(profile, nullptr) << reply.body;
  EXPECT_EQ(profile->Find("schema")->AsString(), "urbane.profile.v1");
  EXPECT_EQ(profile->Find("trace_id")->AsString(), kInboundTraceId);
  EXPECT_EQ(profile->Find("method")->AsString(), "scan");
  // Queue wait was measured at the server layer (>= 0 and present).
  ASSERT_NE(profile->Find("request"), nullptr);
  EXPECT_GE(profile->Find("request")->Find("queue_wait_seconds")->AsNumber(),
            0.0);

  // The retained copy is addressable by the same trace id...
  const HttpReply stored =
      Get(server.port(), std::string("/v1/profiles/") + kInboundTraceId);
  ASSERT_EQ(stored.status, 200) << stored.body;
  const auto stored_doc = data::ParseJson(stored.body);
  ASSERT_TRUE(stored_doc.ok());
  EXPECT_EQ(stored_doc->Find("trace_id")->AsString(), kInboundTraceId);

  // ...and shows up in the recent listing.
  const HttpReply recent = Get(server.port(), "/v1/profiles/recent");
  ASSERT_EQ(recent.status, 200);
  EXPECT_NE(recent.body.find(kInboundTraceId), std::string::npos)
      << recent.body;
  server.Stop();
}

TEST_F(ServerProfileTest, JournalEventsCarryTheRequestTraceId) {
  obs::SetJournalEnabled(true);
  if (!obs::JournalEnabled()) GTEST_SKIP() << "obs compiled out";
  app::DatasetManagerBackend backend(&manager_);
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  std::vector<obs::Event> drained;
  obs::EventJournal::Global().Drain(&drained);  // discard pre-test noise
  drained.clear();

  const HttpReply reply =
      Post(server.port(), "/v1/query", kQueryJson,
           {{"traceparent", kInboundTraceparent}});
  ASSERT_EQ(reply.status, 200) << reply.body;

  obs::TraceContext inbound;
  ASSERT_TRUE(obs::ParseTraceparent(kInboundTraceparent, &inbound));
  obs::EventJournal::Global().Drain(&drained);
  std::size_t stamped = 0;
  for (const obs::Event& event : drained) {
    if (event.trace_hi == inbound.trace_hi &&
        event.trace_lo == inbound.trace_lo) {
      ++stamped;
    }
  }
  // At least query.start/query.finish ran under the request's context.
  EXPECT_GE(stamped, 2u) << "of " << drained.size() << " drained events";
  server.Stop();
  obs::SetJournalEnabled(false);
}

TEST_F(ServerProfileTest, MalformedTraceparentIsIgnoredNotRejected) {
  app::DatasetManagerBackend backend(&manager_);
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> corpus = {
      "nonsense",
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902xx-01",
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
  };
  for (const std::string& header : corpus) {
    const HttpReply reply = Post(server.port(), "/v1/query?profile=1",
                                 kQueryJson, {{"traceparent", header}});
    // Served anyway, under a freshly generated (different) trace.
    ASSERT_EQ(reply.status, 200) << header << ": " << reply.body;
    const std::string echoed = EchoedTraceparent(reply);
    ASSERT_EQ(echoed.size(), 55u) << header;
    EXPECT_NE(echoed.substr(3, 32), kInboundTraceId) << header;
    const auto parsed = data::ParseJson(reply.body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->Find("profile")->Find("trace_id")->AsString(),
              echoed.substr(3, 32))
        << header;
  }
  server.Stop();
}

TEST_F(ServerProfileTest, ProfileIsOptInPerRequest) {
  app::DatasetManagerBackend backend(&manager_);
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  // No opt-in: response still carries a traceparent but no profile.
  const HttpReply plain = Post(server.port(), "/v1/query", kQueryJson);
  ASSERT_EQ(plain.status, 200);
  EXPECT_EQ(EchoedTraceparent(plain).size(), 55u);
  const auto plain_doc = data::ParseJson(plain.body);
  ASSERT_TRUE(plain_doc.ok());
  EXPECT_EQ(plain_doc->Find("profile"), nullptr) << plain.body;

  // The header spelling of the opt-in works too.
  const HttpReply via_header = Post(server.port(), "/v1/query", kQueryJson,
                                    {{"X-Urbane-Profile", "1"}});
  ASSERT_EQ(via_header.status, 200);
  const auto header_doc = data::ParseJson(via_header.body);
  ASSERT_TRUE(header_doc.ok());
  EXPECT_NE(header_doc->Find("profile"), nullptr) << via_header.body;
  server.Stop();
}

TEST_F(ServerProfileTest, ProfileEndpointErrors) {
  app::DatasetManagerBackend backend(&manager_);
  QueryServer server(&backend);
  ASSERT_TRUE(server.Start().ok());

  // Unknown (never-retained) trace id -> 404 with the error envelope.
  const HttpReply missing = Get(
      server.port(), "/v1/profiles/ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("NotFound"), std::string::npos) << missing.body;

  // The profiles surface is read-only.
  const HttpReply posted = Post(server.port(), "/v1/profiles/recent", "{}");
  EXPECT_EQ(posted.status, 405) << posted.body;
  server.Stop();
}

}  // namespace
}  // namespace urbane::server
