// End-to-end tests for the streaming-ingest HTTP surface: POST /v1/ingest
// feeds a live data set over the wire, the appended rows are visible to
// the very next /v1/query (which reports the as-of watermark), and a
// saturated write path maps onto 429 + Retry-After — the same admission
// contract the server's queue shedding uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "data/json.h"
#include "net/socket.h"
#include "server/json_api.h"
#include "server/query_server.h"
#include "testing/test_worlds.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"

namespace urbane::server {
namespace {

struct HttpReply {
  int status = 0;       // 0 on transport failure
  std::string headers;  // status line + headers
  std::string body;
};

HttpReply Fetch(std::uint16_t port, const std::string& raw_request) {
  HttpReply reply;
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return reply;
  net::SetSocketTimeouts(*fd, 10'000, 10'000);
  std::string response;
  if (net::SendAll(*fd, raw_request).ok() &&
      net::RecvAll(*fd, &response).ok() && response.size() >= 12) {
    reply.status = std::atoi(response.c_str() + 9);
    const std::size_t split = response.find("\r\n\r\n");
    if (split != std::string::npos) {
      reply.headers = response.substr(0, split);
      reply.body = response.substr(split + 4);
    }
  }
  net::CloseSocket(*fd);
  return reply;
}

HttpReply Post(std::uint16_t port, const std::string& path,
               const std::string& json) {
  return Fetch(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\n" +
                         "Content-Length: " + std::to_string(json.size()) +
                         "\r\n\r\n" + json);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/server_ingest_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A row inside the tessellation world [0,100]^2, as wire JSON.
std::string Row(double x, double y, std::int64_t t, double v) {
  return "[" + std::to_string(x) + ", " + std::to_string(y) + ", " +
         std::to_string(t) + ", " + std::to_string(v) + "]";
}

class ServerIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::SocketsAvailable()) GTEST_SKIP() << "no sockets here";
    ASSERT_TRUE(manager_
                    .AddRegionLayer("cells",
                                    testing::MakeTessellationRegions(3, 7))
                    .ok());
    backend_ = std::make_unique<app::DatasetManagerBackend>(&manager_);
  }

  app::DatasetManager manager_;
  std::unique_ptr<app::DatasetManagerBackend> backend_;
};

TEST_F(ServerIngestTest, IngestedRowsAreVisibleToTheNextQuery) {
  ASSERT_TRUE(
      manager_.EnableIngest("live", FreshDir("visible"), {"v"}).ok());
  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());

  const std::string batch =
      "{\"dataset\": \"live\", \"rows\": [" + Row(10, 10, 1000, 1.5) + ", " +
      Row(50, 50, 2000, 2.5) + ", " + Row(90, 90, 3000, 3.5) + "]}";
  const HttpReply ingest = Post(server.port(), "/v1/ingest", batch);
  ASSERT_EQ(ingest.status, 200) << ingest.body;
  StatusOr<data::JsonValue> ingest_json = data::ParseJson(ingest.body);
  ASSERT_TRUE(ingest_json.ok());
  EXPECT_EQ(ingest_json->Find("schema")->AsString(), "urbane.ingest.v1");
  EXPECT_EQ(ingest_json->Find("rows_appended")->AsNumber(), 3.0);
  EXPECT_EQ(ingest_json->Find("watermark")->AsNumber(), 3.0);

  const HttpReply query = Post(
      server.port(), "/v1/query",
      "{\"sql\": \"SELECT COUNT(*) FROM live, cells\", \"method\": \"scan\"}");
  ASSERT_EQ(query.status, 200) << query.body;
  StatusOr<data::JsonValue> query_json = data::ParseJson(query.body);
  ASSERT_TRUE(query_json.ok());
  EXPECT_EQ(query_json->Find("schema")->AsString(), "urbane.result.v1");
  ASSERT_NE(query_json->Find("watermark"), nullptr)
      << "live results must carry the as-of watermark";
  EXPECT_EQ(query_json->Find("watermark")->AsNumber(), 3.0);
  // The tessellation covers [0,100]^2, so all three rows land in regions.
  double total = 0;
  for (const data::JsonValue& region :
       query_json->Find("regions")->AsArray()) {
    total += region.Find("count")->AsNumber();
  }
  EXPECT_EQ(total, 3.0);

  // A second ingest moves the watermark the next query reports.
  const std::string more =
      "{\"dataset\": \"live\", \"rows\": [" + Row(30, 70, 4000, -1.0) + "]}";
  ASSERT_EQ(Post(server.port(), "/v1/ingest", more).status, 200);
  const HttpReply after = Post(
      server.port(), "/v1/query",
      "{\"sql\": \"SELECT COUNT(*) FROM live, cells\", \"method\": \"scan\"}");
  ASSERT_EQ(after.status, 200);
  StatusOr<data::JsonValue> after_json = data::ParseJson(after.body);
  ASSERT_TRUE(after_json.ok());
  EXPECT_EQ(after_json->Find("watermark")->AsNumber(), 4.0);
}

TEST_F(ServerIngestTest, MalformedIngestRequestsAreRejected) {
  ASSERT_TRUE(manager_.EnableIngest("live", FreshDir("reject"), {"v"}).ok());
  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  EXPECT_EQ(Post(port, "/v1/ingest", "not json").status, 400);
  EXPECT_EQ(Post(port, "/v1/ingest", "{\"rows\": [[1,2,3,4]]}").status, 400)
      << "missing dataset";
  EXPECT_EQ(Post(port, "/v1/ingest",
                 "{\"dataset\": \"live\", \"rows\": []}")
                .status,
            400)
      << "empty batch";
  EXPECT_EQ(Post(port, "/v1/ingest",
                 "{\"dataset\": \"live\", \"rows\": [[1, 2]]}")
                .status,
            400)
      << "rows need at least x, y, t";
  EXPECT_EQ(Post(port, "/v1/ingest",
                 "{\"dataset\": \"live\", \"rows\": [[1,2,3,4], [1,2,3]]}")
                .status,
            400)
      << "ragged batch";
  // Well-formed request against a data set that is not live: not found.
  EXPECT_EQ(Post(port, "/v1/ingest",
                 "{\"dataset\": \"nope\", \"rows\": [[1,2,3,4]]}")
                .status,
            404);
  // GET on the ingest endpoint is a method error.
  EXPECT_EQ(
      Fetch(port, "GET /v1/ingest HTTP/1.1\r\nHost: x\r\n\r\n").status, 405);
}

TEST_F(ServerIngestTest, SaturatedWritePathMapsOnto429WithRetryAfter) {
  ingest::IngestOptions options;
  options.memtable_rows = 4;
  options.max_sealed_runs = 1;
  ASSERT_TRUE(
      manager_.EnableIngest("live", FreshDir("saturate"), {"v"}, options)
          .ok());
  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());

  const std::string batch =
      "{\"dataset\": \"live\", \"rows\": [" + Row(10, 10, 1000, 1.0) + ", " +
      Row(20, 20, 1100, 1.0) + ", " + Row(30, 30, 1200, 1.0) + ", " +
      Row(40, 40, 1300, 1.0) + "]}";
  ASSERT_EQ(Post(server.port(), "/v1/ingest", batch).status, 200);  // hot
  ASSERT_EQ(Post(server.port(), "/v1/ingest", batch).status, 200);  // seals
  const HttpReply rejected = Post(server.port(), "/v1/ingest", batch);
  EXPECT_EQ(rejected.status, 429);
  EXPECT_NE(rejected.headers.find("Retry-After:"), std::string::npos)
      << rejected.headers;

  // A flush drains the sealed run; the same batch is accepted again.
  ASSERT_TRUE(manager_.FlushIngest("live").ok());
  EXPECT_EQ(Post(server.port(), "/v1/ingest", batch).status, 200);
}

TEST_F(ServerIngestTest, LiveDatasetsAppearInTheCatalog) {
  ASSERT_TRUE(manager_.EnableIngest("live", FreshDir("catalog"), {"v"}).ok());
  const std::string batch =
      "{\"dataset\": \"live\", \"rows\": [" + Row(10, 10, 1000, 1.0) + "]}";
  QueryServer server(backend_.get());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(Post(server.port(), "/v1/ingest", batch).status, 200);

  const HttpReply catalog =
      Fetch(server.port(), "GET /v1/datasets HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(catalog.status, 200);
  EXPECT_NE(catalog.body.find("\"live\""), std::string::npos) << catalog.body;
}

}  // namespace
}  // namespace urbane::server
