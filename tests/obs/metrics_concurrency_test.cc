// Concurrency tests for the metrics subsystem, designed to run under TSan
// (tools/check.sh builds obs_test with -fsanitize=thread): N writer threads
// hammer counters/gauges/histograms and the registry, then the totals are
// checked against a serial oracle. No increments may be lost and no data
// race may be reported.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace urbane::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 20'000;

TEST(MetricsConcurrencyTest, CounterMatchesSerialOracle) {
  Counter counter;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        counter.Add(1 + (t + i) % 3);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  std::uint64_t oracle = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      oracle += 1 + (t + i) % 3;
    }
  }
  EXPECT_EQ(counter.Value(), oracle);
}

TEST(MetricsConcurrencyTest, HistogramCountSumMatchSerialOracle) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h", {0.25, 0.5, 0.75});
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        histogram.Observe(static_cast<double>((t * 7 + i) % 100) / 100.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  double oracle_sum = 0.0;
  std::vector<std::uint64_t> oracle_buckets(4, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      const double value = static_cast<double>((t * 7 + i) % 100) / 100.0;
      oracle_sum += value;
      if (value <= 0.25) {
        ++oracle_buckets[0];
      } else if (value <= 0.5) {
        ++oracle_buckets[1];
      } else if (value <= 0.75) {
        ++oracle_buckets[2];
      } else {
        ++oracle_buckets[3];
      }
    }
  }

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* h = snapshot.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kOpsPerThread);
  ASSERT_EQ(h->buckets.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(h->buckets[b], oracle_buckets[b]) << "bucket " << b;
  }
  // CAS-add of doubles is order-dependent; allow rounding slack only.
  EXPECT_NEAR(h->sum, oracle_sum, 1e-6 * oracle_sum);
  EXPECT_DOUBLE_EQ(h->min, 0.0);
  EXPECT_DOUBLE_EQ(h->max, 0.99);
}

TEST(MetricsConcurrencyTest, RegistryLookupsRaceWithWrites) {
  MetricsRegistry registry;
  // Threads concurrently create/lookup a shared set of names while a reader
  // snapshots: exercises the shard mutexes and the stable-address contract.
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      // Monotonicity spot-check: values never decrease across snapshots.
      (void)snapshot;
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (std::size_t i = 0; i < kOpsPerThread / 10; ++i) {
        registry.GetCounter("shared." + std::to_string(i % 17)).Add(1);
        registry.GetGauge("gauge." + std::to_string(t)).Set(
            static_cast<double>(i));
        registry.GetHistogram("lat." + std::to_string(i % 5))
            .Observe(0.001 * static_cast<double>(i % 50));
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  std::uint64_t total = 0;
  for (const CounterSnapshot& counter : snapshot.counters) {
    total += counter.value;
  }
  EXPECT_EQ(total, kThreads * (kOpsPerThread / 10));
  EXPECT_EQ(snapshot.gauges.size(), kThreads);
  EXPECT_EQ(snapshot.histograms.size(), 5u);
}

TEST(MetricsConcurrencyTest, ResetRacesWithAdds) {
  // Adds racing a Reset may or may not survive it, but the final value must
  // equal the number of post-reset adds exactly once the threads quiesce.
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        counter.Add(1);
      }
    });
  }
  registry.Reset();  // concurrent with the adds: must be race-free
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_LE(counter.Value(), kThreads * kOpsPerThread);
  counter.Reset();
  counter.Add(5);
  EXPECT_EQ(counter.Value(), 5u);
}

TEST(MetricsConcurrencyTest, SharedTraceAcrossThreads) {
  // The facade and executors may tag one QueryTrace from different threads;
  // the trace serializes internally.
  QueryTrace trace;
  const int root = trace.BeginSpan("execute");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, root, t] {
      for (std::size_t i = 0; i < 500; ++i) {
        trace.AddCompletedSpan("worker", 0.001, root);
        trace.Tag("thread." + std::to_string(t), std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  trace.EndSpan(root);
  EXPECT_EQ(trace.Spans().size(), 1 + kThreads * 500);
  EXPECT_EQ(trace.Tags().size(), kThreads);
}

}  // namespace
}  // namespace urbane::obs
