// The query-profile contract (DESIGN.md §12), bottom up: the W3C
// traceparent parser must accept exactly the version-00 shape and reject
// the malformed corpus WITHOUT touching the output (callers fall back to a
// generated context and still serve the request); the urbane.profile.v1
// document must be bit-stable across runs at a fixed (thread count, shard
// count) once the measured *_seconds fields are canonicalized away; a
// sharded profile's per-shard counters must sum exactly to the executor
// totals; and store-backed execution must attribute block reads, cache
// hits, and decoded bytes to the requesting query.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/spatial_aggregation.h"
#include "data/json.h"
#include "store/block_cache.h"
#include "store/store_reader.h"
#include "store/store_scan_join.h"
#include "store/store_writer.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::obs {
namespace {

constexpr char kValidTraceparent[] =
    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";

TEST(TraceparentTest, ParsesCanonicalHeader) {
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(kValidTraceparent, &context));
  EXPECT_EQ(context.trace_hi, 0x0af7651916cd43ddULL);
  EXPECT_EQ(context.trace_lo, 0x8448eb211c80319cULL);
  EXPECT_EQ(context.parent_id, 0xb7ad6b7169203331ULL);
  EXPECT_EQ(context.flags, 0x01);
  EXPECT_TRUE(context.valid());
  EXPECT_EQ(context.TraceIdHex(), "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(context.ToTraceparent(), kValidTraceparent);
}

TEST(TraceparentTest, AcceptsUppercaseHexButEmitsLowercase) {
  TraceContext context;
  ASSERT_TRUE(ParseTraceparent(
      "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01", &context));
  EXPECT_EQ(context.ToTraceparent(), kValidTraceparent);
}

TEST(TraceparentTest, MalformedCorpusIsRejectedAndOutputUntouched) {
  // Every entry is one mutation of the valid header; the parser must
  // reject all of them per the W3C spec and leave *out exactly as found.
  const std::vector<std::string> corpus = {
      "",
      "00",
      // Wrong overall length (54 and 56 bytes).
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033311-01",
      // Dashes in the wrong positions.
      "000-af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319cb-7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331001",
      // Forbidden version ff and a non-hex version.
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // Non-hex characters inside the ids and flags.
      "00-0af7651916cd43dd8448eb211c8031gg-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033zz-01",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0x",
      // All-zero trace id and all-zero parent id are invalid per spec.
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
  };
  for (const std::string& header : corpus) {
    TraceContext context;
    context.trace_hi = 0x1111;
    context.trace_lo = 0x2222;
    context.parent_id = 0x3333;
    context.flags = 0x7f;
    EXPECT_FALSE(ParseTraceparent(header, &context)) << header;
    EXPECT_EQ(context.trace_hi, 0x1111u) << header;
    EXPECT_EQ(context.trace_lo, 0x2222u) << header;
    EXPECT_EQ(context.parent_id, 0x3333u) << header;
    EXPECT_EQ(context.flags, 0x7f) << header;
  }
}

TEST(TraceparentTest, GeneratedContextsAreValidAndDistinct) {
  const TraceContext a = GenerateTraceContext();
  const TraceContext b = GenerateTraceContext();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.TraceIdHex(), b.TraceIdHex());
  // Generated headers must round-trip through our own parser.
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(a.ToTraceparent(), &parsed));
  EXPECT_EQ(parsed.TraceIdHex(), a.TraceIdHex());
}

TEST(ProfileStoreTest, InsertLookupAndCapacityEviction) {
  ProfileStore store(/*capacity=*/2);
  QueryProfile first;
  first.context = GenerateTraceContext();
  first.method = "scan";
  QueryProfile second;
  second.context = GenerateTraceContext();
  second.method = "raster_accurate";
  store.Insert(first);
  store.Insert(second);
  EXPECT_EQ(store.size(), 2u);

  data::JsonValue doc;
  ASSERT_TRUE(store.Lookup(first.context.TraceIdHex(), &doc));
  EXPECT_EQ(doc.Find("method")->AsString(), "scan");

  // A third insert evicts the oldest (first) profile.
  QueryProfile third;
  third.context = GenerateTraceContext();
  store.Insert(third);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.Lookup(first.context.TraceIdHex(), &doc));
  EXPECT_TRUE(store.Lookup(second.context.TraceIdHex(), &doc));
  EXPECT_TRUE(store.Lookup(third.context.TraceIdHex(), &doc));
}

TEST(ProfileStoreTest, ReinsertRefreshesEvictionPosition) {
  ProfileStore store(/*capacity=*/2);
  QueryProfile a;
  a.context = GenerateTraceContext();
  QueryProfile b;
  b.context = GenerateTraceContext();
  QueryProfile c;
  c.context = GenerateTraceContext();
  store.Insert(a);
  store.Insert(b);
  store.Insert(a);  // refresh: b is now the oldest
  store.Insert(c);
  data::JsonValue doc;
  EXPECT_TRUE(store.Lookup(a.context.TraceIdHex(), &doc));
  EXPECT_FALSE(store.Lookup(b.context.TraceIdHex(), &doc));
  EXPECT_TRUE(store.Lookup(c.context.TraceIdHex(), &doc));
}

TEST(ProfileStoreTest, RecentListsNewestFirst) {
  ProfileStore store(/*capacity=*/8);
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    QueryProfile profile;
    profile.context = GenerateTraceContext();
    profile.method = "scan";
    store.Insert(profile);
    ids.push_back(profile.context.TraceIdHex());
  }
  const data::JsonValue doc = store.Recent(2);
  EXPECT_EQ(doc.Find("schema")->AsString(), "urbane.profiles.v1");
  const auto& rows = doc.Find("profiles")->AsArray();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].Find("trace_id")->AsString(), ids[2]);
  EXPECT_EQ(rows[1].Find("trace_id")->AsString(), ids[1]);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// urbane.profile.v1 document shape and determinism.

core::AggregationQuery SumQuery(QueryProfile* profile) {
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Sum("v");
  query.profile = profile;
  return query;
}

/// Runs the query with a FIXED trace context and returns the canonicalized
/// document: trace identity and counters stay, measured seconds go to
/// zero. Two equal dumps mean the whole deterministic skeleton matched.
std::string CanonicalRun(core::SpatialAggregation& engine,
                         core::ExecutionMethod method) {
  QueryProfile profile;
  TraceContext fixed;
  ParseTraceparent(kValidTraceparent, &fixed);
  profile.context = fixed;
  auto result = engine.Execute(SumQuery(&profile), method);
  EXPECT_TRUE(result.ok());
  data::JsonValue doc = profile.ToJson();
  CanonicalizeProfileJson(&doc);
  return doc.Dump(2);
}

TEST(ProfileDocumentTest, TopLevelKeyOrderIsStable) {
  const auto points = testing::MakeDyadicPoints(2000, 0xFACE);
  const auto regions = testing::MakeTessellationRegions(3, 9);
  core::SpatialAggregation engine(points, regions);
  QueryProfile profile;
  profile.context = GenerateTraceContext();
  ASSERT_TRUE(
      engine.Execute(SumQuery(&profile), core::ExecutionMethod::kScan).ok());
  const data::JsonValue doc = profile.ToJson();
  ASSERT_TRUE(doc.is_object());
  const std::vector<std::string> expected = {
      "schema",  "trace_id", "traceparent", "method",  "cache",
      "planner", "request",  "store",       "executor", "sharding"};
  ASSERT_EQ(doc.AsObject().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(doc.AsObject()[i].first, expected[i]) << "slot " << i;
  }
  EXPECT_EQ(doc.Find("schema")->AsString(), "urbane.profile.v1");
  EXPECT_EQ(doc.Find("method")->AsString(), "scan");
  EXPECT_GT(doc.Find("executor")->Find("totals")
                ->Find("points_scanned")->AsNumber(), 0.0);
}

TEST(ProfileDocumentTest, CanonicalizeZeroesOnlyMeasuredFields) {
  QueryProfile profile;
  profile.context = GenerateTraceContext();
  profile.wall_seconds = 1.5;
  profile.queue_wait_seconds = 0.25;
  profile.totals.points_scanned = 42;
  profile.totals.query_seconds = 9.0;
  data::JsonValue doc = profile.ToJson();
  CanonicalizeProfileJson(&doc);
  EXPECT_EQ(doc.Find("request")->Find("wall_seconds")->AsNumber(), 0.0);
  EXPECT_EQ(doc.Find("request")->Find("queue_wait_seconds")->AsNumber(), 0.0);
  EXPECT_EQ(doc.Find("executor")->Find("totals")
                ->Find("query_seconds")->AsNumber(), 0.0);
  EXPECT_EQ(doc.Find("executor")->Find("totals")
                ->Find("points_scanned")->AsNumber(), 42.0);
  EXPECT_EQ(doc.Find("trace_id")->AsString(), profile.context.TraceIdHex());
}

TEST(ProfileGoldenTest, SerialProfileIsBitStableAcrossRuns) {
  const auto points = testing::MakeDyadicPoints(4000, 0xBEEF);
  const auto regions = testing::MakeTessellationRegions(3, 11);
  core::SpatialAggregation engine(points, regions);
  const std::string first = CanonicalRun(engine, core::ExecutionMethod::kScan);
  const std::string second = CanonicalRun(engine, core::ExecutionMethod::kScan);
  EXPECT_EQ(first, second);
}

TEST(ProfileGoldenTest, FourThreadProfileIsBitStableAcrossRuns) {
  const auto points = testing::MakeDyadicPoints(50000, 0xCAFE);
  const auto regions = testing::MakeTessellationRegions(3, 13);
  ThreadPool pool(4);
  core::ExecutionContext exec;
  exec.pool = &pool;
  exec.num_threads = 4;
  exec.min_parallel_points = 1;
  core::SpatialAggregation engine(points, regions, core::RasterJoinOptions(),
                                  core::IndexJoinOptions(), exec);
  const std::string first = CanonicalRun(engine, core::ExecutionMethod::kScan);
  const std::string second = CanonicalRun(engine, core::ExecutionMethod::kScan);
  EXPECT_EQ(first, second);
}

TEST(ProfileGoldenTest, ShardedProfileIsBitStableAndSumsToTotals) {
  const auto points = testing::MakeDyadicPoints(20000, 0xD00D);
  const auto regions = testing::MakeTessellationRegions(3, 17);
  core::SpatialAggregation engine(points, regions);
  engine.set_num_shards(4);

  const std::string first = CanonicalRun(engine, core::ExecutionMethod::kScan);
  const std::string second = CanonicalRun(engine, core::ExecutionMethod::kScan);
  EXPECT_EQ(first, second);

  QueryProfile profile;
  profile.context = GenerateTraceContext();
  ASSERT_TRUE(
      engine.Execute(SumQuery(&profile), core::ExecutionMethod::kScan).ok());
  ASSERT_EQ(profile.shards.size(), 4u);

  // The breakdown is in shard-index order and tiles the row space.
  std::uint64_t rows_covered = 0;
  std::uint64_t points_scanned = 0;
  std::uint64_t pip_tests = 0;
  std::uint64_t candidate_rows = 0;
  for (std::size_t s = 0; s < profile.shards.size(); ++s) {
    const ShardProfileEntry& shard = profile.shards[s];
    EXPECT_EQ(shard.index, s);
    EXPECT_EQ(shard.rows_begin, rows_covered);
    EXPECT_LE(shard.rows_begin, shard.rows_end);
    rows_covered = shard.rows_end;
    candidate_rows += shard.candidate_rows;
    points_scanned += shard.costs.points_scanned;
    pip_tests += shard.costs.pip_tests;
  }
  EXPECT_EQ(rows_covered, points.size());
  EXPECT_EQ(candidate_rows, points.size());  // no pruning: full shards
  // Per-shard pass costs sum exactly to the merged executor totals.
  EXPECT_EQ(points_scanned, profile.totals.points_scanned);
  EXPECT_EQ(pip_tests, profile.totals.pip_tests);
  EXPECT_EQ(points_scanned, points.size());
}

// ---------------------------------------------------------------------------
// Store-backed attribution: block reads, cache hits, decoded bytes.

struct ProfiledStore {
  std::string path;
  data::RegionSet regions;
  std::unique_ptr<store::StoreReader> reader;

  ~ProfiledStore() { std::remove(path.c_str()); }
};

// Each test gets its own file: ctest runs discovered tests as separate
// processes, so a shared path would race under `ctest -j`.
std::unique_ptr<ProfiledStore> MakeProfiledStore(const std::string& name) {
  auto world = std::make_unique<ProfiledStore>();
  world->path = ::testing::TempDir() + "/" + name;
  world->regions = testing::MakeRandomRegions(5, 0x90F1);
  const data::PointTable table = testing::MakeDyadicPoints(8000, 0x90F2);
  store::StoreWriterOptions options;
  options.block_rows = 1024;
  EXPECT_TRUE(store::WritePointStore(table, world->path, options).ok());
  auto reader = store::StoreReader::Open(world->path);
  EXPECT_TRUE(reader.ok());
  world->reader = std::make_unique<store::StoreReader>(std::move(*reader));
  return world;
}

TEST(ProfileStoreBackedTest, AttributesBlockReadsCacheHitsAndBytes) {
  auto world = MakeProfiledStore("profile_attrib.ust");
  store::BlockCache cache(world->reader.get());
  auto executor =
      store::StoreScanJoin::Create(*world->reader, cache, world->regions);
  ASSERT_TRUE(executor.ok());

  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  QueryProfile cold;
  cold.context = GenerateTraceContext();
  query.profile = &cold;
  ASSERT_TRUE((*executor)->Execute(query).ok());
  EXPECT_EQ(cold.blocks_total, 8u);  // 8000 rows / 1024 block_rows
  EXPECT_EQ(cold.store_blocks_scanned, cold.blocks_total - cold.blocks_pruned);
  // Cold cache: every scanned block came off disk, none were hits.
  EXPECT_EQ(cold.store_blocks_read, cold.store_blocks_scanned);
  EXPECT_EQ(cold.store_cache_hits, 0u);
  EXPECT_GT(cold.store_bytes_read, 0u);

  // Warm cache: the same scan is all hits, zero reads, zero new bytes.
  QueryProfile warm;
  warm.context = GenerateTraceContext();
  query.profile = &warm;
  ASSERT_TRUE((*executor)->Execute(query).ok());
  EXPECT_EQ(warm.store_blocks_read, 0u);
  EXPECT_EQ(warm.store_cache_hits, warm.store_blocks_scanned);
  EXPECT_EQ(warm.store_bytes_read, 0u);

  // The document carries the attribution under "store".
  const data::JsonValue doc = warm.ToJson();
  EXPECT_EQ(doc.Find("store")->Find("cache_hits")->AsNumber(),
            static_cast<double>(warm.store_cache_hits));
}

TEST(ProfileStoreBackedTest, StoreProfileIsBitStableAcrossRuns) {
  auto world = MakeProfiledStore("profile_golden.ust");
  store::BlockCache cache(world->reader.get());
  auto executor =
      store::StoreScanJoin::Create(*world->reader, cache, world->regions);
  ASSERT_TRUE(executor.ok());

  // Warm the cache once so both profiled runs see identical cache state.
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  ASSERT_TRUE((*executor)->Execute(query).ok());

  std::vector<std::string> dumps;
  for (int run = 0; run < 2; ++run) {
    QueryProfile profile;
    TraceContext fixed;
    ASSERT_TRUE(ParseTraceparent(kValidTraceparent, &fixed));
    profile.context = fixed;
    query.profile = &profile;
    ASSERT_TRUE((*executor)->Execute(query).ok());
    data::JsonValue doc = profile.ToJson();
    CanonicalizeProfileJson(&doc);
    dumps.push_back(doc.Dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(ProfileTableTest, TableRendersTotalsAndShards) {
  const auto points = testing::MakeDyadicPoints(3000, 0x7AB1);
  const auto regions = testing::MakeTessellationRegions(2, 19);
  core::SpatialAggregation engine(points, regions);
  engine.set_num_shards(2);
  QueryProfile profile;
  profile.context = GenerateTraceContext();
  ASSERT_TRUE(
      engine.Execute(SumQuery(&profile), core::ExecutionMethod::kScan).ok());
  const std::string table = profile.ToTable();
  EXPECT_NE(table.find(profile.context.TraceIdHex()), std::string::npos);
  EXPECT_NE(table.find("counters"), std::string::npos);
  EXPECT_NE(table.find("shards   count=2"), std::string::npos) << table;
}

}  // namespace
}  // namespace urbane::obs
