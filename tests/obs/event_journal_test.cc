// Event journal tests: FIFO semantics, exact overflow drop accounting, and
// the N-producers / 1-drainer concurrency contract checked against a
// serial oracle (run under TSan via tools/check.sh).
#include "obs/event_journal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace urbane::obs {
namespace {

Event MakeEvent(EventKind kind, double value) {
  Event event;
  event.kind = kind;
  event.value = value;
  return event;
}

TEST(EventJournalTest, PublishDrainPreservesOrder) {
  EventJournal journal(16);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        journal.Publish(MakeEvent(EventKind::kQueryFinish, double(i))));
  }
  EXPECT_EQ(journal.published(), 10u);
  EXPECT_EQ(journal.dropped(), 0u);

  std::vector<Event> events;
  EXPECT_EQ(journal.Drain(&events), 10u);
  ASSERT_EQ(events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].value, double(i));
    EXPECT_EQ(events[i].sequence, std::uint64_t(i));
    EXPECT_EQ(events[i].kind, EventKind::kQueryFinish);
    EXPECT_GT(events[i].timestamp_ns, 0u);
  }
  // Drained slots are reusable.
  EXPECT_TRUE(journal.Publish(MakeEvent(EventKind::kError, 99.0)));
  events.clear();
  EXPECT_EQ(journal.Drain(&events), 1u);
  EXPECT_EQ(events[0].sequence, 10u);
}

TEST(EventJournalTest, OverflowDropsAreCountedExactly) {
  EventJournal journal(8);
  ASSERT_EQ(journal.capacity(), 8u);
  int accepted = 0;
  for (int i = 0; i < 11; ++i) {
    if (journal.Publish(MakeEvent(EventKind::kCacheEvict, double(i)))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(journal.published(), 8u);
  EXPECT_EQ(journal.dropped(), 3u);

  // Draining frees capacity; drops never resurface.
  std::vector<Event> events;
  EXPECT_EQ(journal.Drain(&events), 8u);
  EXPECT_EQ(events.front().value, 0.0);
  EXPECT_EQ(events.back().value, 7.0);
  EXPECT_TRUE(journal.Publish(MakeEvent(EventKind::kCacheEvict, 11.0)));
  EXPECT_EQ(journal.dropped(), 3u);
}

TEST(EventJournalTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventJournal(1).capacity(), 2u);
  EXPECT_EQ(EventJournal(3).capacity(), 4u);
  EXPECT_EQ(EventJournal(8).capacity(), 8u);
  EXPECT_EQ(EventJournal(1000).capacity(), 1024u);
}

TEST(EventJournalTest, DrainHonorsMaxEvents) {
  EventJournal journal(16);
  for (int i = 0; i < 6; ++i) {
    journal.Publish(MakeEvent(EventKind::kSessionFrame, double(i)));
  }
  std::vector<Event> events;
  EXPECT_EQ(journal.Drain(&events, 4), 4u);
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(journal.Drain(&events, 100), 2u);
  EXPECT_EQ(events.size(), 6u);
}

TEST(EventJournalTest, ResetClearsStateAndCounters) {
  EventJournal journal(8);
  for (int i = 0; i < 20; ++i) {
    journal.Publish(MakeEvent(EventKind::kError, double(i)));
  }
  journal.Reset();
  EXPECT_EQ(journal.published(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  std::vector<Event> events;
  EXPECT_EQ(journal.Drain(&events), 0u);
  EXPECT_TRUE(journal.Publish(MakeEvent(EventKind::kError, 1.0)));
  EXPECT_EQ(journal.Drain(&events), 1u);
  EXPECT_EQ(events[0].sequence, 0u);
}

TEST(EventJournalTest, EmitEventIsGatedOnTheJournalFlag) {
  EventJournal& global = EventJournal::Global();
  global.Reset();
  SetJournalEnabled(false);
  EmitEvent(MakeEvent(EventKind::kQueryStart, 1.0));
  EXPECT_EQ(global.published(), 0u);
  SetJournalEnabled(true);
  EmitEvent(MakeEvent(EventKind::kQueryStart, 2.0));
  EXPECT_EQ(global.published(), 1u);
  SetJournalEnabled(false);
  global.Reset();
}

TEST(EventJournalTest, KindNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kQueryStart), "query.start");
  EXPECT_STREQ(EventKindName(EventKind::kQueryFinish), "query.finish");
  EXPECT_STREQ(EventKindName(EventKind::kCacheEvict), "cache.evict");
  EXPECT_STREQ(EventKindName(EventKind::kPlannerChoose), "planner.choose");
  EXPECT_STREQ(EventKindName(EventKind::kSessionFrame), "session.frame");
  EXPECT_STREQ(EventKindName(EventKind::kError), "error");
}

// N producers vs one concurrent drainer, checked against a serial oracle:
// every drained event must carry a (producer, step) pair the producer
// actually published, per-producer values must arrive in increasing order
// (MPSC preserves each producer's program order), and the accepted/dropped
// accounting must balance exactly.
TEST(EventJournalConcurrencyTest, ProducersVersusDrainerMatchesOracle) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  EventJournal journal(256);  // small ring => real overflow pressure

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> done{false};
  std::vector<Event> drained;

  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      journal.Drain(&drained);
      std::this_thread::yield();
    }
    journal.Drain(&drained);  // final sweep
  });

  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          Event event;
          event.kind = EventKind::kQueryFinish;
          event.method = static_cast<std::uint8_t>(p);
          // Encodes (producer, step) for the oracle check.
          event.value = static_cast<double>(p * kPerProducer + i);
          if (journal.Publish(event)) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  done.store(true, std::memory_order_release);
  drainer.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  // Exact accounting: every publish either drained or counted as dropped.
  EXPECT_EQ(journal.published(), accepted.load());
  EXPECT_EQ(drained.size(), accepted.load());
  EXPECT_EQ(accepted.load() + journal.dropped(), total);

  // Global sequence numbers are unique and none is drained twice.
  std::vector<bool> seen(total, false);
  // Per-producer step order is strictly increasing (program order).
  std::map<int, int> last_step;
  for (const Event& event : drained) {
    ASSERT_LT(event.sequence, accepted.load());
    ASSERT_FALSE(seen[event.sequence]) << "sequence drained twice";
    seen[event.sequence] = true;
    const int producer = static_cast<int>(event.method);
    const int step = static_cast<int>(event.value) - producer * kPerProducer;
    ASSERT_GE(step, 0);
    ASSERT_LT(step, kPerProducer);
    const auto it = last_step.find(producer);
    if (it != last_step.end()) {
      ASSERT_GT(step, it->second)
          << "producer " << producer << " order violated";
    }
    last_step[producer] = step;
  }
}

}  // namespace
}  // namespace urbane::obs
