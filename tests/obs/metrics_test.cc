// Unit tests for the metrics primitives: counters, gauges, fixed-bucket
// histograms, registry lookup/reset semantics, and snapshot deltas.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/obs.h"

namespace urbane::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ZeroDeltaIsANoOp) {
  Counter counter;
  counter.Add(0);
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketsByInclusiveUpperBound) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // bucket 0
  histogram.Observe(1.0);   // bucket 0 (inclusive)
  histogram.Observe(1.5);   // bucket 1
  histogram.Observe(4.0);   // bucket 2 (inclusive)
  histogram.Observe(100.0); // overflow
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(HistogramTest, SortsAndDedupesBounds) {
  Histogram histogram({4.0, 1.0, 2.0, 1.0});
  const std::vector<double> expected = {1.0, 2.0, 4.0};
  EXPECT_EQ(histogram.bounds(), expected);
}

TEST(HistogramTest, EmptyHistogramReportsZeroMinMax) {
  MetricsRegistry registry;
  registry.GetHistogram("empty", {1.0});
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* h = snapshot.FindHistogram("empty");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
  EXPECT_EQ(h->min, 0.0);
  EXPECT_EQ(h->max, 0.0);
  EXPECT_EQ(h->Mean(), 0.0);
}

TEST(HistogramTest, TracksMinMaxMean) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h", {1.0, 10.0});
  histogram.Observe(0.5);
  histogram.Observe(8.0);
  histogram.Observe(2.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* h = snapshot.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 8.0);
  EXPECT_NEAR(h->Mean(), (0.5 + 8.0 + 2.0) / 3.0, 1e-12);
}

TEST(RegistryTest, SameNameSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.GetGauge("x");  // separate namespace per kind
  Gauge& g2 = registry.GetGauge("x");
  EXPECT_EQ(&g1, &g2);
}

TEST(RegistryTest, FirstHistogramBoundsWin) {
  MetricsRegistry registry;
  Histogram& a = registry.GetHistogram("h", {1.0, 2.0});
  Histogram& b = registry.GetHistogram("h", {5.0});
  EXPECT_EQ(&a, &b);
  const std::vector<double> expected = {1.0, 2.0};
  EXPECT_EQ(b.bounds(), expected);
}

TEST(RegistryTest, ResetZeroesButPreservesReferences) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Add(7);
  histogram.Observe(0.01);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(histogram.Count(), 0u);
  // The reference survives reset and keeps recording.
  counter.Add(1);
  EXPECT_EQ(registry.GetCounter("c").Value(), 1u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zeta").Add(1);
  registry.GetCounter("alpha").Add(2);
  registry.GetCounter("mid").Add(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[1].name, "mid");
  EXPECT_EQ(snapshot.counters[2].name, "zeta");
}

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(SnapshotTest, CounterValueDefaultsToZero) {
  MetricsSnapshot snapshot;
  EXPECT_EQ(snapshot.CounterValue("absent"), 0u);
  EXPECT_EQ(snapshot.FindCounter("absent"), nullptr);
  EXPECT_EQ(snapshot.FindGauge("absent"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("absent"), nullptr);
}

TEST(SnapshotTest, DeltaSubtractsCountersAndClampsAtZero) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(10);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("c").Add(5);
  registry.GetCounter("fresh").Add(3);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = MetricsSnapshot::Delta(after, before);
  EXPECT_EQ(delta.CounterValue("c"), 5u);
  EXPECT_EQ(delta.CounterValue("fresh"), 3u);

  // A counter that went backwards (reset between snapshots) clamps to 0.
  registry.Reset();
  const MetricsSnapshot reset_delta =
      MetricsSnapshot::Delta(registry.Snapshot(), after);
  EXPECT_EQ(reset_delta.CounterValue("c"), 0u);
}

TEST(SnapshotTest, DeltaDiffsHistogramBuckets) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h", {1.0, 2.0});
  histogram.Observe(0.5);
  const MetricsSnapshot before = registry.Snapshot();
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = MetricsSnapshot::Delta(after, before);
  const HistogramSnapshot* h = delta.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  ASSERT_EQ(h->buckets.size(), 3u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 0u);
  EXPECT_NEAR(h->sum, 2.0, 1e-12);
}

TEST(SnapshotTest, DeltaKeepsGaugeAfterValue) {
  MetricsRegistry registry;
  registry.GetGauge("g").Set(10.0);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetGauge("g").Set(4.0);
  const MetricsSnapshot delta =
      MetricsSnapshot::Delta(registry.Snapshot(), before);
  const GaugeSnapshot* g = delta.FindGauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 4.0);
}

TEST(DefaultLatencyBoundsTest, StrictlyIncreasing) {
  const std::vector<double> bounds = DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(QuantileTest, EmptyHistogramReturnsZero) {
  HistogramSnapshot histogram;
  histogram.bounds = {1.0};
  histogram.buckets = {0, 0};
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(QuantileTest, InterpolatesWithinBucketsAndOverflow) {
  // The golden-fixture shape: one observation per bucket including the
  // overflow bucket, which interpolates between the last bound and max.
  HistogramSnapshot histogram;
  histogram.bounds = {0.001, 0.01, 0.1};
  histogram.buckets = {1, 1, 1, 1};
  histogram.count = 4;
  histogram.min = 0.0005;
  histogram.max = 0.5;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 0.01);
  EXPECT_NEAR(histogram.Quantile(0.95), 0.42, 1e-12);
  EXPECT_NEAR(histogram.Quantile(0.99), 0.484, 1e-12);
}

TEST(QuantileTest, ClampsToObservedRange) {
  HistogramSnapshot histogram;
  histogram.bounds = {1.0};
  histogram.buckets = {4, 0};
  histogram.count = 4;
  histogram.min = 0.2;
  histogram.max = 0.9;
  // Linear interpolation inside [0, 1.0) would give 0.5 at the median...
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.5);
  // ...but the extremes clamp to the exact observed min/max.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 0.2);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 0.9);
}

TEST(QuantileTest, MonotoneInQ) {
  HistogramSnapshot histogram;
  histogram.bounds = {0.01, 0.1, 1.0};
  histogram.buckets = {10, 5, 2, 1};
  histogram.count = 18;
  histogram.min = 0.001;
  histogram.max = 3.0;
  double last = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = histogram.Quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
}

TEST(RegistryTest, SnapshotHistogramCopiesOneMetric) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("solo", {1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(1.5);

  const HistogramSnapshot snapshot = registry.SnapshotHistogram("solo");
  EXPECT_EQ(snapshot.name, "solo");
  EXPECT_EQ(snapshot.count, 2u);
  ASSERT_EQ(snapshot.buckets.size(), 3u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 1.5);

  const HistogramSnapshot absent = registry.SnapshotHistogram("nope");
  EXPECT_TRUE(absent.name.empty());
  EXPECT_EQ(absent.count, 0u);
}

TEST(EnableFlagsTest, JournalFlagRoundTrips) {
  const bool was = JournalEnabled();
  SetJournalEnabled(true);
  EXPECT_TRUE(JournalEnabled());
  SetJournalEnabled(false);
  EXPECT_FALSE(JournalEnabled());
  SetJournalEnabled(was);
}

TEST(EnableFlagsTest, TogglesRoundTrip) {
  const bool metrics_was = MetricsEnabled();
  const bool tracing_was = TracingEnabled();
  SetMetricsEnabled(true);
  SetTracingEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  EXPECT_TRUE(TracingEnabled());
  EXPECT_FALSE(Disabled());
  SetMetricsEnabled(false);
  SetTracingEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  EXPECT_FALSE(TracingEnabled());
  EXPECT_TRUE(Disabled());
  SetMetricsEnabled(metrics_was);
  SetTracingEnabled(tracing_was);
}

}  // namespace
}  // namespace urbane::obs
