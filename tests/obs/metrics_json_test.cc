// JSON export schema tests: ToJson output round-trips through the repo's
// own parser (src/data/json), matches the checked-in golden files
// semantically, and FromJson tolerates unknown or missing fields.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "data/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace urbane::obs {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string GoldenPath(const char* name) {
  return std::string(URBANE_SOURCE_DIR) + "/tests/obs/golden/" + name;
}

// Structural equality with numeric tolerance: golden files are authored by
// hand, so exact double formatting must not matter.
::testing::AssertionResult JsonEquals(const data::JsonValue& a,
                                      const data::JsonValue& b,
                                      const std::string& path = "$") {
  if (a.type() != b.type()) {
    return ::testing::AssertionFailure()
           << path << ": type mismatch (" << a.Dump() << " vs " << b.Dump()
           << ")";
  }
  switch (a.type()) {
    case data::JsonValue::Type::kNull:
      return ::testing::AssertionSuccess();
    case data::JsonValue::Type::kBool:
      if (a.AsBool() != b.AsBool()) {
        return ::testing::AssertionFailure() << path << ": bool mismatch";
      }
      return ::testing::AssertionSuccess();
    case data::JsonValue::Type::kNumber: {
      const double x = a.AsNumber();
      const double y = b.AsNumber();
      const double tol = 1e-9 * std::max(1.0, std::max(std::fabs(x),
                                                       std::fabs(y)));
      if (std::fabs(x - y) > tol) {
        return ::testing::AssertionFailure()
               << path << ": number mismatch (" << x << " vs " << y << ")";
      }
      return ::testing::AssertionSuccess();
    }
    case data::JsonValue::Type::kString:
      if (a.AsString() != b.AsString()) {
        return ::testing::AssertionFailure()
               << path << ": string mismatch (\"" << a.AsString() << "\" vs \""
               << b.AsString() << "\")";
      }
      return ::testing::AssertionSuccess();
    case data::JsonValue::Type::kArray: {
      const auto& xs = a.AsArray();
      const auto& ys = b.AsArray();
      if (xs.size() != ys.size()) {
        return ::testing::AssertionFailure()
               << path << ": array size " << xs.size() << " vs " << ys.size();
      }
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto result =
            JsonEquals(xs[i], ys[i], path + "[" + std::to_string(i) + "]");
        if (!result) {
          return result;
        }
      }
      return ::testing::AssertionSuccess();
    }
    case data::JsonValue::Type::kObject: {
      const auto& xs = a.AsObject();
      const auto& ys = b.AsObject();
      if (xs.size() != ys.size()) {
        return ::testing::AssertionFailure()
               << path << ": object size " << xs.size() << " vs " << ys.size();
      }
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].first != ys[i].first) {
          return ::testing::AssertionFailure()
                 << path << ": key order mismatch (\"" << xs[i].first
                 << "\" vs \"" << ys[i].first << "\")";
        }
        const auto result =
            JsonEquals(xs[i].second, ys[i].second, path + "." + xs[i].first);
        if (!result) {
          return result;
        }
      }
      return ::testing::AssertionSuccess();
    }
  }
  return ::testing::AssertionFailure() << path << ": unknown type";
}

// A deterministic snapshot used by both the round-trip and golden tests.
MetricsSnapshot MakeFixtureSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("cache.hits").Add(3);
  registry.GetCounter("exec.scan.queries").Add(2);
  registry.GetGauge("cache.bytes").Set(1536.5);
  Histogram& histogram =
      registry.GetHistogram("exec.scan.query_seconds", {0.001, 0.01, 0.1});
  histogram.Observe(0.0005);
  histogram.Observe(0.005);
  histogram.Observe(0.05);
  histogram.Observe(0.5);
  return registry.Snapshot();
}

QueryTrace* MakeFixtureTrace() {
  auto* trace = new QueryTrace();
  trace->Tag("method", "scan");
  trace->Tag("cache", "miss");
  const int root = trace->AddCompletedSpan("execute", 0.004);
  trace->AddCompletedSpan("filter", 0.001, root);
  const int reduce = trace->AddCompletedSpan("reduce", 0.002, root);
  trace->AddSpanTag(reduce, "threads", "4");
  return trace;
}

TEST(MetricsJsonTest, RoundTripsThroughParseJson) {
  const MetricsSnapshot snapshot = MakeFixtureSnapshot();
  const std::string dumped = snapshot.ToJson().Dump(2);

  const auto parsed = data::ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto restored = MetricsSnapshot::FromJson(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->counters.size(), 2u);
  EXPECT_EQ(restored->CounterValue("cache.hits"), 3u);
  EXPECT_EQ(restored->CounterValue("exec.scan.queries"), 2u);
  ASSERT_EQ(restored->gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(restored->gauges[0].value, 1536.5);
  const HistogramSnapshot* h =
      restored->FindHistogram("exec.scan.query_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  ASSERT_EQ(h->buckets.size(), 4u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[3], 1u);
  EXPECT_NEAR(h->sum, 0.5555, 1e-9);
  EXPECT_NEAR(h->min, 0.0005, 1e-12);
  EXPECT_NEAR(h->max, 0.5, 1e-12);

  // The restored snapshot serializes back to the same tree.
  EXPECT_TRUE(JsonEquals(restored->ToJson(), snapshot.ToJson()));
}

TEST(MetricsJsonTest, MatchesGoldenFile) {
  const auto golden =
      data::ParseJson(ReadFileOrDie(GoldenPath("metrics_snapshot.json")));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  EXPECT_TRUE(JsonEquals(MakeFixtureSnapshot().ToJson(), *golden));
}

TEST(MetricsJsonTest, SchemaFieldIsStable) {
  const data::JsonValue json = MakeFixtureSnapshot().ToJson();
  const data::JsonValue* schema = json.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), "urbane.metrics.v1");
}

TEST(MetricsJsonTest, FromJsonToleratesUnknownAndMissingFields) {
  const auto parsed = data::ParseJson(R"({
    "schema": "urbane.metrics.v99",
    "future_section": {"anything": [1, 2, 3]},
    "counters": [
      {"name": "c", "value": 7, "unit": "frames"},
      {"name": "no_value"}
    ],
    "histograms": [
      {"name": "h", "count": 2}
    ]
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto snapshot = MetricsSnapshot::FromJson(*parsed);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->CounterValue("c"), 7u);
  EXPECT_EQ(snapshot->CounterValue("no_value"), 0u);
  EXPECT_TRUE(snapshot->gauges.empty());
  const HistogramSnapshot* h = snapshot->FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_TRUE(h->bounds.empty());
}

TEST(MetricsJsonTest, FromJsonRejectsMalformedShapes) {
  const char* bad[] = {
      R"([1, 2, 3])",                          // root is not an object
      R"({"counters": {"not": "an array"}})",  // section of wrong type
      R"({"counters": [{"value": 3}]})",       // entry without a name
      R"({"counters": [{"name": 42}]})",       // name of wrong type
      R"({"histograms": [{"name": "h", "bounds": ["x"]}]})",
      R"({"histograms": [{"name": "h", "buckets": [null]}]})",
  };
  for (const char* text : bad) {
    const auto parsed = data::ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(MetricsSnapshot::FromJson(*parsed).ok()) << text;
  }
}

TEST(TraceJsonTest, MatchesGoldenFile) {
  std::unique_ptr<QueryTrace> trace(MakeFixtureTrace());
  const auto golden =
      data::ParseJson(ReadFileOrDie(GoldenPath("trace.json")));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  EXPECT_TRUE(JsonEquals(trace->ToJson(), *golden));
}

TEST(TraceJsonTest, RoundTripsThroughParseJson) {
  std::unique_ptr<QueryTrace> trace(MakeFixtureTrace());
  const std::string dumped = trace->ToJson().Dump(2);
  const auto parsed = data::ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const data::JsonValue* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), "urbane.trace.v1");
  const data::JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  ASSERT_EQ(spans->AsArray().size(), 3u);
  const data::JsonValue& reduce = spans->AsArray()[2];
  EXPECT_EQ(reduce.Find("name")->AsString(), "reduce");
  EXPECT_EQ(reduce.Find("parent")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(reduce.Find("duration_seconds")->AsNumber(), 0.002);
  ASSERT_NE(reduce.Find("tags"), nullptr);
  EXPECT_EQ(reduce.Find("tags")->Find("threads")->AsString(), "4");
  // Spans without tags omit the key entirely.
  EXPECT_EQ(spans->AsArray()[1].Find("tags"), nullptr);
}

}  // namespace
}  // namespace urbane::obs
