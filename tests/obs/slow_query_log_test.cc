// Slow-query flight recorder tests. The recorder's clock is "injected"
// through MaybeRecord's wall_seconds argument (the facade measures wall
// time; here we hand in synthetic durations), which makes every threshold
// decision deterministic.
#include "obs/slow_query_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/query.h"
#include "core/spatial_aggregation.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "testing/test_worlds.h"

namespace urbane::obs {
namespace {

SlowQueryLogOptions AbsoluteThreshold(double seconds, std::size_t capacity) {
  SlowQueryLogOptions options;
  options.threshold_seconds = seconds;
  options.p99_multiplier = 0.0;
  options.capacity = capacity;
  return options;
}

TEST(SlowQueryLogTest, RecordsOnlyAboveThreshold) {
  SlowQueryLog log(AbsoluteThreshold(0.1, 8));
  EXPECT_FALSE(log.MaybeRecord(1, "scan", "q1", "", 0.05, nullptr));
  EXPECT_TRUE(log.MaybeRecord(2, "scan", "q2", "", 0.15, nullptr));
  EXPECT_TRUE(log.MaybeRecord(3, "scan", "q3", "", 0.1, nullptr));  // at edge
  EXPECT_EQ(log.captured(), 2u);
  const auto records = log.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].fingerprint, 2u);
  EXPECT_EQ(records[0].query, "q2");
  EXPECT_DOUBLE_EQ(records[0].wall_seconds, 0.15);
  EXPECT_DOUBLE_EQ(records[0].threshold_seconds, 0.1);
  EXPECT_EQ(records[1].fingerprint, 3u);
}

TEST(SlowQueryLogTest, BoundedRingEvictsOldestFirst) {
  SlowQueryLog log(AbsoluteThreshold(0.0, 3));
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(log.MaybeRecord(static_cast<std::uint64_t>(i), "scan",
                                "q" + std::to_string(i), "", 1.0, nullptr));
  }
  EXPECT_EQ(log.captured(), 7u);
  const auto records = log.Records();
  ASSERT_EQ(records.size(), 3u);
  // Oldest evicted: sequences 4, 5, 6 survive, in order.
  EXPECT_EQ(records[0].sequence, 4u);
  EXPECT_EQ(records[1].sequence, 5u);
  EXPECT_EQ(records[2].sequence, 6u);
}

TEST(SlowQueryLogTest, CapturesTraceSpans) {
  SlowQueryLog log(AbsoluteThreshold(0.0, 4));
  QueryTrace trace;
  const int root = trace.AddCompletedSpan("execute", 0.2);
  trace.AddCompletedSpan("splat", 0.15, root);
  trace.Tag("method", "raster");
  EXPECT_TRUE(log.MaybeRecord(7, "raster", "q", "raster wins", 0.2, &trace));
  const auto records = log.Records();
  ASSERT_EQ(records.size(), 1u);
  const data::JsonValue& json = records[0].trace;
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.Find("schema")->AsString(), "urbane.trace.v1");
  const data::JsonValue* spans = json.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->AsArray().size(), 2u);
  EXPECT_EQ(spans->AsArray()[0].Find("name")->AsString(), "execute");
  EXPECT_EQ(spans->AsArray()[1].Find("name")->AsString(), "splat");
}

TEST(SlowQueryLogTest, P99MultiplierThresholdTracksHistogram) {
  // Unique histogram name so parallel tests never collide in the global
  // registry.
  SlowQueryLogOptions options;
  options.p99_multiplier = 2.0;
  options.histogram_name = "slowlogtest.p99.wall_seconds";
  options.threshold_floor_seconds = 0.001;
  SlowQueryLog log(options);

  // Empty histogram: the floor applies.
  log.RefreshThreshold();
  EXPECT_DOUBLE_EQ(log.ThresholdSeconds(), 0.001);

  // Populate: 100 observations at ~10ms → p99 ≈ 10ms → threshold ≈ 20ms.
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      options.histogram_name, {0.005, 0.01, 0.05});
  for (int i = 0; i < 100; ++i) histogram.Observe(0.01);
  log.RefreshThreshold();
  const double threshold = log.ThresholdSeconds();
  EXPECT_GT(threshold, 0.01);
  EXPECT_LE(threshold, 0.02 + 1e-12);

  EXPECT_FALSE(log.MaybeRecord(1, "scan", "fast", "", threshold / 2, nullptr));
  EXPECT_TRUE(
      log.MaybeRecord(2, "scan", "slow", "", threshold * 2, nullptr));
}

TEST(SlowQueryLogTest, SetOptionsShrinksRetainedRecords) {
  SlowQueryLog log(AbsoluteThreshold(0.0, 8));
  for (int i = 0; i < 8; ++i) {
    log.MaybeRecord(static_cast<std::uint64_t>(i), "scan", "q", "", 1.0,
                    nullptr);
  }
  SlowQueryLogOptions options = AbsoluteThreshold(0.0, 2);
  log.SetOptions(options);
  const auto records = log.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 6u);
  EXPECT_EQ(records[1].sequence, 7u);
}

TEST(SlowQueryLogTest, ToJsonMatchesSchema) {
  SlowQueryLog log(AbsoluteThreshold(0.25, 4));
  log.Arm();
  log.MaybeRecord(0xdeadbeefcafef00dULL, "accurate", "SELECT COUNT(*) ...",
                  "raster wins at this selectivity", 0.5, nullptr);
  const data::JsonValue json = log.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.Find("schema")->AsString(), "urbane.slowlog.v1");
  EXPECT_TRUE(json.Find("armed")->AsBool());
  EXPECT_DOUBLE_EQ(json.Find("threshold_seconds")->AsNumber(), 0.25);
  EXPECT_EQ(json.Find("captured")->AsNumber(), 1.0);
  const data::JsonValue* records = json.Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->AsArray().size(), 1u);
  const data::JsonValue& record = records->AsArray()[0];
  EXPECT_EQ(record.Find("fingerprint")->AsString(), "deadbeefcafef00d");
  EXPECT_EQ(record.Find("method")->AsString(), "accurate");
  EXPECT_DOUBLE_EQ(record.Find("wall_seconds")->AsNumber(), 0.5);
  EXPECT_EQ(record.Find("plan")->AsString(),
            "raster wins at this selectivity");
}

TEST(SlowQueryLogTest, ClearResetsEverything) {
  SlowQueryLog log(AbsoluteThreshold(0.0, 4));
  log.MaybeRecord(1, "scan", "q", "", 1.0, nullptr);
  log.Clear();
  EXPECT_EQ(log.captured(), 0u);
  EXPECT_TRUE(log.Records().empty());
  log.MaybeRecord(2, "scan", "q", "", 1.0, nullptr);
  EXPECT_EQ(log.Records()[0].sequence, 0u);
}

// End-to-end: arm the global recorder with a zero threshold, run a real
// query through the facade, and expect a committed record carrying the
// armed-mode trace (with the facade's "execute" span) even though the
// caller never attached one.
TEST(SlowQueryLogIntegrationTest, FacadeCommitsSlowQueriesWhileArmed) {
  SlowQueryLog& recorder = SlowQueryLog::Global();
  recorder.SetOptions(AbsoluteThreshold(0.0, 16));
  recorder.Clear();
  recorder.Arm();

  const data::PointTable points = testing::MakeUniformPoints(500, 7);
  const data::RegionSet regions = testing::MakeRandomRegions(4, 7);
  core::SpatialAggregation engine(points, regions);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  const auto result = engine.Execute(query, core::ExecutionMethod::kScan);
  recorder.Disarm();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const auto records = recorder.Records();
  ASSERT_GE(records.size(), 1u);
  const SlowQueryRecord& record = records.back();
  EXPECT_EQ(record.method, "scan");
  EXPECT_NE(record.query.find("COUNT"), std::string::npos);
  EXPECT_GT(record.wall_seconds, 0.0);
  ASSERT_TRUE(record.trace.is_object());
  const data::JsonValue* spans = record.trace.Find("spans");
  ASSERT_NE(spans, nullptr);
  bool has_execute_span = false;
  for (const data::JsonValue& span : spans->AsArray()) {
    if (span.Find("name")->AsString() == "execute") has_execute_span = true;
  }
  EXPECT_TRUE(has_execute_span);

  recorder.SetOptions(SlowQueryLogOptions{});
  recorder.Clear();
}

}  // namespace
}  // namespace urbane::obs
