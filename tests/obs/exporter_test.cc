// Telemetry exporter tests: Prometheus text exposition, the HTTP endpoints
// round-tripped over a real loopback socket, and the JSONL sink.
#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/slow_query_log.h"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define URBANE_TEST_SOCKETS 1
#endif

namespace urbane::obs {
namespace {

#ifdef URBANE_TEST_SOCKETS
// Minimal HTTP/1.0 GET over a fresh loopback connection; returns the raw
// response (status line + headers + body).
std::string HttpGet(std::uint16_t port, const std::string& path,
                    const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = method + " " + path + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[2048];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}
#endif  // URBANE_TEST_SOCKETS

TEST(PrometheusTextTest, SanitizesMetricNames) {
  EXPECT_EQ(PrometheusMetricName("cache.hits"), "urbane_cache_hits");
  EXPECT_EQ(PrometheusMetricName("exec.scan.query_seconds"),
            "urbane_exec_scan_query_seconds");
  EXPECT_EQ(PrometheusMetricName("weird-name!"), "urbane_weird_name_");
}

TEST(PrometheusTextTest, EmitsCumulativeHistogramBuckets) {
  MetricsSnapshot snapshot;
  CounterSnapshot counter;
  counter.name = "cache.hits";
  counter.value = 3;
  snapshot.counters.push_back(counter);
  HistogramSnapshot histogram;
  histogram.name = "query.wall_seconds";
  histogram.bounds = {0.001, 0.01};
  histogram.buckets = {2, 3, 1};  // per-bucket, overflow last
  histogram.count = 6;
  histogram.sum = 0.25;
  snapshot.histograms.push_back(histogram);

  const std::string text = ToPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE urbane_cache_hits counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("urbane_cache_hits 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE urbane_query_wall_seconds histogram\n"),
            std::string::npos);
  // Cumulative, not per-bucket: 2, then 2+3=5, then +Inf = count.
  EXPECT_NE(text.find("urbane_query_wall_seconds_bucket{le=\"0.001\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("urbane_query_wall_seconds_bucket{le=\"0.01\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("urbane_query_wall_seconds_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("urbane_query_wall_seconds_sum 0.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("urbane_query_wall_seconds_count 6\n"),
            std::string::npos);
}

TEST(TelemetryExporterTest, HandleRequestRoutesWithoutStarting) {
  TelemetryExporter exporter;
  const std::string metrics = exporter.HandleRequest("GET", "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  const std::string health = exporter.HandleRequest("GET", "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  EXPECT_NE(exporter.HandleRequest("GET", "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  EXPECT_NE(exporter.HandleRequest("POST", "/metrics").find("HTTP/1.0 405"),
            std::string::npos);
  // Query strings are ignored when routing.
  EXPECT_NE(
      exporter.HandleRequest("GET", "/healthz?verbose=1").find("200 OK"),
      std::string::npos);
}

#ifdef URBANE_TEST_SOCKETS
TEST(TelemetryExporterTest, ServesPrometheusMetricsOverSocket) {
  // Unique metric names so the assertions are immune to registry state
  // left behind by other tests.
  MetricsRegistry::Global().GetCounter("exportertest.requests").Add(7);
  Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "exportertest.latency_seconds", {0.01, 0.1});
  histogram.Observe(0.005);
  histogram.Observe(0.05);
  histogram.Observe(5.0);

  TelemetryExporterOptions options;
  options.port = 0;  // ephemeral
  TelemetryExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_TRUE(exporter.running());
  ASSERT_GT(exporter.port(), 0);

  const std::string response = HttpGet(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("# TYPE urbane_exportertest_requests counter"),
            std::string::npos);
  EXPECT_NE(body.find("urbane_exportertest_requests 7"), std::string::npos);
  EXPECT_NE(body.find("# TYPE urbane_exportertest_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      body.find("urbane_exportertest_latency_seconds_bucket{le=\"+Inf\"} 3"),
      std::string::npos);
  // /metrics refreshes the process gauges on every scrape.
  EXPECT_NE(body.find("urbane_process_uptime_seconds"), std::string::npos);

  // Several sequential scrapes on the single-threaded listener.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(HttpGet(exporter.port(), "/healthz").find("ok"),
              std::string::npos);
  }
  EXPECT_NE(HttpGet(exporter.port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.port(), 0);
}

TEST(TelemetryExporterTest, SlowQueryAppearsInSlowlogEndpoint) {
  SlowQueryLog& recorder = SlowQueryLog::Global();
  SlowQueryLogOptions recorder_options;
  recorder_options.threshold_seconds = 0.0;
  recorder_options.p99_multiplier = 0.0;
  recorder.SetOptions(recorder_options);
  recorder.Clear();
  recorder.MaybeRecord(0xabcdefULL, "raster", "SELECT COUNT(*)",
                       "exporter-test-plan", 1.5, nullptr);

  TelemetryExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  const std::string response = HttpGet(exporter.port(), "/slowlog");
  exporter.Stop();
  EXPECT_NE(response.find("application/json"), std::string::npos);

  const auto parsed = data::ParseJson(Body(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->AsString(), "urbane.slowlog.v1");
  const data::JsonValue* records = parsed->Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->AsArray().size(), 1u);
  EXPECT_EQ(records->AsArray()[0].Find("plan")->AsString(),
            "exporter-test-plan");
  EXPECT_EQ(records->AsArray()[0].Find("fingerprint")->AsString(),
            "0000000000abcdef");

  recorder.SetOptions(SlowQueryLogOptions{});
  recorder.Clear();
}

TEST(TelemetryExporterTest, HalfOpenClientCannotStallOtherScrapers) {
  // Regression test for the synchronous serving loop: a client that
  // connects and never sends a request used to park the exporter thread in
  // a timeout-less recv(), starving every other scraper. With per-socket
  // timeouts the stall is bounded by client_timeout_ms.
  TelemetryExporterOptions options;
  options.client_timeout_ms = 150;
  TelemetryExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());

  // The half-open peer: connect, send nothing, stay open until the end.
  const int mute_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(mute_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(exporter.port());
  ASSERT_EQ(
      ::connect(mute_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);

  // Scrapes issued behind the mute client must still be answered — each
  // can be delayed by at most one client_timeout_ms slice, never starved.
  for (int i = 0; i < 3; ++i) {
    const std::string response = HttpGet(exporter.port(), "/healthz");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
        << "scrape " << i << " starved by a half-open client";
  }
  const std::string metrics = HttpGet(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("urbane_process_uptime_seconds"), std::string::npos);

  ::close(mute_fd);
  exporter.Stop();
}

TEST(TelemetryExporterTest, StopIsIdempotentAndRestartable) {
  TelemetryExporter exporter;
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_FALSE(exporter.Start().ok());  // double start refused
  exporter.Stop();
  exporter.Stop();  // no-op
  ASSERT_TRUE(exporter.Start().ok());  // restart binds a fresh socket
  EXPECT_GT(exporter.port(), 0);
  exporter.Stop();
}
#endif  // URBANE_TEST_SOCKETS

TEST(TelemetryExporterTest, SinkReceivesJsonlDeltas) {
  const std::string sink = ::testing::TempDir() + "/urbane_exporter_sink.jsonl";
  std::remove(sink.c_str());

  TelemetryExporterOptions options;
  options.listen = false;
  options.sink_path = sink;
  options.flush_period_seconds = 0.05;

  MetricsRegistry::Global().GetCounter("exportertest.sink").Add(5);
  {
    TelemetryExporter exporter(options);
    ASSERT_TRUE(exporter.Start().ok());
    while (exporter.flushes() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    exporter.Stop();
    EXPECT_GE(exporter.flushes(), 2u);
  }

  std::ifstream in(sink);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  bool saw_sink_counter = false;
  for (const std::string& one : lines) {
    const auto parsed = data::ParseJson(one);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << one;
    EXPECT_EQ(parsed->Find("schema")->AsString(), "urbane.telemetry.v1");
    EXPECT_GE(parsed->Find("uptime_seconds")->AsNumber(), 0.0);
    const data::JsonValue* delta = parsed->Find("delta");
    ASSERT_NE(delta, nullptr);
    EXPECT_EQ(delta->Find("schema")->AsString(), "urbane.metrics.v1");
    if (one.find("exportertest.sink") != std::string::npos) {
      saw_sink_counter = true;
    }
  }
  // The first flush (the delta baseline) carries the pre-Start increment.
  EXPECT_TRUE(saw_sink_counter);
  std::remove(sink.c_str());
}

}  // namespace
}  // namespace urbane::obs
