// Unit tests for hierarchical query tracing: span nesting via the open
// stack, RAII handles, completed spans, tags, and text rendering.
#include "obs/trace.h"

#include <gtest/gtest.h>

namespace urbane::obs {
namespace {

TEST(QueryTraceTest, StartsEmpty) {
  QueryTrace trace;
  EXPECT_TRUE(trace.Empty());
  EXPECT_TRUE(trace.Spans().empty());
  EXPECT_TRUE(trace.Tags().empty());
}

TEST(QueryTraceTest, NestedSpansRecordParentage) {
  QueryTrace trace;
  const int outer = trace.BeginSpan("execute");
  const int inner = trace.BeginSpan("scan");
  trace.EndSpan(inner);
  trace.EndSpan(outer);

  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[outer].name, "execute");
  EXPECT_EQ(spans[outer].parent, -1);
  EXPECT_EQ(spans[inner].name, "scan");
  EXPECT_EQ(spans[inner].parent, outer);
  EXPECT_GE(spans[inner].duration_seconds, 0.0);
  EXPECT_GE(spans[outer].duration_seconds, spans[inner].duration_seconds);
}

TEST(QueryTraceTest, SiblingsShareAParent) {
  QueryTrace trace;
  const int root = trace.BeginSpan("execute");
  const int a = trace.BeginSpan("filter");
  trace.EndSpan(a);
  const int b = trace.BeginSpan("reduce");
  trace.EndSpan(b);
  trace.EndSpan(root);

  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[a].parent, root);
  EXPECT_EQ(spans[b].parent, root);
}

TEST(QueryTraceTest, EndSpanClosesOpenDescendants) {
  QueryTrace trace;
  const int root = trace.BeginSpan("execute");
  const int child = trace.BeginSpan("scan");
  const int grandchild = trace.BeginSpan("filter");
  (void)grandchild;
  trace.EndSpan(root);  // child + grandchild left open

  for (const TraceSpanRecord& span : trace.Spans()) {
    EXPECT_GE(span.duration_seconds, 0.0) << span.name;
  }
  // A new span after everything closed is a root again.
  const int next = trace.BeginSpan("again");
  trace.EndSpan(next);
  EXPECT_EQ(trace.Spans()[next].parent, -1);
  (void)child;
}

TEST(QueryTraceTest, AddCompletedSpanIsDeterministic) {
  QueryTrace trace;
  const int parent = trace.BeginSpan("raster");
  const int pass = trace.AddCompletedSpan("splat", 0.25, parent);
  trace.EndSpan(parent);

  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[pass].name, "splat");
  EXPECT_EQ(spans[pass].parent, parent);
  EXPECT_DOUBLE_EQ(spans[pass].duration_seconds, 0.25);
  EXPECT_DOUBLE_EQ(spans[pass].start_seconds, 0.0);
}

TEST(QueryTraceTest, TraceTagsLastWriteWins) {
  QueryTrace trace;
  trace.Tag("cache", "miss");
  trace.Tag("method", "scan");
  trace.Tag("cache", "hit");
  const auto tags = trace.Tags();
  ASSERT_EQ(tags.size(), 2u);
  int cache_index = tags[0].first == "cache" ? 0 : 1;
  EXPECT_EQ(tags[cache_index].second, "hit");
}

TEST(QueryTraceTest, SpanTags) {
  QueryTrace trace;
  const int id = trace.BeginSpan("raster");
  trace.AddSpanTag(id, "batch_size", "4");
  trace.EndSpan(id);
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].tags.size(), 1u);
  EXPECT_EQ(spans[0].tags[0].first, "batch_size");
  EXPECT_EQ(spans[0].tags[0].second, "4");
}

TEST(QueryTraceTest, ClearEmptiesEverything) {
  QueryTrace trace;
  trace.Tag("k", "v");
  const int id = trace.BeginSpan("s");
  trace.EndSpan(id);
  EXPECT_FALSE(trace.Empty());
  trace.Clear();
  EXPECT_TRUE(trace.Empty());
  // Usable after Clear; ids restart from zero.
  EXPECT_EQ(trace.BeginSpan("fresh"), 0);
}

TEST(TraceSpanTest, NullTraceIsANoOp) {
  TraceSpan span(nullptr, "anything");
  span.Tag("k", "v");  // must not crash
  EXPECT_EQ(span.id(), -1);
}

TEST(TraceSpanTest, RaiiOpensAndCloses) {
  QueryTrace trace;
  {
    TraceSpan outer(&trace, "execute");
    TraceSpan inner(&trace, "scan");
    inner.Tag("threads", "4");
  }
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "execute");
  EXPECT_EQ(spans[1].parent, 0);
  ASSERT_EQ(spans[1].tags.size(), 1u);
  EXPECT_EQ(spans[1].tags[0].first, "threads");
}

TEST(QueryTraceTest, ToStringRendersTreeAndTags) {
  QueryTrace trace;
  trace.Tag("method", "scan");
  const int root = trace.BeginSpan("execute");
  trace.AddCompletedSpan("filter", 0.001, root);
  trace.EndSpan(root);
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("method = scan"), std::string::npos) << text;
  EXPECT_NE(text.find("execute"), std::string::npos) << text;
  EXPECT_NE(text.find("filter"), std::string::npos) << text;
  // Child is indented relative to the root.
  EXPECT_LT(text.find("execute"), text.find("filter"));
}

}  // namespace
}  // namespace urbane::obs
