#include "index/temporal_index.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/random.h"

namespace urbane::index {
namespace {

TEST(TemporalIndexTest, EmptyInput) {
  const auto index = TemporalIndex::Build(nullptr, 0);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->point_count(), 0u);
  EXPECT_EQ(index->CountInRange(0, 100), 0u);
}

TEST(TemporalIndexTest, SortsIdsByTime) {
  const std::vector<std::int64_t> ts = {30, 10, 20};
  const auto index = TemporalIndex::Build(ts.data(), ts.size());
  ASSERT_TRUE(index.ok());
  const auto [ids, n] = index->IdsInRange(0, 100);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 0u);
  EXPECT_EQ(index->min_time(), 10);
  EXPECT_EQ(index->max_time(), 30);
}

TEST(TemporalIndexTest, RangeIsHalfOpen) {
  const std::vector<std::int64_t> ts = {10, 20, 30};
  const auto index = TemporalIndex::Build(ts.data(), ts.size());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->CountInRange(10, 30), 2u);   // 10, 20 but not 30
  EXPECT_EQ(index->CountInRange(10, 31), 3u);
  EXPECT_EQ(index->CountInRange(11, 20), 0u);
  EXPECT_EQ(index->CountInRange(20, 20), 0u);   // empty range
}

TEST(TemporalIndexTest, CountMatchesBruteForce) {
  Rng rng(99);
  std::vector<std::int64_t> ts(5000);
  for (auto& t : ts) {
    t = rng.NextInt(1000, 2000);
  }
  const auto index = TemporalIndex::Build(ts.data(), ts.size());
  ASSERT_TRUE(index.ok());
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t a = rng.NextInt(900, 2100);
    const std::int64_t b = a + rng.NextInt(0, 300);
    std::size_t brute = 0;
    for (const std::int64_t t : ts) {
      if (t >= a && t < b) ++brute;
    }
    EXPECT_EQ(index->CountInRange(a, b), brute);
  }
}

TEST(TemporalIndexTest, HistogramSumsToCount) {
  Rng rng(5);
  std::vector<std::int64_t> ts(3000);
  for (auto& t : ts) {
    t = rng.NextInt(0, 86400);
  }
  const auto index = TemporalIndex::Build(ts.data(), ts.size(), 48);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->histogram_bins(), 48);
  const std::size_t total =
      std::accumulate(index->Histogram().begin(), index->Histogram().end(),
                      std::size_t{0});
  EXPECT_EQ(total, ts.size());
}

TEST(TemporalIndexTest, BinStartsAreMonotone) {
  const std::vector<std::int64_t> ts = {0, 100, 200, 1000};
  const auto index = TemporalIndex::Build(ts.data(), ts.size(), 10);
  ASSERT_TRUE(index.ok());
  for (int b = 1; b < 10; ++b) {
    EXPECT_GT(index->BinStart(b), index->BinStart(b - 1));
  }
  EXPECT_EQ(index->BinStart(0), 0);
}

TEST(TemporalIndexTest, RejectsBadBinCount) {
  const std::vector<std::int64_t> ts = {1};
  EXPECT_FALSE(TemporalIndex::Build(ts.data(), 1, 0).ok());
}

TEST(TemporalIndexTest, IdsInRangeSpanIsTimeSorted) {
  Rng rng(6);
  std::vector<std::int64_t> ts(500);
  for (auto& t : ts) {
    t = rng.NextInt(0, 10000);
  }
  const auto index = TemporalIndex::Build(ts.data(), ts.size());
  ASSERT_TRUE(index.ok());
  const auto [ids, n] = index->IdsInRange(2000, 8000);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(ts[ids[i - 1]], ts[ids[i]]);
  }
}

}  // namespace
}  // namespace urbane::index
