#include "index/rtree.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace urbane::index {
namespace {

using geometry::BoundingBox;
using geometry::Vec2;

std::vector<BoundingBox> RandomBoxes(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BoundingBox> boxes;
  boxes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double x = rng.NextDouble(0, 90);
    const double y = rng.NextDouble(0, 90);
    boxes.emplace_back(x, y, x + rng.NextDouble(1, 10),
                       y + rng.NextDouble(1, 10));
  }
  return boxes;
}

TEST(RTreeTest, EmptyInput) {
  const auto tree = RTree::Build({});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->item_count(), 0u);
  int hits = 0;
  tree->QueryPoint({1, 1}, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(RTreeTest, SingleItem) {
  const auto tree = RTree::Build({BoundingBox(0, 0, 10, 10)});
  ASSERT_TRUE(tree.ok());
  std::vector<std::uint32_t> hits;
  tree->QueryPoint({5, 5}, [&](std::uint32_t id) { hits.push_back(id); });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  hits.clear();
  tree->QueryPoint({20, 20}, [&](std::uint32_t id) { hits.push_back(id); });
  EXPECT_TRUE(hits.empty());
}

TEST(RTreeTest, InvalidOptionsRejected) {
  RTreeOptions bad;
  bad.leaf_capacity = 0;
  EXPECT_FALSE(RTree::Build({BoundingBox(0, 0, 1, 1)}, bad).ok());
  bad.leaf_capacity = 4;
  bad.fanout = 1;
  EXPECT_FALSE(RTree::Build({BoundingBox(0, 0, 1, 1)}, bad).ok());
}

TEST(RTreeTest, PointQueryMatchesBruteForce) {
  const auto boxes = RandomBoxes(500, 42);
  const auto tree = RTree::Build(boxes);
  ASSERT_TRUE(tree.ok());
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    std::set<std::uint32_t> hits;
    tree->QueryPoint(p, [&](std::uint32_t id) {
      EXPECT_TRUE(hits.insert(id).second) << "duplicate hit";
    });
    std::set<std::uint32_t> brute;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Contains(p)) {
        brute.insert(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(hits, brute) << "trial " << trial;
  }
}

TEST(RTreeTest, BoxQueryMatchesBruteForce) {
  const auto boxes = RandomBoxes(400, 43);
  const auto tree = RTree::Build(boxes);
  ASSERT_TRUE(tree.ok());
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const double x = rng.NextDouble(0, 80);
    const double y = rng.NextDouble(0, 80);
    const BoundingBox query(x, y, x + 15, y + 15);
    std::set<std::uint32_t> hits;
    tree->QueryBox(query, [&](std::uint32_t id) { hits.insert(id); });
    std::set<std::uint32_t> brute;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) {
        brute.insert(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(hits, brute) << "trial " << trial;
  }
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTreeOptions options;
  options.leaf_capacity = 8;
  options.fanout = 8;
  const auto small = RTree::Build(RandomBoxes(10, 1), options);
  const auto large = RTree::Build(RandomBoxes(2000, 2), options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(small->height(), 2);
  EXPECT_LE(large->height(), 5);  // 8^4 = 4096 >= 2000 leaves needed
  EXPECT_GT(large->node_count(), small->node_count());
}

TEST(RTreeTest, MemoryBytesNonZero) {
  const auto tree = RTree::Build(RandomBoxes(50, 3));
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace urbane::index
