#include "index/quadtree.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/test_worlds.h"

namespace urbane::index {
namespace {

using geometry::BoundingBox;
using geometry::Polygon;
using geometry::Ring;

TEST(QuadtreeTest, BuildKeepsInBoundsPoints) {
  const std::vector<float> xs = {1.0f, 2.0f, 200.0f};
  const std::vector<float> ys = {1.0f, 2.0f, 2.0f};
  const auto tree = Quadtree::Build(xs.data(), ys.data(), xs.size(),
                                    BoundingBox(0, 0, 100, 100));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->point_count(), 2u);
}

TEST(QuadtreeTest, SplitsUnderLoad) {
  const auto points = testing::MakeUniformPoints(2000, 5);
  QuadtreeOptions options;
  options.max_points_per_leaf = 32;
  const auto tree =
      Quadtree::Build(points.xs(), points.ys(), points.size(),
                      BoundingBox(0, 0, 100.001, 100.001), options);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(tree->node_count(), 1u);
  EXPECT_GT(tree->max_depth_reached(), 0);
}

TEST(QuadtreeTest, InvalidOptionsRejected) {
  const std::vector<float> xs = {1.0f};
  QuadtreeOptions bad;
  bad.max_points_per_leaf = 0;
  EXPECT_FALSE(Quadtree::Build(xs.data(), xs.data(), 1,
                               BoundingBox(0, 0, 1, 1), bad)
                   .ok());
  EXPECT_FALSE(
      Quadtree::Build(xs.data(), xs.data(), 1, BoundingBox()).ok());
}

TEST(QuadtreeTest, PolygonQueryMatchesBruteForce) {
  const auto points = testing::MakeUniformPoints(4000, 6);
  const auto tree = Quadtree::Build(points.xs(), points.ys(), points.size(),
                                    BoundingBox(0, 0, 100.001, 100.001));
  ASSERT_TRUE(tree.ok());
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    const Polygon poly = testing::RandomStarPolygon(
        rng, {rng.NextDouble(25, 75), rng.NextDouble(25, 75)},
        rng.NextDouble(8, 20), 10);
    std::size_t matched = 0;
    tree->Query(
        poly,
        [&](const std::uint32_t*, std::size_t n) { matched += n; },
        [&](const std::uint32_t* ids, std::size_t n) {
          for (std::size_t k = 0; k < n; ++k) {
            if (poly.Contains({points.x(ids[k]), points.y(ids[k])})) {
              ++matched;
            }
          }
        });
    std::size_t brute = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (poly.Contains({points.x(i), points.y(i)})) {
        ++brute;
      }
    }
    EXPECT_EQ(matched, brute) << "trial " << trial;
  }
}

TEST(QuadtreeTest, TakeAllSubtreesAreTrulyInside) {
  const auto points = testing::MakeUniformPoints(3000, 7);
  const auto tree = Quadtree::Build(points.xs(), points.ys(), points.size(),
                                    BoundingBox(0, 0, 100.001, 100.001));
  ASSERT_TRUE(tree.ok());
  const Polygon poly(Ring{{10, 10}, {90, 15}, {85, 90}, {15, 85}});
  tree->Query(
      poly,
      [&](const std::uint32_t* ids, std::size_t n) {
        for (std::size_t k = 0; k < n; ++k) {
          EXPECT_TRUE(poly.Contains({points.x(ids[k]), points.y(ids[k])}));
        }
      },
      [](const std::uint32_t*, std::size_t) {});
}

TEST(QuadtreeTest, QueryBoxMatchesBruteForce) {
  const auto points = testing::MakeUniformPoints(3000, 8);
  const auto tree = Quadtree::Build(points.xs(), points.ys(), points.size(),
                                    BoundingBox(0, 0, 100.001, 100.001));
  ASSERT_TRUE(tree.ok());
  const BoundingBox query(20.5, 30.5, 60.5, 70.5);
  std::size_t matched = 0;
  tree->QueryBox(query, [&](const std::uint32_t* ids, std::size_t n,
                            bool certain) {
    for (std::size_t k = 0; k < n; ++k) {
      if (certain || query.Contains({points.x(ids[k]), points.y(ids[k])})) {
        ++matched;
      }
    }
  });
  std::size_t brute = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (query.Contains({points.x(i), points.y(i)})) {
      ++brute;
    }
  }
  EXPECT_EQ(matched, brute);
}

TEST(QuadtreeTest, EmptyPointSet) {
  const auto tree =
      Quadtree::Build(nullptr, nullptr, 0, BoundingBox(0, 0, 1, 1));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->point_count(), 0u);
  int calls = 0;
  tree->Query(Polygon(Ring{{0, 0}, {1, 0}, {1, 1}}),
              [&](const std::uint32_t*, std::size_t) { ++calls; },
              [&](const std::uint32_t*, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(QuadtreeTest, DuplicatePointsRespectMaxDepth) {
  // 1000 identical points can never split apart: max_depth must stop it.
  std::vector<float> xs(1000, 50.0f);
  std::vector<float> ys(1000, 50.0f);
  QuadtreeOptions options;
  options.max_points_per_leaf = 8;
  options.max_depth = 6;
  const auto tree = Quadtree::Build(xs.data(), ys.data(), xs.size(),
                                    BoundingBox(0, 0, 100, 100), options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->max_depth_reached(), 6);
  EXPECT_EQ(tree->point_count(), 1000u);
}

}  // namespace
}  // namespace urbane::index
