#include "index/grid_index.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/test_worlds.h"

namespace urbane::index {
namespace {

using geometry::BoundingBox;
using geometry::Polygon;
using geometry::Ring;

TEST(GridIndexTest, BuildPartitionsAllInBoundsPoints) {
  const std::vector<float> xs = {0.5f, 1.5f, 2.5f, 99.0f, -5.0f};
  const std::vector<float> ys = {0.5f, 1.5f, 2.5f, 99.0f, 50.0f};
  const auto index = GridIndex::Build(xs.data(), ys.data(), xs.size(),
                                      BoundingBox(0, 0, 100, 100), 10, 10);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->point_count(), 4u);  // the (-5, 50) point is outside
  EXPECT_EQ(index->cells_x(), 10);
  EXPECT_EQ(index->cells_y(), 10);
}

TEST(GridIndexTest, CellLookupFindsPoints) {
  const std::vector<float> xs = {5.0f, 15.0f, 15.5f};
  const std::vector<float> ys = {5.0f, 15.0f, 15.5f};
  const auto index = GridIndex::Build(xs.data(), ys.data(), xs.size(),
                                      BoundingBox(0, 0, 100, 100), 10, 10);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->CellSize(0, 0), 1u);
  EXPECT_EQ(index->CellSize(1, 1), 2u);
  EXPECT_EQ(index->CellSize(5, 5), 0u);
  EXPECT_EQ(*index->CellBegin(0, 0), 0u);
}

TEST(GridIndexTest, InvalidArgumentsRejected) {
  const std::vector<float> xs = {1.0f};
  EXPECT_FALSE(GridIndex::Build(xs.data(), xs.data(), 1,
                                BoundingBox(0, 0, 10, 10), 0, 5)
                   .ok());
  EXPECT_FALSE(
      GridIndex::Build(xs.data(), xs.data(), 1, BoundingBox(), 5, 5).ok());
}

TEST(GridIndexTest, BuildAutoTargetsDensity) {
  testing::TestWorld world;
  const auto points = testing::MakeUniformPoints(6400, 1);
  const auto index =
      GridIndex::BuildAuto(points.xs(), points.ys(), points.size(),
                           BoundingBox(0, 0, 100, 100), 64.0);
  ASSERT_TRUE(index.ok());
  const std::size_t cells = static_cast<std::size_t>(index->cells_x()) *
                            index->cells_y();
  EXPECT_GE(cells, 50u);
  EXPECT_LE(cells, 220u);
}

TEST(GridIndexTest, ClassifyCellsInteriorPlusBoundaryCoversPolygon) {
  const auto points = testing::MakeUniformPoints(5000, 2);
  const auto index = GridIndex::BuildAuto(points.xs(), points.ys(),
                                          points.size(),
                                          BoundingBox(0, 0, 100.001, 100.001),
                                          32.0);
  ASSERT_TRUE(index.ok());
  const Polygon poly(Ring{{20, 20}, {80, 25}, {75, 80}, {25, 75}});

  std::set<std::pair<int, int>> interior;
  std::set<std::pair<int, int>> boundary;
  index->ClassifyCells(
      poly, [&](int cx, int cy) { interior.insert({cx, cy}); },
      [&](int cx, int cy) { boundary.insert({cx, cy}); });
  EXPECT_FALSE(interior.empty());
  EXPECT_FALSE(boundary.empty());
  // Interior and boundary sets are disjoint.
  for (const auto& cell : interior) {
    EXPECT_EQ(boundary.count(cell), 0u);
  }
  // Every interior cell is truly fully inside.
  for (const auto& [cx, cy] : interior) {
    EXPECT_TRUE(
        geometry::PolygonContainsBox(poly, index->CellBounds(cx, cy)));
  }
  // Exactness: per-point classification through the cells matches brute
  // force PIP over all points.
  std::size_t via_cells = 0;
  for (const auto& [cx, cy] : interior) {
    via_cells += index->CellSize(cx, cy);
  }
  for (const auto& [cx, cy] : boundary) {
    for (const auto* it = index->CellBegin(cx, cy);
         it != index->CellEnd(cx, cy); ++it) {
      if (poly.Contains({points.x(*it), points.y(*it)})) {
        ++via_cells;
      }
    }
  }
  std::size_t brute = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (poly.Contains({points.x(i), points.y(i)})) {
      ++brute;
    }
  }
  EXPECT_EQ(via_cells, brute);
}

TEST(GridIndexTest, ClassifySkipsDisjointPolygon) {
  const auto points = testing::MakeUniformPoints(100, 3);
  const auto index =
      GridIndex::BuildAuto(points.xs(), points.ys(), points.size(),
                           BoundingBox(0, 0, 100.001, 100.001), 16.0);
  ASSERT_TRUE(index.ok());
  const Polygon far(Ring{{200, 200}, {210, 200}, {205, 210}});
  int calls = 0;
  index->ClassifyCells(far, [&](int, int) { ++calls; },
                       [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(GridIndexTest, MemoryBytesNonZero) {
  const auto points = testing::MakeUniformPoints(100, 4);
  const auto index =
      GridIndex::BuildAuto(points.xs(), points.ys(), points.size(),
                           BoundingBox(0, 0, 100.001, 100.001), 16.0);
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace urbane::index
