#include "index/zorder.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace urbane::index {
namespace {

TEST(MortonTest, KnownValues) {
  EXPECT_EQ(MortonEncode16(0, 0), 0u);
  EXPECT_EQ(MortonEncode16(1, 0), 1u);
  EXPECT_EQ(MortonEncode16(0, 1), 2u);
  EXPECT_EQ(MortonEncode16(1, 1), 3u);
  EXPECT_EQ(MortonEncode16(2, 0), 4u);
  EXPECT_EQ(MortonEncode16(0xFFFF, 0xFFFF), 0xFFFFFFFFu);
}

TEST(MortonTest, RoundTrips) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint16_t>(rng.NextUint64(65536));
    const auto y = static_cast<std::uint16_t>(rng.NextUint64(65536));
    std::uint16_t dx;
    std::uint16_t dy;
    MortonDecode16(MortonEncode16(x, y), dx, dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(MortonTest, WideEncodeConsistentWithNarrow) {
  EXPECT_EQ(MortonEncode32(3, 5),
            static_cast<std::uint64_t>(MortonEncode16(3, 5)));
  EXPECT_EQ(MortonEncode32(0xFFFFFFFF, 0),
            0x5555555555555555ULL);
}

TEST(ZOrderKeyTest, CornersMapToExtremes) {
  const geometry::BoundingBox box(0, 0, 10, 10);
  EXPECT_EQ(ZOrderKey({0, 0}, box), 0u);
  EXPECT_EQ(ZOrderKey({10, 10}, box), 0xFFFFFFFFu);
}

TEST(ZOrderKeyTest, ClampsOutOfBounds) {
  const geometry::BoundingBox box(0, 0, 10, 10);
  EXPECT_EQ(ZOrderKey({-5, -5}, box), ZOrderKey({0, 0}, box));
  EXPECT_EQ(ZOrderKey({20, 20}, box), ZOrderKey({10, 10}, box));
}

TEST(ZOrderKeyTest, LocalityNearbyPointsShareHighBits) {
  const geometry::BoundingBox box(0, 0, 100, 100);
  const std::uint32_t a = ZOrderKey({50.0, 50.0}, box);
  const std::uint32_t b = ZOrderKey({50.01, 50.01}, box);
  const std::uint32_t c = ZOrderKey({95.0, 5.0}, box);
  // a and b agree in far more high bits than a and c.
  const auto diff_bits = [](std::uint32_t u, std::uint32_t v) {
    return u == v ? 32 : __builtin_clz(u ^ v);
  };
  EXPECT_GT(diff_bits(a, b), diff_bits(a, c));
}

}  // namespace
}  // namespace urbane::index
