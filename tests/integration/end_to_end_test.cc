// End-to-end flows mirroring the demo: generate city data, persist and
// reload it, run the paper's query through every executor, render the views,
// and replay an interactive session.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/spatial_aggregation.h"
#include "data/binary_io.h"
#include "data/event_generator.h"
#include "data/geojson.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "urbane/dataset_manager.h"
#include "urbane/exploration_view.h"
#include "urbane/heatmap_view.h"
#include "urbane/map_view.h"
#include "urbane/session.h"

namespace urbane {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::TaxiGeneratorOptions taxi_options;
    taxi_options.num_trips = 50000;
    taxi_options.seed = 2018;
    taxi_ = new data::PointTable(data::GenerateTaxiTrips(taxi_options));
    regions_ = new data::RegionSet(data::GenerateNeighborhoods(3));
  }
  static void TearDownTestSuite() {
    delete taxi_;
    delete regions_;
    taxi_ = nullptr;
    regions_ = nullptr;
  }

  static data::PointTable* taxi_;
  static data::RegionSet* regions_;
};

data::PointTable* EndToEndTest::taxi_ = nullptr;
data::RegionSet* EndToEndTest::regions_ = nullptr;

TEST_F(EndToEndTest, PaperQueryFigure1) {
  // "number of pickups performed by NYC taxis in the month of January 2009
  //  aggregated over the neighborhoods of NYC"
  core::SpatialAggregation engine(*taxi_, *regions_);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  query.filter.WithTime(1230768000, 1233446400);  // Jan 2009
  const auto exact =
      engine.Execute(query, core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(exact.ok());
  std::uint64_t total = 0;
  for (const auto count : exact->counts) {
    total += count;
  }
  // Neighborhoods tile the full synthetic city, so every trip lands in
  // exactly one of them.
  EXPECT_EQ(total, taxi_->size());

  // The same frame rendered as the paper's Figure 1.
  const std::string path = ::testing::TempDir() + "/figure1.ppm";
  const auto render = app::RenderChoroplethToFile(*regions_, *exact, path);
  ASSERT_TRUE(render.ok());
  std::remove(path.c_str());
}

TEST_F(EndToEndTest, AllExecutorsAgreeOnTaxiWorkload) {
  core::RasterJoinOptions options;
  options.resolution = 512;
  core::SpatialAggregation engine(*taxi_, *regions_, options);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Avg("fare_amount");
  query.filter.WithRange("passenger_count", 1, 2);
  const auto scan = engine.Execute(query, core::ExecutionMethod::kScan);
  const auto index = engine.Execute(query, core::ExecutionMethod::kIndexJoin);
  const auto accurate =
      engine.Execute(query, core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(accurate.ok());
  for (std::size_t r = 0; r < regions_->size(); ++r) {
    EXPECT_EQ(index->counts[r], scan->counts[r]);
    EXPECT_EQ(accurate->counts[r], scan->counts[r]);
    if (scan->counts[r] > 0) {
      EXPECT_NEAR(accurate->values[r], scan->values[r],
                  1e-6 * std::fabs(scan->values[r]) + 1e-9);
    }
  }
}

TEST_F(EndToEndTest, BinarySnapshotRoundTripPreservesQueries) {
  const std::string points_path = ::testing::TempDir() + "/e2e_points.upt";
  const std::string regions_path = ::testing::TempDir() + "/e2e_regions.urg";
  ASSERT_TRUE(data::WritePointTableBinary(*taxi_, points_path).ok());
  ASSERT_TRUE(data::WriteRegionSetBinary(*regions_, regions_path).ok());
  const auto points = data::ReadPointTableBinary(points_path);
  const auto regions = data::ReadRegionSetBinary(regions_path);
  ASSERT_TRUE(points.ok());
  ASSERT_TRUE(regions.ok());

  core::SpatialAggregation original(*taxi_, *regions_);
  core::SpatialAggregation reloaded(*points, *regions);
  core::AggregationQuery query;
  const auto a = original.Execute(query, core::ExecutionMethod::kScan);
  const auto b = reloaded.Execute(query, core::ExecutionMethod::kScan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->counts, b->counts);
  std::remove(points_path.c_str());
  std::remove(regions_path.c_str());
}

TEST_F(EndToEndTest, GeoJsonExportReimportKeepsRegionCount) {
  const std::string geojson = data::WriteGeoJsonRegions(*regions_);
  const auto reloaded = data::ReadGeoJsonRegions(geojson);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->size(), regions_->size());
}

TEST_F(EndToEndTest, MultiDatasetExplorationView) {
  app::DatasetManager manager;
  data::UrbanEventOptions opt311;
  opt311.num_events = 20000;
  data::UrbanEventOptions crime_options;
  crime_options.kind = data::UrbanEventKind::kCrimeIncidents;
  crime_options.num_events = 15000;
  ASSERT_TRUE(manager.AddPointDataset("taxi", *taxi_).ok());
  ASSERT_TRUE(
      manager.AddPointDataset("311", data::GenerateUrbanEvents(opt311)).ok());
  ASSERT_TRUE(manager
                  .AddPointDataset("crime",
                                   data::GenerateUrbanEvents(crime_options))
                  .ok());
  ASSERT_TRUE(manager.AddRegionLayer("hoods", *regions_).ok());

  app::DataExplorationView view(manager, "hoods");
  app::ProfileMetric taxi_metric;
  taxi_metric.label = "pickups";
  taxi_metric.dataset = "taxi";
  taxi_metric.aggregate = core::AggregateSpec::Count();
  view.AddMetric(taxi_metric);
  app::ProfileMetric fare_metric = taxi_metric;
  fare_metric.label = "avg fare";
  fare_metric.aggregate = core::AggregateSpec::Avg("fare_amount");
  view.AddMetric(fare_metric);
  app::ProfileMetric complaint_metric;
  complaint_metric.label = "311 complaints";
  complaint_metric.dataset = "311";
  complaint_metric.aggregate = core::AggregateSpec::Count();
  view.AddMetric(complaint_metric);
  app::ProfileMetric crime_metric;
  crime_metric.label = "crimes";
  crime_metric.dataset = "crime";
  crime_metric.aggregate = core::AggregateSpec::Count();
  view.AddMetric(crime_metric);

  const auto profiles =
      view.ComputeProfiles(core::ExecutionMethod::kAccurateRaster);
  ASSERT_TRUE(profiles.ok()) << profiles.status();
  EXPECT_EQ(profiles->metric_count(), 4u);
  EXPECT_EQ(profiles->region_count(), regions_->size());
  const auto ranking = app::DataExplorationView::RankByMetric(*profiles, 0);
  const auto similar =
      app::DataExplorationView::MostSimilar(*profiles, ranking[0], 3);
  EXPECT_EQ(similar.size(), 3u);
}

TEST_F(EndToEndTest, HeatmapOfJanuaryMornings) {
  core::FilterSpec filter;
  filter.WithTime(1230768000, 1233446400);
  const auto image = app::RenderHeatmap(*taxi_, filter);
  ASSERT_TRUE(image.ok());
  EXPECT_GT(image->width(), 0);
}

TEST_F(EndToEndTest, InteractiveSessionStaysExact) {
  core::RasterJoinOptions options;
  options.resolution = 512;
  core::SpatialAggregation engine(*taxi_, *regions_, options);
  const auto [t0, t1] = taxi_->TimeRange();
  app::InteractionSession session(engine, "fare_amount", t0, t1);
  const auto trace = app::GenerateInteractionTrace(12, 42);
  const auto raster =
      session.Replay(trace, core::ExecutionMethod::kAccurateRaster);
  const auto scan = session.Replay(trace, core::ExecutionMethod::kScan);
  ASSERT_TRUE(raster.ok());
  ASSERT_TRUE(scan.ok());
  const auto summary = app::SummarizeFrames(*raster);
  EXPECT_EQ(summary.frames, 12u);
  for (std::size_t i = 0; i < raster->size(); ++i) {
    EXPECT_NEAR((*raster)[i].checksum, (*scan)[i].checksum,
                1e-6 * std::max(1.0, std::fabs((*scan)[i].checksum)));
  }
}

}  // namespace
}  // namespace urbane
