#ifndef URBANE_TESTS_TESTING_TEST_WORLDS_H_
#define URBANE_TESTS_TESTING_TEST_WORLDS_H_

#include <cstdint>
#include <vector>

#include "data/point_table.h"
#include "data/region.h"
#include "data/region_generator.h"
#include "geometry/polygon.h"
#include "util/logging.h"
#include "util/random.h"

namespace urbane::testing {

/// A small deterministic spatio-temporal world for executor tests: points
/// with one attribute ("v") scattered in [0, 100]^2 over one day, plus a
/// region set.
struct TestWorld {
  data::PointTable points;
  data::RegionSet regions;
};

/// Uniform random points with v ~ U[-10, 10] and t ~ U[0, 86400).
inline data::PointTable MakeUniformPoints(std::size_t count,
                                          std::uint64_t seed,
                                          double lo = 0.0,
                                          double hi = 100.0) {
  data::Schema schema(std::vector<std::string>{"v"});
  data::PointTable table(schema);
  table.Reserve(count);
  Rng rng(seed);
  std::vector<float>& v = table.mutable_attribute_column(0);
  for (std::size_t i = 0; i < count; ++i) {
    table.AppendXyt(static_cast<float>(rng.NextDouble(lo, hi)),
                    static_cast<float>(rng.NextDouble(lo, hi)),
                    rng.NextInt(0, 86399));
    v.push_back(static_cast<float>(rng.NextDouble(-10.0, 10.0)));
  }
  return table;
}

/// Uniform random points whose attribute values are dyadic rationals
/// v = k/256, k integer in [-2560, 2560]. Every partial double sum of such
/// values (at test scale) is exact, so summation order cannot change a
/// single bit — folds that reorder additions (thread partitions, shard
/// merges) must then be BIT-identical to the serial fold, not merely
/// close. Conformance suites use this to pin down float SUM/AVG merge
/// paths that tolerance comparisons would let drift.
inline data::PointTable MakeDyadicPoints(std::size_t count,
                                         std::uint64_t seed,
                                         double lo = 0.0,
                                         double hi = 100.0) {
  data::Schema schema(std::vector<std::string>{"v"});
  data::PointTable table(schema);
  table.Reserve(count);
  Rng rng(seed);
  std::vector<float>& v = table.mutable_attribute_column(0);
  for (std::size_t i = 0; i < count; ++i) {
    table.AppendXyt(static_cast<float>(rng.NextDouble(lo, hi)),
                    static_cast<float>(rng.NextDouble(lo, hi)),
                    rng.NextInt(0, 86399));
    v.push_back(static_cast<float>(rng.NextInt(-2560, 2560)) / 256.0f);
  }
  return table;
}

/// Star-convex random polygon (always simple).
inline geometry::Polygon RandomStarPolygon(Rng& rng, const geometry::Vec2& c,
                                           double radius,
                                           std::size_t vertices) {
  geometry::Ring ring;
  ring.reserve(vertices);
  const double phase = rng.NextDouble(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < vertices; ++i) {
    const double angle = phase + 2.0 * M_PI * static_cast<double>(i) /
                                     static_cast<double>(vertices);
    const double r = radius * rng.NextDouble(0.55, 1.0);
    ring.push_back(
        {c.x + r * std::cos(angle), c.y + r * std::sin(angle)});
  }
  return geometry::Polygon(std::move(ring));
}

/// Random possibly-overlapping star polygons over [0, 100]^2.
inline data::RegionSet MakeRandomRegions(std::size_t count,
                                         std::uint64_t seed,
                                         std::size_t vertices = 12) {
  data::RegionSet regions;
  Rng rng(seed);
  for (std::size_t r = 0; r < count; ++r) {
    data::Region region;
    region.id = static_cast<std::int64_t>(r);
    region.name = "T-" + std::to_string(r);
    region.geometry = geometry::MultiPolygon(RandomStarPolygon(
        rng, {rng.NextDouble(15.0, 85.0), rng.NextDouble(15.0, 85.0)},
        rng.NextDouble(5.0, 18.0), vertices));
    URBANE_CHECK_OK(regions.Add(std::move(region)));
  }
  return regions;
}

/// A tessellation world in [0,100]^2 (disjoint cover of the bounds).
inline data::RegionSet MakeTessellationRegions(int cells, std::uint64_t seed) {
  data::TessellationOptions options;
  options.cells_x = cells;
  options.cells_y = cells;
  options.seed = seed;
  options.bounds = geometry::BoundingBox(0.0, 0.0, 100.0, 100.0);
  options.edge_subdivisions = 3;
  options.edge_wiggle = 0.05;
  return data::GenerateTessellation(options);
}

inline TestWorld MakeWorld(std::size_t num_points, std::size_t num_regions,
                           std::uint64_t seed) {
  TestWorld world;
  world.points = MakeUniformPoints(num_points, seed);
  world.regions = MakeRandomRegions(num_regions, seed ^ 0xABCDEF);
  return world;
}

}  // namespace urbane::testing

#endif  // URBANE_TESTS_TESTING_TEST_WORLDS_H_
