// Ingest-equivalence oracle (ISSUE 10 acceptance): at every stage of an
// append/seal/flush/compact interleaving, a LiveEngine's snapshot-composed
// answer must be BIT-identical — per executor, aggregate, filter, thread
// count and shard fan-out — to a stop-the-world SpatialAggregation rebuilt
// over the same rows concatenated in canonical order (base, runs in
// generation order, hot). The dyadic world (v = k/256) makes every double
// sum exact, so "equal" is a NaN-aware byte compare, not a tolerance.
//
// Also here: the as-of watermark contract, the scoped cache-invalidation
// regression (a closed-time-range answer stays a cache hit across appends
// that only touch newer times — satellite of the same PR), and the
// incremental temporal-canvas maintenance vs. a from-scratch rebuild.
#include "ingest/live_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "core/spatial_aggregation.h"
#include "data/point_table.h"
#include "data/schema.h"
#include "ingest/live_table.h"
#include "store/store_reader.h"
#include "store/store_writer.h"
#include "testing/test_worlds.h"
#include "util/random.h"
#include "util/status.h"

namespace urbane::ingest {
namespace {

data::Schema VSchema() {
  return data::Schema(std::vector<std::string>{"v"});
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/live_engine_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Dyadic batch with every timestamp inside [t_lo, t_hi] — the cache
// regression needs batches confined to known time intervals.
data::PointTable MakeBatchInTime(std::size_t count, std::uint64_t seed,
                                 std::int64_t t_lo, std::int64_t t_hi) {
  data::PointTable table(VSchema());
  table.Reserve(count);
  Rng rng(seed);
  std::vector<float>& v = table.mutable_attribute_column(0);
  for (std::size_t i = 0; i < count; ++i) {
    table.AppendXyt(static_cast<float>(rng.NextDouble(0.0, 100.0)),
                    static_cast<float>(rng.NextDouble(0.0, 100.0)),
                    rng.NextInt(t_lo, t_hi));
    v.push_back(static_cast<float>(rng.NextInt(-2560, 2560)) / 256.0f);
  }
  return table;
}

// Canonical stop-the-world concatenation: base, runs in generation order
// (each in stored order), hot in arrival order — LiveSnapshot's documented
// row order.
data::PointTable ConcatSnapshot(const LiveSnapshot& snapshot) {
  data::PointTable all(VSchema());
  all.Reserve(snapshot.watermark);
  const auto append = [&all](const data::PointTable& part) {
    for (std::size_t i = 0; i < part.size(); ++i) {
      URBANE_CHECK_OK(all.AppendRow(part.x(i), part.y(i), part.t(i),
                                    {part.attribute(i, 0)}));
    }
  };
  if (snapshot.base != nullptr) append(*snapshot.base);
  for (const auto& run : snapshot.runs) append(run->table);
  append(snapshot.hot);
  return all;
}

core::RasterJoinOptions SmallCanvas() {
  core::RasterJoinOptions options;
  options.resolution = 256;
  return options;
}

std::vector<core::AggregateSpec> AllAggregates() {
  return {core::AggregateSpec::Count(), core::AggregateSpec::Sum("v"),
          core::AggregateSpec::Avg("v"), core::AggregateSpec::Min("v"),
          core::AggregateSpec::Max("v")};
}

std::vector<core::FilterSpec> OracleFilters() {
  core::FilterSpec trivial;
  core::FilterSpec time_only;
  time_only.WithTime(10000, 50000);
  core::FilterSpec window;
  window.WithWindow(geometry::BoundingBox(10.0, 10.0, 35.0, 35.0));
  core::FilterSpec combined;
  combined.WithWindow(geometry::BoundingBox(20.0, 20.0, 80.0, 80.0))
      .WithTime(10000, 70000)
      .WithRange("v", -5.0, 5.0);
  return {trivial, time_only, window, combined};
}

constexpr core::ExecutionMethod kAllMethods[] = {
    core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
    core::ExecutionMethod::kBoundedRaster,
    core::ExecutionMethod::kAccurateRaster};

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Literal bit compare, except any-NaN == any-NaN (AVG/MIN/MAX of an empty
// region).
void ExpectBitIdentical(const core::QueryResult& live,
                        const core::QueryResult& rebuilt,
                        const std::string& what) {
  ASSERT_EQ(live.size(), rebuilt.size()) << what;
  ASSERT_EQ(live.error_bounds.size(), rebuilt.error_bounds.size()) << what;
  for (std::size_t r = 0; r < rebuilt.size(); ++r) {
    const bool both_nan =
        std::isnan(live.values[r]) && std::isnan(rebuilt.values[r]);
    EXPECT_TRUE(both_nan ||
                DoubleBits(live.values[r]) == DoubleBits(rebuilt.values[r]))
        << what << " region " << r << ": live=" << live.values[r]
        << " rebuilt=" << rebuilt.values[r];
    EXPECT_EQ(live.counts[r], rebuilt.counts[r]) << what << " region " << r;
    if (!rebuilt.error_bounds.empty()) {
      EXPECT_EQ(DoubleBits(live.error_bounds[r]),
                DoubleBits(rebuilt.error_bounds[r]))
          << what << " bound " << r;
    }
  }
}

struct OracleConfig {
  std::size_t threads = 1;
  std::size_t shards = 1;
  bool store_backed_base = false;
  const char* name = "";
};

class LiveEngineOracleTest : public ::testing::TestWithParam<OracleConfig> {};

// The full interleaving sweep. Stages walk a row through every lifecycle
// transition; the oracle re-runs the whole executor x aggregate x filter
// grid at each stage.
TEST_P(LiveEngineOracleTest, MatchesStopTheWorldRebuildAtEveryStage) {
  const OracleConfig config = GetParam();
  const std::string dir = FreshDir(std::string("oracle_") + config.name);
  const data::RegionSet regions = testing::MakeTessellationRegions(4, 0xBEEF);

  // Base component: in-memory or a real UST1 store (zone maps attached).
  const data::PointTable base_mem = testing::MakeDyadicPoints(1500, 0x5EED);
  std::unique_ptr<store::StoreReader> reader;
  data::PointTable base_view(VSchema());
  const data::PointTable* base = &base_mem;
  const core::ZoneMapIndex* base_zone_maps = nullptr;
  if (config.store_backed_base) {
    const std::string store_path = dir + std::string(".base.ust1");
    std::filesystem::remove(store_path);
    store::StoreWriterOptions store_options;
    store_options.block_rows = 256;
    StatusOr<store::StoreWriter> writer =
        store::StoreWriter::Create(store_path, VSchema(), store_options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append(base_mem).ok());
    ASSERT_TRUE(writer->Finish().ok());
    StatusOr<store::StoreReader> opened = store::StoreReader::Open(store_path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    reader = std::make_unique<store::StoreReader>(std::move(*opened));
    StatusOr<data::PointTable> mapped = reader->MappedTable();
    ASSERT_TRUE(mapped.ok());
    base_view = std::move(*mapped);
    base = &base_view;
    base_zone_maps = &reader->zone_maps();
  }

  IngestOptions ingest_options;
  ingest_options.memtable_rows = 600;  // the second append forces a seal
  ingest_options.run_block_rows = 256;
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), base, base_zone_maps, ingest_options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  core::ExecutionContext exec;
  exec.num_threads = config.threads;
  exec.min_parallel_points = 1;  // parallelize even these small components

  LiveEngineOptions options;
  options.raster_options = SmallCanvas();
  options.exec = exec;
  options.num_shards = config.shards;
  LiveEngine live(table->get(), &regions, options);

  const auto check_stage = [&](const std::string& stage) {
    const LiveSnapshot snapshot = (*table)->Snapshot();
    const data::PointTable rebuilt_rows = ConcatSnapshot(snapshot);
    ASSERT_EQ(rebuilt_rows.size(), snapshot.watermark);
    core::SpatialAggregation rebuilt(rebuilt_rows, regions, SmallCanvas(),
                                     core::IndexJoinOptions(), exec);
    for (core::ExecutionMethod method : kAllMethods) {
      for (const core::AggregateSpec& aggregate : AllAggregates()) {
        std::size_t filter_index = 0;
        for (const core::FilterSpec& filter : OracleFilters()) {
          const std::string what =
              stage + "/" + core::ExecutionMethodToString(method) + "/agg" +
              std::to_string(static_cast<int>(aggregate.kind)) + "/filter" +
              std::to_string(filter_index++);
          core::AggregationQuery query;
          query.aggregate = aggregate;
          query.filter = filter;
          std::uint64_t watermark = 0;
          StatusOr<core::QueryResult> live_result =
              live.Execute(query, method, &watermark);
          ASSERT_TRUE(live_result.ok()) << what << ": "
                                        << live_result.status().ToString();
          EXPECT_EQ(watermark, snapshot.watermark) << what;
          core::AggregationQuery rebuilt_query;
          rebuilt_query.aggregate = aggregate;
          rebuilt_query.filter = filter;
          StatusOr<core::QueryResult> rebuilt_result =
              rebuilt.Execute(rebuilt_query, method);
          ASSERT_TRUE(rebuilt_result.ok()) << what;
          ExpectBitIdentical(*live_result, *rebuilt_result, what);
        }
      }
    }
  };

  check_stage("base-only");
  ASSERT_TRUE((*table)->Append(testing::MakeDyadicPoints(500, 0xA1)).ok());
  check_stage("hot");
  ASSERT_TRUE((*table)->Append(testing::MakeDyadicPoints(400, 0xA2)).ok());
  check_stage("sealed+hot");
  ASSERT_TRUE((*table)->Flush().ok());
  check_stage("one-store-run");
  ASSERT_TRUE((*table)->Append(testing::MakeDyadicPoints(450, 0xA3)).ok());
  check_stage("store+hot");
  ASSERT_TRUE((*table)->Flush().ok());
  ASSERT_TRUE((*table)->Compact().ok());
  check_stage("compacted");
  ASSERT_TRUE((*table)->Append(testing::MakeDyadicPoints(300, 0xA4)).ok());
  check_stage("compacted+hot");
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LiveEngineOracleTest,
    ::testing::Values(OracleConfig{1, 1, false, "serial"},
                      OracleConfig{1, 4, true, "sharded_store"},
                      OracleConfig{4, 4, true, "threaded_sharded_store"}),
    [](const ::testing::TestParamInfo<OracleConfig>& info) {
      return info.param.name;
    });

TEST(LiveEngineTest, EmptyLiveTableExecutes) {
  const std::string dir = FreshDir("empty");
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), nullptr, nullptr);
  ASSERT_TRUE(table.ok());
  const data::RegionSet regions = testing::MakeTessellationRegions(2, 1);
  LiveEngine live(table->get(), &regions, LiveEngineOptions());
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  std::uint64_t watermark = 99;
  StatusOr<core::QueryResult> result =
      live.Execute(query, core::ExecutionMethod::kScan, &watermark);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(watermark, 0u);
  ASSERT_EQ(result->size(), regions.size());
  for (std::size_t r = 0; r < result->size(); ++r) {
    EXPECT_EQ(result->counts[r], 0u);
  }
}

// Satellite regression: an answer over a fully-closed time range must stay
// a cache HIT across appends that only touch newer times; an append that
// overlaps the range must invalidate exactly that entry.
TEST(LiveEngineTest, ClosedTimeRangeStaysCachedAcrossDisjointAppends) {
  const std::string dir = FreshDir("cache_scope");
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), nullptr, nullptr);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append(MakeBatchInTime(400, 1, 0, 39999)).ok());

  const data::RegionSet regions = testing::MakeTessellationRegions(3, 2);
  LiveEngineOptions options;
  options.raster_options = SmallCanvas();
  options.cache_entries = 64;
  LiveEngine live(table->get(), &regions, options);

  const auto run_closed_range = [&]() -> core::QueryResult {
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Sum("v");
    query.filter.WithTime(0, 40000);
    StatusOr<core::QueryResult> result =
        live.Execute(query, core::ExecutionMethod::kIndexJoin);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : core::QueryResult();
  };

  const core::QueryResult first = run_closed_range();
  run_closed_range();
  const core::QueryCacheStats warm = live.result_cache_stats();
  EXPECT_GE(warm.hits, 1u) << "second identical query must hit";

  // Appends strictly above the queried range: the entry must survive.
  ASSERT_TRUE((*table)->Append(MakeBatchInTime(200, 2, 50000, 59999)).ok());
  const core::QueryResult after_disjoint = run_closed_range();
  const core::QueryCacheStats disjoint = live.result_cache_stats();
  EXPECT_EQ(disjoint.hits, warm.hits + 1)
      << "append above the closed range must not invalidate it";
  ExpectBitIdentical(after_disjoint, first, "closed range across append");

  // An overlapping append must invalidate it (the answer changed).
  ASSERT_TRUE((*table)->Append(MakeBatchInTime(200, 3, 30000, 34999)).ok());
  run_closed_range();
  const core::QueryCacheStats overlapped = live.result_cache_stats();
  EXPECT_EQ(overlapped.hits, disjoint.hits)
      << "append inside the closed range must invalidate the entry";
  EXPECT_GT(overlapped.misses, disjoint.misses);
}

// Flush re-orders rows (Morton); a cached float SUM over the flushed
// interval may no longer be bit-reproducible, so flush must invalidate.
// The post-flush answer must still be bit-identical to a rebuild.
TEST(LiveEngineTest, FlushInvalidatesButStaysRebuildIdentical) {
  const std::string dir = FreshDir("cache_flush");
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), nullptr, nullptr);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append(testing::MakeDyadicPoints(500, 4)).ok());

  const data::RegionSet regions = testing::MakeTessellationRegions(3, 5);
  LiveEngineOptions options;
  options.raster_options = SmallCanvas();
  options.cache_entries = 64;
  LiveEngine live(table->get(), &regions, options);

  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Sum("v");
  query.filter.WithTime(0, 86400);
  ASSERT_TRUE(live.Execute(query, core::ExecutionMethod::kScan).ok());

  ASSERT_TRUE((*table)->Flush().ok());
  core::AggregationQuery again;
  again.aggregate = core::AggregateSpec::Sum("v");
  again.filter.WithTime(0, 86400);
  StatusOr<core::QueryResult> live_result =
      live.Execute(again, core::ExecutionMethod::kScan);
  ASSERT_TRUE(live_result.ok());

  const LiveSnapshot snapshot = (*table)->Snapshot();
  const data::PointTable rebuilt_rows = ConcatSnapshot(snapshot);
  core::SpatialAggregation rebuilt(rebuilt_rows, regions, SmallCanvas());
  core::AggregationQuery rebuilt_query;
  rebuilt_query.aggregate = core::AggregateSpec::Sum("v");
  rebuilt_query.filter.WithTime(0, 86400);
  StatusOr<core::QueryResult> rebuilt_result =
      rebuilt.Execute(rebuilt_query, core::ExecutionMethod::kScan);
  ASSERT_TRUE(rebuilt_result.ok());
  ExpectBitIdentical(*live_result, *rebuilt_result, "post-flush sum");
}

// The incrementally-appended temporal canvas must answer exactly like a
// canvas built from scratch over the final data (same pinned layout).
TEST(LiveEngineTest, IncrementalTemporalCanvasMatchesRebuild) {
  const std::string dir = FreshDir("canvas");
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), nullptr, nullptr);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append(MakeBatchInTime(400, 6, 0, 29999)).ok());

  const data::RegionSet regions = testing::MakeTessellationRegions(3, 7);
  LiveEngineOptions options;
  options.canvas_options.time_domain =
      std::pair<std::int64_t, std::int64_t>{0, 86399};
  options.canvas_options.world = geometry::BoundingBox(0.0, 0.0, 100.0, 100.0);
  LiveEngine incremental(table->get(), &regions, options);

  // Build the canvas early, then grow the table through it.
  std::int64_t b0 = 0, b1 = 0;
  ASSERT_TRUE(incremental.BrushTimeWindow(0, 86399, &b0, &b1).ok());
  ASSERT_TRUE((*table)->Append(MakeBatchInTime(300, 8, 30000, 59999)).ok());
  ASSERT_TRUE((*table)->Append(MakeBatchInTime(300, 9, 60000, 86399)).ok());

  // A second engine first touches the canvas only now: a from-scratch
  // build over the full table with the identical pinned layout.
  LiveEngine fresh(table->get(), &regions, options);

  const std::vector<std::pair<std::int64_t, std::int64_t>> windows = {
      {0, 86399}, {15000, 45000}, {40000, 80000}};
  for (const auto& [t0, t1] : windows) {
    std::uint64_t inc_watermark = 0, fresh_watermark = 0;
    std::int64_t s0 = 0, s1 = 0;
    StatusOr<core::QueryResult> inc =
        incremental.BrushTimeWindow(t0, t1, &s0, &s1, &inc_watermark);
    StatusOr<core::QueryResult> scratch =
        fresh.BrushTimeWindow(t0, t1, nullptr, nullptr, &fresh_watermark);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    EXPECT_EQ(inc_watermark, fresh_watermark);
    EXPECT_EQ(inc_watermark, 1000u);
    EXPECT_LE(s0, t0);
    ExpectBitIdentical(*inc, *scratch,
                       "brush [" + std::to_string(t0) + "," +
                           std::to_string(t1) + ")");
  }
}

// Thread-safety smoke (the TSan gate runs this suite): queries race with
// appends and a flush; every answer must come from a consistent snapshot,
// so COUNT over the full tessellation must never exceed the watermark the
// engine reports for that answer.
TEST(LiveEngineTest, ConcurrentAppendsAndQueriesStaySane) {
  const std::string dir = FreshDir("concurrent");
  IngestOptions ingest_options;
  ingest_options.memtable_rows = 2048;
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), nullptr, nullptr, ingest_options);
  ASSERT_TRUE(table.ok());
  const data::RegionSet regions = testing::MakeTessellationRegions(2, 10);
  LiveEngineOptions options;
  options.raster_options = SmallCanvas();
  LiveEngine live(table->get(), &regions, options);

  std::thread writer([&] {
    for (int b = 0; b < 20; ++b) {
      StatusOr<std::uint64_t> watermark =
          (*table)->Append(testing::MakeDyadicPoints(100, 100 + b));
      ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
      if (b == 10) {
        ASSERT_TRUE((*table)->Flush().ok());
      }
    }
  });

  std::uint64_t last_watermark = 0;
  for (int i = 0; i < 30; ++i) {
    core::AggregationQuery query;
    query.aggregate = core::AggregateSpec::Count();
    std::uint64_t watermark = 0;
    StatusOr<core::QueryResult> result =
        live.Execute(query, core::ExecutionMethod::kScan, &watermark);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(watermark, last_watermark) << "watermark must be monotonic";
    last_watermark = watermark;
    std::uint64_t total = 0;
    for (std::uint64_t count : result->counts) total += count;
    EXPECT_LE(total, watermark);
  }
  writer.join();
  EXPECT_EQ((*table)->watermark(), 2000u);
}

}  // namespace
}  // namespace urbane::ingest
