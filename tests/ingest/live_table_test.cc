// LiveTable lifecycle tests: append visibility, seal/flush/compact
// transitions, backpressure, and — the part that matters most — crash
// recovery: any close or torn WAL tail must reopen to exactly the
// pre-crash visible state (ISSUE 10's replay acceptance criterion).
#include "ingest/live_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "data/point_table.h"
#include "data/schema.h"
#include "testing/test_worlds.h"
#include "util/csv.h"
#include "util/status.h"

namespace urbane::ingest {
namespace {

data::Schema VSchema() {
  return data::Schema(std::vector<std::string>{"v"});
}

// Fresh per-test directory under TempDir; wiped first so state left by a
// previous run of the binary cannot leak into recovery assertions.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/live_table_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<LiveTable> MustOpen(const std::string& dir,
                                    const IngestOptions& options,
                                    const data::PointTable* base = nullptr) {
  StatusOr<std::unique_ptr<LiveTable>> table =
      LiveTable::Open(dir, VSchema(), base, nullptr, options);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? std::move(*table) : nullptr;
}

using Row = std::tuple<float, float, std::int64_t, float>;

void CollectRows(const data::PointTable& table, std::vector<Row>* out) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    out->emplace_back(table.x(i), table.y(i), table.t(i),
                      table.attribute(i, 0));
  }
}

// The visible row multiset of a snapshot (base + runs + hot), sorted so
// Morton re-orders inside flushed runs do not matter.
std::vector<Row> VisibleRows(const LiveSnapshot& snapshot) {
  std::vector<Row> rows;
  if (snapshot.base != nullptr) CollectRows(*snapshot.base, &rows);
  for (const auto& run : snapshot.runs) CollectRows(run->table, &rows);
  CollectRows(snapshot.hot, &rows);
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<Row> SortedRows(const data::PointTable& table) {
  std::vector<Row> rows;
  CollectRows(table, &rows);
  std::sort(rows.begin(), rows.end());
  return rows;
}

void AppendInto(const data::PointTable& batch, data::PointTable* all) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(all->AppendRow(batch.x(i), batch.y(i), batch.t(i),
                               {batch.attribute(i, 0)})
                    .ok());
  }
}

TEST(LiveTableTest, AppendAdvancesWatermarkAndIsVisible) {
  auto table = MustOpen(FreshDir("append"), IngestOptions());
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->watermark(), 0u);

  const data::PointTable batch = testing::MakeDyadicPoints(50, 1);
  StatusOr<std::uint64_t> watermark = table->Append(batch);
  ASSERT_TRUE(watermark.ok()) << watermark.status().ToString();
  EXPECT_EQ(*watermark, 50u);

  const LiveSnapshot snapshot = table->Snapshot();
  EXPECT_EQ(snapshot.watermark, 50u);
  EXPECT_EQ(snapshot.hot_rows, 50u);
  EXPECT_TRUE(snapshot.runs.empty());
  EXPECT_EQ(VisibleRows(snapshot), SortedRows(batch));

  const IngestStats stats = table->stats();
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.rows_appended, 50u);
  EXPECT_GT(stats.wal_bytes, 16u);  // header + one record
}

TEST(LiveTableTest, ArityMismatchAndOversizeBatchesAreRejected) {
  IngestOptions options;
  options.memtable_rows = 16;
  auto table = MustOpen(FreshDir("reject"), options);
  ASSERT_NE(table, nullptr);

  data::PointTable two_attrs(data::Schema(std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(two_attrs.AppendRow(1.0f, 2.0f, 3, {4.0f, 5.0f}).ok());
  EXPECT_EQ(table->Append(two_attrs).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(table->Append(testing::MakeDyadicPoints(17, 2)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table->watermark(), 0u);
}

TEST(LiveTableTest, SealsAtCapacityIntoMemoryRun) {
  IngestOptions options;
  options.memtable_rows = 8;
  auto table = MustOpen(FreshDir("seal"), options);
  ASSERT_NE(table, nullptr);

  ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(6, 1)).ok());
  ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(6, 2)).ok());

  const LiveSnapshot snapshot = table->Snapshot();
  EXPECT_EQ(snapshot.watermark, 12u);
  ASSERT_EQ(snapshot.runs.size(), 1u);
  EXPECT_FALSE(snapshot.runs[0]->store_backed());
  EXPECT_EQ(snapshot.runs[0]->rows, 6u);
  EXPECT_EQ(snapshot.hot_rows, 6u);
  EXPECT_EQ(table->stats().sealed_runs, 1u);
  EXPECT_EQ(table->stats().store_runs, 0u);
}

TEST(LiveTableTest, BackpressureWhenSaturatedThenFlushUnblocks) {
  IngestOptions options;
  options.memtable_rows = 4;
  options.max_sealed_runs = 1;
  auto table = MustOpen(FreshDir("backpressure"), options);
  ASSERT_NE(table, nullptr);

  ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(4, 1)).ok());
  ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(4, 2)).ok());  // seals
  StatusOr<std::uint64_t> rejected =
      table->Append(testing::MakeDyadicPoints(4, 3));
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(table->stats().rejected, 1u);
  EXPECT_EQ(table->watermark(), 8u);

  ASSERT_TRUE(table->Flush().ok());
  StatusOr<std::uint64_t> after = table->Append(testing::MakeDyadicPoints(4, 3));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, 12u);
}

TEST(LiveTableTest, FlushProducesStoreRunsSameRows) {
  IngestOptions options;
  options.run_block_rows = 32;  // several blocks per run
  auto table = MustOpen(FreshDir("flush"), options);
  ASSERT_NE(table, nullptr);

  data::PointTable all(VSchema());
  const data::PointTable b1 = testing::MakeDyadicPoints(100, 1);
  const data::PointTable b2 = testing::MakeDyadicPoints(60, 2);
  AppendInto(b1, &all);
  AppendInto(b2, &all);
  ASSERT_TRUE(table->Append(b1).ok());
  ASSERT_TRUE(table->Append(b2).ok());
  ASSERT_TRUE(table->Flush().ok());

  const LiveSnapshot snapshot = table->Snapshot();
  EXPECT_EQ(snapshot.watermark, 160u);
  EXPECT_EQ(snapshot.hot_rows, 0u);
  ASSERT_EQ(snapshot.runs.size(), 1u);
  EXPECT_TRUE(snapshot.runs[0]->store_backed());
  EXPECT_NE(snapshot.runs[0]->zone_maps(), nullptr);
  EXPECT_EQ(VisibleRows(snapshot), SortedRows(all));  // Morton re-order only

  EXPECT_EQ(table->stats().store_runs, 1u);
  EXPECT_EQ(table->stats().flushes, 1u);
  EXPECT_TRUE(std::filesystem::exists(table->directory() + "/MANIFEST.json"));
}

TEST(LiveTableTest, ReopenReplaysWalToPreCrashState) {
  const std::string dir = FreshDir("recover_wal");
  data::PointTable all(VSchema());
  {
    IngestOptions options;
    options.memtable_rows = 64;
    auto table = MustOpen(dir, options);
    ASSERT_NE(table, nullptr);
    for (int b = 0; b < 3; ++b) {
      const data::PointTable batch = testing::MakeDyadicPoints(40, 10 + b);
      AppendInto(batch, &all);
      ASSERT_TRUE(table->Append(batch).ok());  // 40+40 seals, 40 hot
    }
    EXPECT_EQ(table->watermark(), 120u);
    // Destructor closes the WAL without flushing runs — recovery must
    // reconstruct sealed + hot rows purely from the segments.
  }
  auto reopened = MustOpen(dir, IngestOptions());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->watermark(), 120u);
  EXPECT_EQ(reopened->stats().replayed_rows, 120u);
  EXPECT_EQ(VisibleRows(reopened->Snapshot()), SortedRows(all));
}

TEST(LiveTableTest, ReopenAfterFlushKeepsRunsAndReplaysTail) {
  const std::string dir = FreshDir("recover_mixed");
  data::PointTable all(VSchema());
  {
    auto table = MustOpen(dir, IngestOptions());
    ASSERT_NE(table, nullptr);
    const data::PointTable flushed = testing::MakeDyadicPoints(80, 1);
    AppendInto(flushed, &all);
    ASSERT_TRUE(table->Append(flushed).ok());
    ASSERT_TRUE(table->Flush().ok());
    const data::PointTable tail = testing::MakeDyadicPoints(30, 2);
    AppendInto(tail, &all);
    ASSERT_TRUE(table->Append(tail).ok());
  }
  auto reopened = MustOpen(dir, IngestOptions());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->watermark(), 110u);
  EXPECT_EQ(reopened->stats().store_runs, 1u);
  EXPECT_EQ(reopened->stats().replayed_rows, 30u);
  EXPECT_EQ(VisibleRows(reopened->Snapshot()), SortedRows(all));
}

TEST(LiveTableTest, TornWalTailRecoversCommittedPrefix) {
  const std::string dir = FreshDir("torn_tail");
  data::PointTable committed(VSchema());
  {
    auto table = MustOpen(dir, IngestOptions());
    ASSERT_NE(table, nullptr);
    const data::PointTable b1 = testing::MakeDyadicPoints(25, 1);
    AppendInto(b1, &committed);
    ASSERT_TRUE(table->Append(b1).ok());
    ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(25, 2)).ok());
  }
  // Simulate a crash that tore the second record: chop bytes off the
  // segment's tail (record 2 becomes incomplete, record 1 stays intact).
  const std::string wal = dir + "/wal-000001.log";
  ASSERT_TRUE(std::filesystem::exists(wal));
  StatusOr<std::string> bytes = ReadFileToString(wal);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteStringToFile(bytes->substr(0, bytes->size() - 9), wal).ok());

  auto reopened = MustOpen(dir, IngestOptions());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->watermark(), 25u);
  EXPECT_EQ(reopened->stats().replayed_rows, 25u);
  EXPECT_EQ(VisibleRows(reopened->Snapshot()), SortedRows(committed));
}

TEST(LiveTableTest, OrphanRunFilesAreRemovedOnOpen) {
  const std::string dir = FreshDir("orphan");
  data::PointTable all(VSchema());
  {
    auto table = MustOpen(dir, IngestOptions());
    ASSERT_NE(table, nullptr);
    const data::PointTable batch = testing::MakeDyadicPoints(40, 1);
    AppendInto(batch, &all);
    ASSERT_TRUE(table->Append(batch).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  // A run file the manifest does not name: a flush that crashed between
  // writing the file and committing the manifest. Its rows are still in
  // the WAL, so recovery must delete it rather than double-count.
  const std::string orphan = dir + "/run-000099.ust1";
  ASSERT_TRUE(
      std::filesystem::copy_file(dir + "/run-000001.ust1", orphan));
  auto reopened = MustOpen(dir, IngestOptions());
  ASSERT_NE(reopened, nullptr);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_EQ(reopened->watermark(), 40u);
  EXPECT_EQ(VisibleRows(reopened->Snapshot()), SortedRows(all));
}

TEST(LiveTableTest, CompactMergesStoreRunsAndSurvivesReopen) {
  const std::string dir = FreshDir("compact");
  IngestOptions options;
  options.run_block_rows = 32;
  auto table = MustOpen(dir, options);
  ASSERT_NE(table, nullptr);

  data::PointTable all(VSchema());
  for (int b = 0; b < 2; ++b) {
    const data::PointTable batch = testing::MakeDyadicPoints(70, 20 + b);
    AppendInto(batch, &all);
    ASSERT_TRUE(table->Append(batch).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  EXPECT_EQ(table->stats().store_runs, 2u);

  ASSERT_TRUE(table->Compact().ok());
  EXPECT_EQ(table->stats().store_runs, 1u);
  EXPECT_EQ(table->stats().compactions, 1u);
  EXPECT_EQ(table->watermark(), 140u);
  EXPECT_EQ(VisibleRows(table->Snapshot()), SortedRows(all));

  table.reset();
  auto reopened = MustOpen(dir, IngestOptions());
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->stats().store_runs, 1u);
  EXPECT_EQ(reopened->watermark(), 140u);
  EXPECT_EQ(VisibleRows(reopened->Snapshot()), SortedRows(all));
}

TEST(LiveTableTest, SnapshotIsImmutableAcrossLaterAppends) {
  auto table = MustOpen(FreshDir("snapshot"), IngestOptions());
  ASSERT_NE(table, nullptr);
  const data::PointTable b1 = testing::MakeDyadicPoints(30, 1);
  ASSERT_TRUE(table->Append(b1).ok());

  const LiveSnapshot before = table->Snapshot();
  ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(30, 2)).ok());
  ASSERT_TRUE(table->Flush().ok());

  EXPECT_EQ(before.watermark, 30u);
  EXPECT_EQ(before.hot.size(), 30u);
  EXPECT_EQ(VisibleRows(before), SortedRows(b1));
  EXPECT_EQ(table->Snapshot().watermark, 60u);
}

TEST(LiveTableTest, BaseTableRowsCountTowardTheWatermark) {
  const data::PointTable base = testing::MakeDyadicPoints(20, 7);
  auto table = MustOpen(FreshDir("base"), IngestOptions(), &base);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->watermark(), 20u);
  ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(5, 8)).ok());
  EXPECT_EQ(table->watermark(), 25u);
  const LiveSnapshot snapshot = table->Snapshot();
  ASSERT_NE(snapshot.base, nullptr);
  EXPECT_EQ(snapshot.base->size(), 20u);
}

TEST(LiveTableTest, AppendLogOverflowIsReported) {
  IngestOptions options;
  options.append_log_entries = 2;
  auto table = MustOpen(FreshDir("append_log"), options);
  ASSERT_NE(table, nullptr);
  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(table->Append(testing::MakeDyadicPoints(3, b + 1)).ok());
  }
  bool overflowed = false;
  std::vector<AppendLogEntry> entries = table->EntriesSince(0, &overflowed);
  EXPECT_TRUE(overflowed);
  EXPECT_EQ(entries.size(), 2u);

  entries = table->EntriesSince(2, &overflowed);
  EXPECT_FALSE(overflowed);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].seq, 3u);
  EXPECT_EQ(entries[1].seq, 4u);
  ASSERT_NE(entries[0].rows, nullptr);
  EXPECT_EQ(entries[0].rows->size(), 3u);
  EXPECT_LT(entries[0].t_begin, entries[0].t_end);
}

}  // namespace
}  // namespace urbane::ingest
