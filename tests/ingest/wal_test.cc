// Corruption corpus for the ingest WAL (satellite of the streaming-ingest
// PR, mirroring the store truncation sweep): a segment damaged at EVERY
// byte boundary — truncated tails, single bit flips, a duplicated record —
// must replay to a clean committed prefix, never to a crash or garbage
// rows. These run under ASan/UBSan via the `sanitizer` ctest label.
#include "ingest/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "data/point_table.h"
#include "data/schema.h"
#include "testing/test_worlds.h"
#include "util/csv.h"
#include "util/status.h"

namespace urbane::ingest {
namespace {

// File layout constants (see wal.h): 8B magic + u32 version + u32 arity.
constexpr std::size_t kHeaderBytes = 16;

data::Schema TestSchema() {
  return data::Schema(std::vector<std::string>{"v"});
}

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/wal_test_" + name + ".log";
}

std::string ReadAll(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  ASSERT_TRUE(WriteStringToFile(bytes, path).ok());
}

struct Segment {
  std::string bytes;
  data::PointTable rows{TestSchema()};      // all rows, append order
  std::vector<std::uint64_t> record_ends;   // file offset after record i
};

// Writes `records` records of `rows_per_record` dyadic rows each and
// returns the file image plus the ground-truth row stream.
Segment WriteSegment(const std::string& path, std::size_t records,
                     std::size_t rows_per_record) {
  Segment out;
  StatusOr<WalWriter> writer = WalWriter::Create(path, 1);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (std::size_t r = 0; r < records; ++r) {
    data::PointTable batch =
        testing::MakeDyadicPoints(rows_per_record, /*seed=*/1000 + r);
    EXPECT_TRUE(writer->Append(batch, r + 1).ok());
    out.record_ends.push_back(writer->bytes());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(out.rows
                      .AppendRow(batch.x(i), batch.y(i), batch.t(i),
                                 {batch.attribute(i, 0)})
                      .ok());
    }
  }
  EXPECT_TRUE(writer->Close().ok());
  out.bytes = ReadAll(path);
  if (!out.record_ends.empty()) {
    EXPECT_EQ(out.bytes.size(), out.record_ends.back());
  }
  return out;
}

// The replayed table must equal the first `rows` rows of the ground truth,
// column for column, bit for bit.
void ExpectPrefix(const data::PointTable& truth, const data::PointTable& got,
                  std::size_t rows) {
  ASSERT_EQ(got.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_EQ(got.x(i), truth.x(i)) << "row " << i;
    EXPECT_EQ(got.y(i), truth.y(i)) << "row " << i;
    EXPECT_EQ(got.t(i), truth.t(i)) << "row " << i;
    EXPECT_EQ(got.attribute(i, 0), truth.attribute(i, 0)) << "row " << i;
  }
}

// How many records a prefix of `length` bytes fully contains.
std::size_t CommittedRecords(const Segment& segment, std::size_t length) {
  std::size_t committed = 0;
  for (std::uint64_t end : segment.record_ends) {
    if (end <= length) ++committed;
  }
  return committed;
}

TEST(WalTest, RoundTrip) {
  const std::string path = TestPath("round_trip");
  Segment segment = WriteSegment(path, 3, 17);
  StatusOr<WalReplayResult> replay = ReplayWal(path, TestSchema(), false);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 3u);
  EXPECT_EQ(replay->last_sequence, 3u);
  EXPECT_EQ(replay->valid_bytes, segment.bytes.size());
  EXPECT_FALSE(replay->tail_dropped);
  ExpectPrefix(segment.rows, replay->rows, 3 * 17);
}

TEST(WalTest, EmptySegmentReplaysToNothing) {
  const std::string path = TestPath("empty");
  StatusOr<WalWriter> writer = WalWriter::Create(path, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  StatusOr<WalReplayResult> replay = ReplayWal(path, TestSchema(), false);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 0u);
  EXPECT_EQ(replay->last_sequence, 0u);
  EXPECT_EQ(replay->valid_bytes, kHeaderBytes);
  EXPECT_FALSE(replay->tail_dropped);
}

// Crash shape #1: the tail is torn at an arbitrary byte. Sweep EVERY
// prefix length — which necessarily hits every field boundary of every
// record — and require the committed prefix back, with the tail flagged.
TEST(WalTest, TruncationAtEveryByteBoundary) {
  const std::string path = TestPath("truncate_master");
  Segment segment = WriteSegment(path, 2, 5);
  const std::string damaged = TestPath("truncate_damaged");
  for (std::size_t keep = 0; keep < segment.bytes.size(); ++keep) {
    WriteAll(damaged, segment.bytes.substr(0, keep));
    StatusOr<WalReplayResult> replay = ReplayWal(damaged, TestSchema(), false);
    if (keep < kHeaderBytes) {
      // The header itself is gone: that is a damaged store, not a torn log.
      EXPECT_FALSE(replay.ok()) << "keep=" << keep;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "keep=" << keep << ": "
                             << replay.status().ToString();
    const std::size_t committed = CommittedRecords(segment, keep);
    EXPECT_EQ(replay->records, committed) << "keep=" << keep;
    EXPECT_EQ(replay->last_sequence, committed) << "keep=" << keep;
    EXPECT_EQ(replay->valid_bytes,
              committed == 0 ? kHeaderBytes : segment.record_ends[committed - 1])
        << "keep=" << keep;
    EXPECT_EQ(replay->tail_dropped, keep > replay->valid_bytes)
        << "keep=" << keep;
    ExpectPrefix(segment.rows, replay->rows, committed * 5);
  }
}

// Crash shape #2: a bit flip anywhere in the file. CRC32 detects every
// single-bit error, so a flip inside a record must stop replay at or
// before that record; a flip in the header must fail Open-style.
TEST(WalTest, BitFlipAtEveryByte) {
  const std::string path = TestPath("bitflip_master");
  Segment segment = WriteSegment(path, 2, 5);
  const std::string damaged = TestPath("bitflip_damaged");
  for (std::size_t at = 0; at < segment.bytes.size(); ++at) {
    std::string bytes = segment.bytes;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x10);
    WriteAll(damaged, bytes);
    StatusOr<WalReplayResult> replay = ReplayWal(damaged, TestSchema(), false);
    if (at < kHeaderBytes) {
      EXPECT_FALSE(replay.ok()) << "at=" << at;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "at=" << at << ": "
                             << replay.status().ToString();
    // Records strictly before the flipped byte are intact; the record
    // holding the flip (and everything after) must be dropped.
    const std::size_t intact = CommittedRecords(segment, at);
    EXPECT_EQ(replay->records, intact) << "at=" << at;
    EXPECT_TRUE(replay->tail_dropped) << "at=" << at;
    ExpectPrefix(segment.rows, replay->rows, intact * 5);
  }
}

// Crash shape #3: a record duplicated at the tail (a retried write that
// landed twice). The duplicate's sequence is stale, so replay must stop
// cleanly before it rather than double-count rows.
TEST(WalTest, DuplicatedRecordAtTail) {
  const std::string path = TestPath("duplicate");
  Segment segment = WriteSegment(path, 2, 5);
  const std::uint64_t first_end = segment.record_ends[0];
  const std::string first_record =
      segment.bytes.substr(kHeaderBytes, first_end - kHeaderBytes);
  WriteAll(path, segment.bytes + first_record);
  StatusOr<WalReplayResult> replay = ReplayWal(path, TestSchema(), false);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 2u);
  EXPECT_EQ(replay->last_sequence, 2u);
  EXPECT_EQ(replay->valid_bytes, segment.bytes.size());
  EXPECT_TRUE(replay->tail_dropped);
  ExpectPrefix(segment.rows, replay->rows, 2 * 5);
}

// truncate_invalid_tail repairs the file in place: a second replay of the
// repaired segment sees a clean log (no tail), same committed rows.
TEST(WalTest, TruncateInvalidTailRepairsFile) {
  const std::string path = TestPath("repair");
  Segment segment = WriteSegment(path, 3, 4);
  // Tear mid-way through the last record.
  WriteAll(path, segment.bytes.substr(0, segment.record_ends[2] - 7));
  StatusOr<WalReplayResult> replay = ReplayWal(path, TestSchema(), true);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 2u);
  EXPECT_TRUE(replay->tail_dropped);
  EXPECT_EQ(ReadAll(path).size(), replay->valid_bytes);

  StatusOr<WalReplayResult> again = ReplayWal(path, TestSchema(), false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records, 2u);
  EXPECT_FALSE(again->tail_dropped);
  ExpectPrefix(segment.rows, again->rows, 2 * 4);
}

TEST(WalTest, WrongArityIsRejected) {
  const std::string path = TestPath("arity");
  WriteSegment(path, 1, 4);
  data::Schema two(std::vector<std::string>{"a", "b"});
  EXPECT_FALSE(ReplayWal(path, two, false).ok());
}

TEST(WalTest, MissingFileIsAnError) {
  EXPECT_FALSE(ReplayWal(TestPath("nope"), TestSchema(), false).ok());
}

TEST(WalTest, Crc32KnownAnswer) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace urbane::ingest
