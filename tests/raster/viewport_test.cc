#include "raster/viewport.h"

#include <gtest/gtest.h>

namespace urbane::raster {
namespace {

using geometry::BoundingBox;
using geometry::Vec2;

TEST(ViewportTest, PixelSizesFromWorldAndResolution) {
  const Viewport vp(BoundingBox(0, 0, 100, 50), 200, 100);
  EXPECT_DOUBLE_EQ(vp.pixel_width(), 0.5);
  EXPECT_DOUBLE_EQ(vp.pixel_height(), 0.5);
  EXPECT_NEAR(vp.EpsilonWorld(), 0.5 * std::sqrt(2.0), 1e-12);
}

TEST(ViewportTest, WithSquarePixelsPreservesAspect) {
  const Viewport vp =
      Viewport::WithSquarePixels(BoundingBox(0, 0, 200, 100), 400);
  EXPECT_EQ(vp.width(), 400);
  EXPECT_EQ(vp.height(), 200);
  EXPECT_NEAR(vp.pixel_width(), vp.pixel_height(), 1e-9);
}

TEST(ViewportTest, PixelCenterIsCellMidpoint) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  const Vec2 c = vp.PixelCenter(0, 0);
  EXPECT_DOUBLE_EQ(c.x, 0.5);
  EXPECT_DOUBLE_EQ(c.y, 0.5);
  const Vec2 c2 = vp.PixelCenter(9, 9);
  EXPECT_DOUBLE_EQ(c2.x, 9.5);
  EXPECT_DOUBLE_EQ(c2.y, 9.5);
}

TEST(ViewportTest, PixelCellBounds) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  const BoundingBox cell = vp.PixelCell(3, 7);
  EXPECT_EQ(cell, BoundingBox(3, 7, 4, 8));
}

TEST(ViewportTest, PixelForPointBasics) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  int ix;
  int iy;
  ASSERT_TRUE(vp.PixelForPoint({2.5, 7.5}, ix, iy));
  EXPECT_EQ(ix, 2);
  EXPECT_EQ(iy, 7);
}

TEST(ViewportTest, PointOnMaxEdgeFoldsIntoLastPixel) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  int ix;
  int iy;
  ASSERT_TRUE(vp.PixelForPoint({10.0, 10.0}, ix, iy));
  EXPECT_EQ(ix, 9);
  EXPECT_EQ(iy, 9);
}

TEST(ViewportTest, PointOutsideRejected) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  int ix;
  int iy;
  EXPECT_FALSE(vp.PixelForPoint({10.001, 5.0}, ix, iy));
  EXPECT_FALSE(vp.PixelForPoint({5.0, -0.001}, ix, iy));
}

TEST(ViewportTest, WorldToPixelContinuous) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 20, 20);
  EXPECT_DOUBLE_EQ(vp.WorldToPixelX(0.0), 0.0);
  EXPECT_DOUBLE_EQ(vp.WorldToPixelX(10.0), 20.0);
  EXPECT_DOUBLE_EQ(vp.WorldToPixelY(5.0), 10.0);
}

TEST(ViewportTest, ClampPixel) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  EXPECT_EQ(vp.ClampPixelX(-2.5), 0);
  EXPECT_EQ(vp.ClampPixelX(4.7), 4);
  EXPECT_EQ(vp.ClampPixelX(99.0), 9);
  EXPECT_EQ(vp.ClampPixelY(10.0), 9);
}

TEST(ViewportTest, EpsilonShrinksWithResolution) {
  const BoundingBox world(0, 0, 100, 100);
  const Viewport coarse(world, 64, 64);
  const Viewport fine(world, 1024, 1024);
  EXPECT_GT(coarse.EpsilonWorld(), fine.EpsilonWorld());
  EXPECT_NEAR(coarse.EpsilonWorld() / fine.EpsilonWorld(), 16.0, 1e-9);
}

}  // namespace
}  // namespace urbane::raster
