#include "raster/image.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/csv.h"

namespace urbane::raster {
namespace {

TEST(WritePpmTest, ProducesValidHeaderAndSize) {
  Image image(4, 2, Rgb{10, 20, 30});
  const std::string path = ::testing::TempDir() + "/image_test.ppm";
  ASSERT_TRUE(WritePpm(image, path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->substr(0, 2), "P6");
  // Header "P6\n4 2\n255\n" + 4*2*3 bytes.
  EXPECT_EQ(content->size(), std::string("P6\n4 2\n255\n").size() + 24);
  std::remove(path.c_str());
}

TEST(WritePpmTest, RowsAreFlipped) {
  Image image(1, 2);
  image.at(0, 0) = Rgb{1, 1, 1};    // bottom row
  image.at(0, 1) = Rgb{255, 0, 0};  // top row
  const std::string path = ::testing::TempDir() + "/image_flip_test.ppm";
  ASSERT_TRUE(WritePpm(image, path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  const std::size_t header = std::string("P6\n1 2\n255\n").size();
  // First written pixel must be the TOP row (red).
  EXPECT_EQ(static_cast<unsigned char>((*content)[header]), 255);
  std::remove(path.c_str());
}

TEST(WritePgmTest, WritesGrayscale) {
  Buffer2D<std::uint8_t> gray(3, 3, 128);
  const std::string path = ::testing::TempDir() + "/image_test.pgm";
  ASSERT_TRUE(WritePgm(gray, path).ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->substr(0, 2), "P5");
  std::remove(path.c_str());
}

TEST(WritePpmTest, BadPathFails) {
  Image image(1, 1);
  EXPECT_FALSE(WritePpm(image, "/nonexistent_dir_xyz/out.ppm").ok());
}

TEST(ColormapBufferTest, AutoScalesToMinMax) {
  Buffer2D<float> values(2, 1);
  values.at(0, 0) = 0.0f;
  values.at(1, 0) = 10.0f;
  const Colormap cm = Colormap::Make(ColormapKind::kGrayscale);
  const Image image = ColormapBuffer(values, cm);
  EXPECT_EQ(image.at(0, 0), cm.Map(0.0));
  EXPECT_EQ(image.at(1, 0), cm.Map(1.0));
}

TEST(ColormapBufferTest, ExplicitRange) {
  Buffer2D<float> values(1, 1);
  values.at(0, 0) = 5.0f;
  const Colormap cm = Colormap::Make(ColormapKind::kGrayscale);
  const Image image = ColormapBuffer(values, cm, 0.0, 10.0);
  EXPECT_EQ(image.at(0, 0), cm.Map(0.5));
}

TEST(ColormapBufferTest, ConstantBufferDoesNotCrash) {
  Buffer2D<float> values(3, 3, 4.0f);
  const Image image =
      ColormapBuffer(values, Colormap::Make(ColormapKind::kViridis));
  EXPECT_EQ(image.width(), 3);
}

TEST(ColormapCountsTest, LogScaleCompressesRange) {
  Buffer2D<std::uint32_t> counts(3, 1, 0);
  counts.at(0, 0) = 0;
  counts.at(1, 0) = 10;
  counts.at(2, 0) = 1000;
  const Colormap cm = Colormap::Make(ColormapKind::kGrayscale);
  const Image log_img = ColormapCounts(counts, cm, /*log_scale=*/true);
  const Image lin_img = ColormapCounts(counts, cm, /*log_scale=*/false);
  // With log scaling, the mid pixel is visibly brighter than with linear.
  EXPECT_GT(log_img.at(1, 0).r, lin_img.at(1, 0).r);
}

}  // namespace
}  // namespace urbane::raster
