#include "raster/buffer.h"

#include <gtest/gtest.h>

namespace urbane::raster {
namespace {

TEST(Buffer2DTest, ConstructionAndFillValue) {
  Buffer2D<int> buf(4, 3, 7);
  EXPECT_EQ(buf.width(), 4);
  EXPECT_EQ(buf.height(), 3);
  EXPECT_EQ(buf.size(), 12u);
  EXPECT_EQ(buf.at(3, 2), 7);
}

TEST(Buffer2DTest, DefaultIsEmpty) {
  Buffer2D<float> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Buffer2DTest, AtIsRowMajor) {
  Buffer2D<int> buf(3, 2, 0);
  buf.at(2, 1) = 42;
  EXPECT_EQ(buf.data()[1 * 3 + 2], 42);
  EXPECT_EQ(buf.Row(1)[2], 42);
}

TEST(Buffer2DTest, FillOverwrites) {
  Buffer2D<int> buf(2, 2, 1);
  buf.Fill(9);
  for (const int v : buf.data()) {
    EXPECT_EQ(v, 9);
  }
}

TEST(Buffer2DTest, InBounds) {
  Buffer2D<int> buf(2, 2);
  EXPECT_TRUE(buf.InBounds(0, 0));
  EXPECT_TRUE(buf.InBounds(1, 1));
  EXPECT_FALSE(buf.InBounds(2, 0));
  EXPECT_FALSE(buf.InBounds(0, -1));
}

TEST(Buffer2DTest, MemoryBytesScalesWithSize) {
  Buffer2D<double> buf(10, 10);
  EXPECT_GE(buf.MemoryBytes(), 100 * sizeof(double));
}

TEST(ApplyBlendTest, AddAccumulates) {
  int dst = 3;
  ApplyBlend(BlendOp::kAdd, dst, 4);
  EXPECT_EQ(dst, 7);
}

TEST(ApplyBlendTest, MinMaxKeepExtremes) {
  float dst = 5.0f;
  ApplyBlend(BlendOp::kMin, dst, 7.0f);
  EXPECT_EQ(dst, 5.0f);
  ApplyBlend(BlendOp::kMin, dst, 2.0f);
  EXPECT_EQ(dst, 2.0f);
  ApplyBlend(BlendOp::kMax, dst, 9.0f);
  EXPECT_EQ(dst, 9.0f);
  ApplyBlend(BlendOp::kMax, dst, 1.0f);
  EXPECT_EQ(dst, 9.0f);
}

TEST(ApplyBlendTest, ReplaceOverwrites) {
  int dst = 1;
  ApplyBlend(BlendOp::kReplace, dst, 8);
  EXPECT_EQ(dst, 8);
}

TEST(ApplyBlendTest, MinMaxIdempotent) {
  float dst = 4.0f;
  ApplyBlend(BlendOp::kMin, dst, 4.0f);
  ApplyBlend(BlendOp::kMin, dst, 4.0f);
  EXPECT_EQ(dst, 4.0f);
  ApplyBlend(BlendOp::kMax, dst, 4.0f);
  EXPECT_EQ(dst, 4.0f);
}

}  // namespace
}  // namespace urbane::raster
