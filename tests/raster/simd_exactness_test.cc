// Pixel-exactness fuzz suite for the tiled SIMD rasterizer substrate.
//
// The substrate's contract is bit-identity, not approximation: every kernel
// table (scalar/SSE2/AVX2) computes the same function, the tiled triangle
// walk emits the same pixel set as the double-precision oracle on lattice
// inputs, and a Morton-ordered splat reproduces the row-ordered splat's
// per-pixel values bit for bit. These tests fuzz each claim directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "geometry/triangulate.h"
#include "raster/buffer.h"
#include "raster/kernels.h"
#include "raster/morton.h"
#include "raster/point_splat.h"
#include "raster/rasterizer.h"
#include "raster/simd.h"
#include "raster/tile_raster.h"
#include "raster/viewport.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace urbane::raster {
namespace {

/// Every kernel table this CPU can run, scalar first.
std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kOff};
  const int max = static_cast<int>(CpuMaxSimdLevel());
  if (max >= static_cast<int>(SimdLevel::kSse2)) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (max >= static_cast<int>(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

/// Canvas whose world->pixel map is the identity (pixel_w == pixel_h == 1),
/// so world coordinates of the form k/65536 land exactly on the snap
/// lattice and the double oracle is exact.
Viewport LatticeCanvas(int width, int height) {
  return Viewport(geometry::BoundingBox(0.0, 0.0, width, height), width,
                  height);
}

double LatticeCoord(Rng& rng, int lo, int hi) {
  const std::int64_t sub =
      static_cast<std::int64_t>(rng.NextUint64(
          static_cast<std::uint64_t>(hi - lo) * 65536)) +
      static_cast<std::int64_t>(lo) * 65536;
  return static_cast<double>(sub) / 65536.0;
}

geometry::Triangle RandomLatticeTriangle(Rng& rng, int size) {
  const int margin = size / 4;
  geometry::Triangle tri;
  tri.a = {LatticeCoord(rng, -margin, size + margin),
           LatticeCoord(rng, -margin, size + margin)};
  tri.b = {LatticeCoord(rng, -margin, size + margin),
           LatticeCoord(rng, -margin, size + margin)};
  tri.c = {LatticeCoord(rng, -margin, size + margin),
           LatticeCoord(rng, -margin, size + margin)};
  return tri;
}

std::uint64_t PixelKey(int x, int y) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) << 32) |
         static_cast<std::uint32_t>(x);
}

std::vector<std::uint64_t> OraclePixels(const Viewport& vp,
                                        const geometry::Triangle& tri) {
  std::vector<std::uint64_t> pixels;
  RasterizeTriangle(vp, tri,
                    [&](int x, int y) { pixels.push_back(PixelKey(x, y)); });
  std::sort(pixels.begin(), pixels.end());
  return pixels;
}

std::vector<std::uint64_t> TiledPixels(const Viewport& vp,
                                       const geometry::Triangle& tri,
                                       SimdLevel level) {
  std::vector<std::uint64_t> pixels;
  TiledRasterizeTriangle(vp, tri, KernelsForLevel(level),
                         [&](int y, int x_begin, int x_end) {
                           for (int x = x_begin; x < x_end; ++x) {
                             pixels.push_back(PixelKey(x, y));
                           }
                         });
  std::sort(pixels.begin(), pixels.end());
  return pixels;
}

// ---------------------------------------------------------------------------
// Kernel tables agree bit-for-bit on random inputs.
// ---------------------------------------------------------------------------

TEST(SimdKernels, PixelIndicesAgreeAcrossLevels) {
  const Viewport vp = LatticeCanvas(128, 96);
  const SplatGeometry geom = SplatGeometry::From(vp);
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.NextUint64(257);
    std::vector<float> xs(n);
    std::vector<float> ys(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mostly inside, some outside, occasional NaN.
      xs[i] = static_cast<float>(rng.NextDouble(-20.0, 150.0));
      ys[i] = static_cast<float>(rng.NextDouble(-20.0, 120.0));
      if (rng.NextUint64(37) == 0) {
        xs[i] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    std::vector<std::uint32_t> reference(n);
    const std::size_t ref_hits =
        kScalarRasterKernels.compute_pixel_indices(geom, xs.data(), ys.data(),
                                                   n, reference.data());
    // The scalar kernel must agree with Viewport::PixelForPoint itself.
    for (std::size_t i = 0; i < n; ++i) {
      int ix;
      int iy;
      if (vp.PixelForPoint({xs[i], ys[i]}, ix, iy)) {
        ASSERT_EQ(reference[i],
                  static_cast<std::uint32_t>(iy) * vp.width() + ix);
      } else {
        ASSERT_EQ(reference[i], kInvalidPixel);
      }
    }
    for (const SimdLevel level : AvailableLevels()) {
      std::vector<std::uint32_t> out(n, 0xDEADBEEF);
      const std::size_t hits = KernelsForLevel(level).compute_pixel_indices(
          geom, xs.data(), ys.data(), n, out.data());
      EXPECT_EQ(hits, ref_hits) << SimdLevelName(level);
      EXPECT_EQ(out, reference) << SimdLevelName(level);
    }
  }
}

TEST(SimdKernels, SpanSumAndGatherAgreeAcrossLevels) {
  Rng rng(0xBADF00D);
  for (int round = 0; round < 80; ++round) {
    const std::size_t n = rng.NextUint64(300);
    std::vector<std::uint32_t> values(n);
    for (std::uint32_t& v : values) {
      // Heavy zero bias, plus occasional huge values to stress the u64 sum.
      const std::uint64_t roll = rng.NextUint64(10);
      v = roll < 6 ? 0
                   : (roll == 9 ? 0xFFFF0000u + static_cast<std::uint32_t>(
                                                    rng.NextUint64(65536))
                                : static_cast<std::uint32_t>(
                                      rng.NextUint64(100)));
    }
    const std::uint64_t ref_sum =
        kScalarRasterKernels.sum_span_u32(values.data(), n);
    std::vector<std::uint32_t> ref_gather(n);
    const std::size_t ref_hits = kScalarRasterKernels.gather_nonzero_u32(
        values.data(), n, ref_gather.data());
    ref_gather.resize(ref_hits);
    for (const SimdLevel level : AvailableLevels()) {
      const RasterKernels& kernels = KernelsForLevel(level);
      EXPECT_EQ(kernels.sum_span_u32(values.data(), n), ref_sum)
          << SimdLevelName(level);
      std::vector<std::uint32_t> gather(n);
      const std::size_t hits =
          kernels.gather_nonzero_u32(values.data(), n, gather.data());
      gather.resize(hits);
      EXPECT_EQ(gather, ref_gather) << SimdLevelName(level);
    }
  }
}

TEST(SimdKernels, CoverageMasksAgreeAcrossLevels) {
  Rng rng(0x5EED);
  for (int round = 0; round < 400; ++round) {
    EdgeRowSetup row;
    for (int k = 0; k < 3; ++k) {
      row.e[k] = static_cast<std::int64_t>(rng.NextUint64()) >> 20;
      row.dx[k] = static_cast<std::int64_t>(rng.NextUint64()) >> 28;
    }
    const int n = 1 + static_cast<int>(rng.NextUint64(64));
    const std::uint64_t reference =
        kScalarRasterKernels.edge_coverage_mask(row, n);
    for (const SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(KernelsForLevel(level).edge_coverage_mask(row, n), reference)
          << SimdLevelName(level) << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Tiled triangle walk == double-precision oracle on lattice inputs.
// ---------------------------------------------------------------------------

TEST(TiledRasterizer, RandomLatticeTrianglesMatchOracle) {
  const Viewport vp = LatticeCanvas(128, 128);
  Rng rng(0xF1E1D);
  for (int round = 0; round < 200; ++round) {
    const geometry::Triangle tri = RandomLatticeTriangle(rng, 128);
    const std::vector<std::uint64_t> oracle = OraclePixels(vp, tri);
    for (const SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(TiledPixels(vp, tri, level), oracle)
          << SimdLevelName(level) << " round=" << round;
    }
  }
}

TEST(TiledRasterizer, SliverTrianglesMatchOracle) {
  const Viewport vp = LatticeCanvas(128, 128);
  Rng rng(0x511FE2);
  for (int round = 0; round < 200; ++round) {
    // Nearly-degenerate: a long thin wedge whose apex offset is a handful
    // of subpixel steps, the regime where incremental-evaluation drift
    // would flip pixels.
    geometry::Triangle tri;
    tri.a = {LatticeCoord(rng, 0, 128), LatticeCoord(rng, 0, 128)};
    const double len = rng.NextDouble(10.0, 100.0);
    const std::int64_t thin = 1 + static_cast<std::int64_t>(rng.NextUint64(64));
    tri.b = {tri.a.x + std::floor(len * 65536.0) / 65536.0,
             tri.a.y + static_cast<double>(thin) / 65536.0};
    tri.c = {tri.a.x + std::floor(len * 0.5 * 65536.0) / 65536.0, tri.a.y};
    const std::vector<std::uint64_t> oracle = OraclePixels(vp, tri);
    for (const SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(TiledPixels(vp, tri, level), oracle)
          << SimdLevelName(level) << " round=" << round;
    }
  }
}

TEST(TiledRasterizer, SharedEdgePairsCoverEachPixelOnce) {
  const Viewport vp = LatticeCanvas(128, 128);
  Rng rng(0xED6E);
  for (int round = 0; round < 200; ++round) {
    // Two triangles sharing edge (p, q): every pixel near the shared edge
    // must land in exactly one of them (the half-open tie rule), at every
    // SIMD level, exactly as in the oracle.
    const geometry::Vec2 p = {LatticeCoord(rng, 10, 118),
                              LatticeCoord(rng, 10, 118)};
    const geometry::Vec2 q = {LatticeCoord(rng, 10, 118),
                              LatticeCoord(rng, 10, 118)};
    const geometry::Vec2 r1 = {LatticeCoord(rng, 0, 128),
                               LatticeCoord(rng, 0, 128)};
    const geometry::Vec2 r2 = {p.x + q.x - r1.x, p.y + q.y - r1.y};
    const geometry::Triangle t1 = {p, q, r1};
    const geometry::Triangle t2 = {q, p, r2};

    std::vector<std::uint64_t> oracle = OraclePixels(vp, t1);
    const std::vector<std::uint64_t> oracle2 = OraclePixels(vp, t2);
    oracle.insert(oracle.end(), oracle2.begin(), oracle2.end());
    std::sort(oracle.begin(), oracle.end());
    // The oracle itself must not double-cover along the shared edge.
    ASSERT_TRUE(std::adjacent_find(oracle.begin(), oracle.end()) ==
                oracle.end())
        << "oracle double-covered a pixel, round=" << round;

    for (const SimdLevel level : AvailableLevels()) {
      std::vector<std::uint64_t> tiled = TiledPixels(vp, t1, level);
      const std::vector<std::uint64_t> tiled2 = TiledPixels(vp, t2, level);
      tiled.insert(tiled.end(), tiled2.begin(), tiled2.end());
      std::sort(tiled.begin(), tiled.end());
      EXPECT_EQ(tiled, oracle) << SimdLevelName(level) << " round=" << round;
    }
  }
}

TEST(TiledRasterizer, PolygonWithHoleMatchesTriangleOracle) {
  const Viewport vp = LatticeCanvas(128, 128);
  geometry::Ring outer = {{8, 8}, {120, 8}, {120, 120}, {8, 120}};
  geometry::Ring hole = {{40, 40}, {40, 88}, {88, 88}, {88, 40}};
  const geometry::Polygon polygon(outer, {hole});

  std::vector<std::uint64_t> oracle;
  ASSERT_TRUE(RasterizePolygonTriangles(vp, polygon, [&](int x, int y) {
    oracle.push_back(PixelKey(x, y));
  }));
  std::sort(oracle.begin(), oracle.end());
  ASSERT_FALSE(oracle.empty());
  // No pixel of the hole interior may be covered.
  EXPECT_TRUE(std::find(oracle.begin(), oracle.end(), PixelKey(64, 64)) ==
              oracle.end());

  for (const SimdLevel level : AvailableLevels()) {
    std::vector<std::uint64_t> tiled;
    ASSERT_TRUE(TiledRasterizePolygonTriangles(
        vp, polygon, KernelsForLevel(level), [&](int y, int xb, int xe) {
          for (int x = xb; x < xe; ++x) tiled.push_back(PixelKey(x, y));
        }));
    std::sort(tiled.begin(), tiled.end());
    EXPECT_EQ(tiled, oracle) << SimdLevelName(level);
  }
}

TEST(TiledRasterizer, LevelsAgreeOnArbitraryNonLatticeInputs) {
  // Off the lattice the snapped pixel set may differ from the double
  // oracle, but it must still be identical at every SIMD level — the
  // emitted spans depend only on the snapped geometry.
  const Viewport vp =
      Viewport(geometry::BoundingBox(0.0, 0.0, 97.3, 61.7), 128, 81);
  Rng rng(0xAB1E);
  for (int round = 0; round < 200; ++round) {
    geometry::Triangle tri;
    tri.a = {rng.NextDouble(-10.0, 107.0), rng.NextDouble(-10.0, 70.0)};
    tri.b = {rng.NextDouble(-10.0, 107.0), rng.NextDouble(-10.0, 70.0)};
    tri.c = {rng.NextDouble(-10.0, 107.0), rng.NextDouble(-10.0, 70.0)};
    const std::vector<std::uint64_t> reference =
        TiledPixels(vp, tri, SimdLevel::kOff);
    for (const SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(TiledPixels(vp, tri, level), reference)
          << SimdLevelName(level) << " round=" << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Morton-ordered splats are bit-identical to row-ordered splats.
// ---------------------------------------------------------------------------

template <typename T>
void ExpectBuffersBitEqual(const Buffer2D<T>& a, const Buffer2D<T>& b) {
  ASSERT_EQ(a.data().size(), b.data().size());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    using Bits = std::conditional_t<sizeof(T) == 8, std::uint64_t,
                                    std::uint32_t>;
    EXPECT_EQ(std::bit_cast<Bits>(a.data()[i]),
              std::bit_cast<Bits>(b.data()[i]))
        << "pixel " << i;
  }
}

TEST(MortonSplat, PerPixelAggregatesBitIdenticalPerBlendOp) {
  const Viewport vp = LatticeCanvas(64, 64);
  Rng rng(0x2024);
  const std::size_t n = 20000;
  std::vector<float> xs(n);
  std::vector<float> ys(n);
  std::vector<float> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(rng.NextDouble(-2.0, 66.0));
    ys[i] = static_cast<float>(rng.NextDouble(-2.0, 66.0));
    weights[i] = static_cast<float>(rng.NextDouble(-10.0, 10.0));
  }
  const MortonSplatOrder order =
      MortonSplatOrder::Build(vp, xs.data(), ys.data(), n);
  ASSERT_TRUE(order.enabled());
  ASSERT_EQ(order.size(), n);
  std::vector<std::uint32_t> indices(n);
  ComputeSplatIndices(vp, order.xs().data(), order.ys().data(), n,
                      indices.data());

  {  // kAdd, double targets: the order-sensitive case.
    Buffer2D<double> row_order(64, 64, 0.0);
    SplatPoints(vp, xs.data(), ys.data(), n, BlendOp::kAdd,
                [&](std::size_t i) { return static_cast<double>(weights[i]); },
                row_order);
    Buffer2D<double> morton(64, 64, 0.0);
    SplatIndexed(indices.data(), n, BlendOp::kAdd,
                 [&](std::size_t k) {
                   return static_cast<double>(weights[order.ids()[k]]);
                 },
                 morton);
    ExpectBuffersBitEqual(row_order, morton);
  }
  for (const BlendOp op : {BlendOp::kMin, BlendOp::kMax}) {
    const float identity = op == BlendOp::kMin
                               ? std::numeric_limits<float>::infinity()
                               : -std::numeric_limits<float>::infinity();
    Buffer2D<float> row_order(64, 64, identity);
    SplatPoints(vp, xs.data(), ys.data(), n, op,
                [&](std::size_t i) { return weights[i]; }, row_order);
    Buffer2D<float> morton(64, 64, identity);
    SplatIndexed(indices.data(), n, op,
                 [&](std::size_t k) { return weights[order.ids()[k]]; },
                 morton);
    ExpectBuffersBitEqual(row_order, morton);
  }
}

// ---------------------------------------------------------------------------
// BlendOp::kReplace cannot be splatted in parallel — hard error.
// ---------------------------------------------------------------------------

using ParallelSplatDeathTest = ::testing::Test;

TEST(ParallelSplatDeathTest, ReplaceWithPartitionsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Viewport vp = LatticeCanvas(8, 8);
  std::vector<float> xs(16, 1.5f);
  std::vector<float> ys(16, 2.5f);
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        SplatParallelism par;
        par.pool = &pool;
        par.min_points = 0;
        Buffer2D<float> target(8, 8, 0.0f);
        ParallelSplatPoints(par, vp, xs.data(), ys.data(), xs.size(),
                            BlendOp::kReplace,
                            [](std::size_t) { return 1.0f; }, target);
      },
      "kReplace");
}

TEST(ParallelSplatDeathTest, ReplaceSerialStillWorks) {
  // The guard rejects parallel kReplace only; the serial path (no pool)
  // keeps its historical behavior.
  const Viewport vp = LatticeCanvas(8, 8);
  std::vector<float> xs = {1.5f, 1.5f};
  std::vector<float> ys = {2.5f, 2.5f};
  Buffer2D<float> target(8, 8, 0.0f);
  const std::size_t hits = ParallelSplatPoints(
      SplatParallelism(), vp, xs.data(), ys.data(), xs.size(),
      BlendOp::kReplace, [](std::size_t i) { return 3.0f + i; }, target);
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(target.at(1, 2), 4.0f);  // last write wins
}

}  // namespace
}  // namespace urbane::raster
