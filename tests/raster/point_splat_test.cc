#include "raster/point_splat.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/random.h"

namespace urbane::raster {
namespace {

using geometry::BoundingBox;

TEST(SplatPointsTest, CountsLandInRightPixels) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  const std::vector<float> xs = {0.5f, 0.6f, 9.9f};
  const std::vector<float> ys = {0.5f, 0.4f, 9.9f};
  Buffer2D<std::uint32_t> counts(10, 10, 0);
  const std::size_t hits =
      SplatPoints(vp, xs.data(), ys.data(), xs.size(), BlendOp::kAdd,
                  [](std::size_t) { return 1u; }, counts);
  EXPECT_EQ(hits, 3u);
  EXPECT_EQ(counts.at(0, 0), 2u);
  EXPECT_EQ(counts.at(9, 9), 1u);
}

TEST(SplatPointsTest, OutOfBoundsSkipped) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  const std::vector<float> xs = {-1.0f, 11.0f, 5.0f};
  const std::vector<float> ys = {5.0f, 5.0f, 5.0f};
  Buffer2D<std::uint32_t> counts(10, 10, 0);
  const std::size_t hits =
      SplatPoints(vp, xs.data(), ys.data(), xs.size(), BlendOp::kAdd,
                  [](std::size_t) { return 1u; }, counts);
  EXPECT_EQ(hits, 1u);
}

TEST(SplatPointsTest, WeightedSum) {
  const Viewport vp(BoundingBox(0, 0, 4, 4), 4, 4);
  const std::vector<float> xs = {1.5f, 1.5f};
  const std::vector<float> ys = {1.5f, 1.5f};
  const std::vector<float> weights = {2.5f, 4.0f};
  Buffer2D<float> sums(4, 4, 0.0f);
  SplatPoints(vp, xs.data(), ys.data(), xs.size(), BlendOp::kAdd,
              [&](std::size_t i) { return weights[i]; }, sums);
  EXPECT_FLOAT_EQ(sums.at(1, 1), 6.5f);
}

TEST(SplatPointsTest, MinMaxBlending) {
  const Viewport vp(BoundingBox(0, 0, 4, 4), 4, 4);
  const std::vector<float> xs = {0.5f, 0.5f, 0.5f};
  const std::vector<float> ys = {0.5f, 0.5f, 0.5f};
  const std::vector<float> v = {3.0f, -1.0f, 2.0f};
  Buffer2D<float> mins(4, 4, std::numeric_limits<float>::infinity());
  SplatPoints(vp, xs.data(), ys.data(), xs.size(), BlendOp::kMin,
              [&](std::size_t i) { return v[i]; }, mins);
  EXPECT_FLOAT_EQ(mins.at(0, 0), -1.0f);
  Buffer2D<float> maxs(4, 4, -std::numeric_limits<float>::infinity());
  SplatPoints(vp, xs.data(), ys.data(), xs.size(), BlendOp::kMax,
              [&](std::size_t i) { return v[i]; }, maxs);
  EXPECT_FLOAT_EQ(maxs.at(0, 0), 3.0f);
}

TEST(SplatPointsSubsetTest, OnlySubsetSplatted) {
  const Viewport vp(BoundingBox(0, 0, 4, 4), 4, 4);
  const std::vector<float> xs = {0.5f, 1.5f, 2.5f};
  const std::vector<float> ys = {0.5f, 1.5f, 2.5f};
  const std::vector<std::uint32_t> subset = {0, 2};
  Buffer2D<std::uint32_t> counts(4, 4, 0);
  SplatPointsSubset(vp, xs.data(), ys.data(), subset, BlendOp::kAdd,
                    [](std::size_t) { return 1u; }, counts);
  EXPECT_EQ(counts.at(0, 0), 1u);
  EXPECT_EQ(counts.at(1, 1), 0u);
  EXPECT_EQ(counts.at(2, 2), 1u);
}

TEST(SplatPointsTest, TotalMassConserved) {
  Rng rng(66);
  const std::size_t n = 20000;
  std::vector<float> xs(n);
  std::vector<float> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(rng.NextDouble(0.0, 100.0));
    ys[i] = static_cast<float>(rng.NextDouble(0.0, 100.0));
  }
  const Viewport vp(BoundingBox(0, 0, 100.0001, 100.0001), 37, 53);
  Buffer2D<std::uint32_t> counts(37, 53, 0);
  const std::size_t hits =
      SplatPoints(vp, xs.data(), ys.data(), n, BlendOp::kAdd,
                  [](std::size_t) { return 1u; }, counts);
  EXPECT_EQ(hits, n);
  const std::uint64_t total = std::accumulate(
      counts.data().begin(), counts.data().end(), std::uint64_t{0});
  EXPECT_EQ(total, n);
}

TEST(ParallelSplatTest, MatchesSerialSplat) {
  Rng rng(13);
  const std::size_t n = 1 << 17;  // above the parallel threshold
  std::vector<float> xs(n);
  std::vector<float> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(rng.NextDouble(0.0, 50.0));
    ys[i] = static_cast<float>(rng.NextDouble(0.0, 50.0));
  }
  const Viewport vp(BoundingBox(0, 0, 50.001, 50.001), 64, 64);
  Buffer2D<std::uint32_t> serial(64, 64, 0);
  SplatPoints(vp, xs.data(), ys.data(), n, BlendOp::kAdd,
              [](std::size_t) { return 1u; }, serial);
  ThreadPool pool(4);
  Buffer2D<std::uint32_t> parallel(64, 64, 0);
  const std::size_t hits = ParallelSplatPoints(
      &pool, vp, xs.data(), ys.data(), n, BlendOp::kAdd,
      [](std::size_t) { return 1u; }, parallel);
  EXPECT_EQ(hits, n);
  EXPECT_EQ(serial.data(), parallel.data());
}

}  // namespace
}  // namespace urbane::raster
