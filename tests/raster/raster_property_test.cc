// Parameterized property sweeps over the rasterizer invariants that the
// raster-join correctness proof rests on, across canvas resolutions,
// polygon complexities and world offsets.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "geometry/clip.h"
#include "raster/rasterizer.h"
#include "testing/test_worlds.h"
#include "util/random.h"

namespace urbane::raster {
namespace {

struct SweepConfig {
  int resolution;
  std::size_t vertices;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepConfig& c) {
    return os << "res" << c.resolution << "_v" << c.vertices << "_s"
              << c.seed;
  }
};

class RasterPropertyTest : public ::testing::TestWithParam<SweepConfig> {
 protected:
  geometry::Polygon MakePolygon() const {
    Rng rng(GetParam().seed);
    return urbane::testing::RandomStarPolygon(
        rng, {50.0 + rng.NextDouble(-10, 10), 50.0 + rng.NextDouble(-10, 10)},
        rng.NextDouble(15.0, 35.0), GetParam().vertices);
  }
  Viewport MakeVp() const {
    return Viewport(geometry::BoundingBox(0, 0, 100, 100),
                    GetParam().resolution, GetParam().resolution);
  }
};

TEST_P(RasterPropertyTest, ScanlineMatchesPointInPolygonOracle) {
  const geometry::Polygon poly = MakePolygon();
  const Viewport vp = MakeVp();
  std::set<std::pair<int, int>> covered;
  ScanlineFillPolygonPixels(vp, poly,
                            [&](int x, int y) { covered.insert({x, y}); });
  // Oracle check on a sample grid (full grid at high res is too slow).
  const int step = std::max(1, vp.width() / 64);
  for (int y = 0; y < vp.height(); y += step) {
    for (int x = 0; x < vp.width(); x += step) {
      EXPECT_EQ(covered.count({x, y}) > 0,
                geometry::RingContains(poly.outer(), vp.PixelCenter(x, y)))
          << "pixel " << x << "," << y;
    }
  }
}

TEST_P(RasterPropertyTest, TrianglePipelineCoversSamePixels) {
  const geometry::Polygon poly = MakePolygon();
  const Viewport vp = MakeVp();
  std::set<std::pair<int, int>> scanline;
  ScanlineFillPolygonPixels(vp, poly,
                            [&](int x, int y) { scanline.insert({x, y}); });
  std::set<std::pair<int, int>> triangles;
  ASSERT_TRUE(RasterizePolygonTriangles(vp, poly, [&](int x, int y) {
    EXPECT_TRUE(triangles.insert({x, y}).second)
        << "double cover at " << x << "," << y;
  }));
  EXPECT_EQ(scanline, triangles);
}

TEST_P(RasterPropertyTest, NonBoundaryCoveredCellsAreFullyInside) {
  const geometry::Polygon poly = MakePolygon();
  const Viewport vp = MakeVp();
  std::set<std::pair<int, int>> boundary;
  RasterizePolygonBoundary(vp, poly,
                           [&](int x, int y) { boundary.insert({x, y}); });
  std::size_t checked = 0;
  ScanlineFillPolygonPixels(vp, poly, [&](int x, int y) {
    if (boundary.count({x, y}) != 0 || (checked++ % 17) != 0) {
      return;  // sample every 17th interior pixel
    }
    EXPECT_TRUE(geometry::PolygonContainsBox(poly, vp.PixelCell(x, y)))
        << "interior cell not fully inside at " << x << "," << y;
  });
}

TEST_P(RasterPropertyTest, CoveredAreaApproximatesPolygonArea) {
  const geometry::Polygon poly = MakePolygon();
  const Viewport vp = MakeVp();
  std::size_t covered = 0;
  ScanlineFillPolygon(vp, poly, [&](int, int x0, int x1) {
    covered += static_cast<std::size_t>(x1 - x0);
  });
  const double pixel_area = vp.pixel_width() * vp.pixel_height();
  const double raster_area = static_cast<double>(covered) * pixel_area;
  // Discretization error is O(perimeter * pixel size).
  const double slack =
      poly.Perimeter() * std::max(vp.pixel_width(), vp.pixel_height()) +
      4 * pixel_area;
  EXPECT_NEAR(raster_area, poly.Area(), slack);
}

TEST_P(RasterPropertyTest, HolePunchedPolygonMatchesContainsOracle) {
  Rng rng(GetParam().seed ^ 0xD00D);
  geometry::Polygon poly = MakePolygon();
  // Punch a hole around the centroid, small enough to stay interior.
  const geometry::Vec2 c = poly.Centroid();
  poly.add_hole(urbane::testing::RandomStarPolygon(rng, c, 4.0, 8).outer());
  poly.Normalize();
  const Viewport vp = MakeVp();
  std::set<std::pair<int, int>> covered;
  ScanlineFillPolygonPixels(vp, poly,
                            [&](int x, int y) { covered.insert({x, y}); });
  const int step = std::max(1, vp.width() / 48);
  for (int y = 0; y < vp.height(); y += step) {
    for (int x = 0; x < vp.width(); x += step) {
      const geometry::Vec2 center = vp.PixelCenter(x, y);
      const bool oracle =
          geometry::RingContains(poly.outer(), center) &&
          !geometry::RingContains(poly.holes()[0], center);
      // Boundary-coincident centers are measure-zero for these random
      // polygons; compare the crossing-rule semantics directly.
      EXPECT_EQ(covered.count({x, y}) > 0, oracle)
          << "hole mismatch at " << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RasterPropertyTest,
    ::testing::Values(SweepConfig{16, 6, 1}, SweepConfig{16, 40, 2},
                      SweepConfig{64, 6, 3}, SweepConfig{64, 40, 4},
                      SweepConfig{64, 200, 5}, SweepConfig{256, 12, 6},
                      SweepConfig{256, 80, 7}, SweepConfig{512, 30, 8},
                      SweepConfig{512, 300, 9}, SweepConfig{1024, 64, 10}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
}  // namespace urbane::raster
