#include "raster/font.h"

#include <gtest/gtest.h>

namespace urbane::raster {
namespace {

int CountColoredPixels(const Image& image, const Rgb& color) {
  int count = 0;
  for (const Rgb& pixel : image.data()) {
    if (pixel == color) ++count;
  }
  return count;
}

TEST(TextWidthTest, ScalesWithLengthAndScale) {
  EXPECT_EQ(TextWidth(""), 0);
  EXPECT_EQ(TextWidth("A"), kGlyphWidth);
  EXPECT_EQ(TextWidth("AB"), 2 * (kGlyphWidth + 1) - 1);
  EXPECT_EQ(TextWidth("A", 2), 2 * kGlyphWidth);
  EXPECT_EQ(TextHeight(), kGlyphHeight);
  EXPECT_EQ(TextHeight(3), 3 * kGlyphHeight);
}

TEST(DrawTextTest, RendersVisiblePixels) {
  Image image(64, 16, Rgb{0, 0, 0});
  const Rgb white{255, 255, 255};
  const int end_x = DrawText(image, 2, 12, "ABC", white);
  EXPECT_GT(end_x, 2);
  EXPECT_GT(CountColoredPixels(image, white), 20);
}

TEST(DrawTextTest, LowercaseRendersAsUppercase) {
  Image upper(32, 16, Rgb{0, 0, 0});
  Image lower(32, 16, Rgb{0, 0, 0});
  const Rgb white{255, 255, 255};
  DrawText(upper, 1, 12, "XYZ", white);
  DrawText(lower, 1, 12, "xyz", white);
  EXPECT_EQ(upper.data(), lower.data());
}

TEST(DrawTextTest, UnknownGlyphFallsBackToQuestionMark) {
  Image a(32, 16, Rgb{0, 0, 0});
  Image b(32, 16, Rgb{0, 0, 0});
  const Rgb white{255, 255, 255};
  DrawText(a, 1, 12, "@", white);  // not in the font
  DrawText(b, 1, 12, "?", white);
  EXPECT_EQ(a.data(), b.data());
}

TEST(DrawTextTest, ClipsAtImageEdges) {
  Image image(10, 5, Rgb{0, 0, 0});
  const Rgb white{255, 255, 255};
  // Mostly off-screen; must not crash, may draw a few pixels.
  DrawText(image, -3, 20, "HELLO WORLD", white);
  DrawText(image, 8, 2, "XX", white);
  SUCCEED();
}

TEST(DrawTextTest, ScaleEnlargesGlyphs) {
  Image small(64, 32, Rgb{0, 0, 0});
  Image large(64, 32, Rgb{0, 0, 0});
  const Rgb white{255, 255, 255};
  DrawText(small, 2, 28, "A", white, 1);
  DrawText(large, 2, 28, "A", white, 2);
  EXPECT_NEAR(CountColoredPixels(large, white),
              4 * CountColoredPixels(small, white), 1);
}

TEST(DrawTextTest, DigitsAndPunctuationRender) {
  Image image(200, 16, Rgb{0, 0, 0});
  const Rgb white{255, 255, 255};
  DrawText(image, 1, 12, "0123456789.-+:%()/<>=_',", white);
  EXPECT_GT(CountColoredPixels(image, white), 100);
}

TEST(DrawLegendBarTest, BarAndLabelsRendered) {
  Image image(300, 60, Rgb{0, 0, 0});
  const Colormap cm = Colormap::Make(ColormapKind::kViridis);
  DrawLegendBar(image, 10, 20, 150, 8, cm, "0", "42K", "PICKUPS",
                Rgb{255, 255, 255});
  // Bar endpoints carry the colormap's endpoint colors.
  EXPECT_EQ(image.at(10, 24), cm.Map(0.0));
  EXPECT_EQ(image.at(159, 24), cm.Map(1.0));
  // Labels and title appear.
  EXPECT_GT(CountColoredPixels(image, Rgb{255, 255, 255}), 30);
}

}  // namespace
}  // namespace urbane::raster
