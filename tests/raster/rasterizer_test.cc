#include "raster/rasterizer.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "geometry/clip.h"
#include "util/random.h"

namespace urbane::raster {
namespace {

using geometry::BoundingBox;
using geometry::Polygon;
using geometry::Ring;
using geometry::Triangle;
using geometry::Vec2;

using PixelSet = std::set<std::pair<int, int>>;

PixelSet TrianglePixels(const Viewport& vp, const Triangle& t) {
  PixelSet out;
  RasterizeTriangle(vp, t, [&](int x, int y) {
    const bool inserted = out.insert({x, y}).second;
    EXPECT_TRUE(inserted) << "pixel emitted twice: " << x << "," << y;
  });
  return out;
}

PixelSet PolygonScanPixels(const Viewport& vp, const Polygon& p) {
  PixelSet out;
  ScanlineFillPolygonPixels(vp, p, [&](int x, int y) {
    const bool inserted = out.insert({x, y}).second;
    EXPECT_TRUE(inserted) << "pixel emitted twice: " << x << "," << y;
  });
  return out;
}

PixelSet PolygonTrianglePixels(const Viewport& vp, const Polygon& p) {
  PixelSet out;
  EXPECT_TRUE(RasterizePolygonTriangles(vp, p, [&](int x, int y) {
    const bool inserted = out.insert({x, y}).second;
    EXPECT_TRUE(inserted)
        << "triangles double-covered pixel " << x << "," << y;
  }));
  return out;
}

TEST(RasterizeTriangleTest, CoversInteriorPixelCenters) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  // Big triangle covering lower-left half.
  const Triangle t{{0, 0}, {10, 0}, {0, 10}};
  const PixelSet pixels = TrianglePixels(vp, t);
  EXPECT_TRUE(pixels.count({0, 0}));
  EXPECT_TRUE(pixels.count({4, 4}));
  EXPECT_FALSE(pixels.count({9, 9}));
  // Diagonal pixel centers (x+0.5)+(y+0.5)=10 are exactly on the hypotenuse;
  // the tie rule assigns them to exactly one side, so the full square's two
  // halves partition: checked in SharedEdgePartition below.
}

TEST(RasterizeTriangleTest, DegenerateEmitsNothing) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  EXPECT_TRUE(TrianglePixels(vp, {{1, 1}, {5, 5}, {9, 9}}).empty());
  EXPECT_TRUE(TrianglePixels(vp, {{1, 1}, {1, 1}, {1, 1}}).empty());
}

TEST(RasterizeTriangleTest, WindingOrderIrrelevant) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 20, 20);
  const Triangle ccw{{1, 1}, {8, 2}, {4, 9}};
  const Triangle cw{{1, 1}, {4, 9}, {8, 2}};
  EXPECT_EQ(TrianglePixels(vp, ccw), TrianglePixels(vp, cw));
}

TEST(RasterizeTriangleTest, SharedEdgePartition) {
  // Two triangles forming a square: every covered pixel must be covered by
  // exactly one triangle (GPU watertight-fill rule).
  const Viewport vp(BoundingBox(0, 0, 8, 8), 8, 8);
  const Triangle lower{{0, 0}, {8, 0}, {8, 8}};
  const Triangle upper{{0, 0}, {8, 8}, {0, 8}};
  const PixelSet a = TrianglePixels(vp, lower);
  const PixelSet b = TrianglePixels(vp, upper);
  PixelSet unioned = a;
  unioned.insert(b.begin(), b.end());
  EXPECT_EQ(unioned.size(), a.size() + b.size()) << "shared edge double-covered";
  EXPECT_EQ(unioned.size(), 64u) << "square not fully covered";
}

TEST(RasterizeTriangleTest, OffscreenTriangleClipped) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  EXPECT_TRUE(TrianglePixels(vp, {{20, 20}, {30, 20}, {25, 30}}).empty());
  // Partially offscreen: only in-bounds pixels.
  const PixelSet pixels = TrianglePixels(vp, {{-5, -5}, {5, -5}, {0, 5}});
  for (const auto& [x, y] : pixels) {
    EXPECT_TRUE(vp.PixelInBounds(x, y));
  }
  EXPECT_FALSE(pixels.empty());
}

TEST(ScanlineFillTest, RectangleCoversExpectedPixels) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  // Rectangle [2, 5] x [3, 6] in world coords: pixel centers inside are
  // x in {2.5, 3.5, 4.5}, y in {3.5, 4.5, 5.5}.
  const Polygon rect(Ring{{2, 3}, {5, 3}, {5, 6}, {2, 6}});
  const PixelSet pixels = PolygonScanPixels(vp, rect);
  EXPECT_EQ(pixels.size(), 9u);
  EXPECT_TRUE(pixels.count({2, 3}));
  EXPECT_TRUE(pixels.count({4, 5}));
  EXPECT_FALSE(pixels.count({5, 3}));
}

TEST(ScanlineFillTest, HoleExcluded) {
  const Viewport vp(BoundingBox(0, 0, 16, 16), 16, 16);
  Polygon p(Ring{{1, 1}, {15, 1}, {15, 15}, {1, 15}});
  p.add_hole(Ring{{6, 6}, {10, 6}, {10, 10}, {6, 10}});
  p.Normalize();
  const PixelSet pixels = PolygonScanPixels(vp, p);
  EXPECT_TRUE(pixels.count({3, 3}));
  EXPECT_FALSE(pixels.count({8, 8}));  // inside the hole
  EXPECT_TRUE(pixels.count({12, 8}));
}

TEST(ScanlineFillTest, MatchesPointInPolygonOracle) {
  Rng rng(2025);
  for (int trial = 0; trial < 10; ++trial) {
    Ring ring;
    const int n = 5 + static_cast<int>(rng.NextUint64(10));
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n;
      const double radius = rng.NextDouble(2.0, 7.0);
      // Irrational-ish offsets avoid pixel centers landing exactly on edges.
      ring.push_back({8.01 + radius * std::cos(angle) + 0.003 * trial,
                      7.98 + radius * std::sin(angle)});
    }
    const Polygon poly(ring);
    const Viewport vp(BoundingBox(0, 0, 16, 16), 64, 64);
    const PixelSet pixels = PolygonScanPixels(vp, poly);
    for (int y = 0; y < vp.height(); ++y) {
      for (int x = 0; x < vp.width(); ++x) {
        EXPECT_EQ(pixels.count({x, y}) > 0,
                  geometry::RingContains(ring, vp.PixelCenter(x, y)))
            << "mismatch at " << x << "," << y << " trial " << trial;
      }
    }
  }
}

TEST(ScanlineVsTrianglePipelineTest, IdenticalPixelSets) {
  Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    Ring ring;
    const int n = 5 + static_cast<int>(rng.NextUint64(14));
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * M_PI * i / n;
      const double radius = rng.NextDouble(2.0, 7.3);
      ring.push_back({8.013 + radius * std::cos(angle),
                      8.027 + radius * std::sin(angle)});
    }
    const Polygon poly(ring);
    const Viewport vp(BoundingBox(0, 0, 16, 16), 48, 48);
    EXPECT_EQ(PolygonScanPixels(vp, poly), PolygonTrianglePixels(vp, poly))
        << "trial " << trial;
  }
}

TEST(SegmentConservativeTest, HorizontalSegmentMarksRow) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  PixelSet pixels;
  RasterizeSegmentConservative(vp, {1.5, 4.5}, {7.5, 4.5},
                               [&](int x, int y) { pixels.insert({x, y}); });
  for (int x = 1; x <= 7; ++x) {
    EXPECT_TRUE(pixels.count({x, 4})) << x;
  }
  EXPECT_FALSE(pixels.count({0, 4}));
  EXPECT_FALSE(pixels.count({8, 4}));
}

TEST(SegmentConservativeTest, VerticalSegmentMarksColumn) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  PixelSet pixels;
  RasterizeSegmentConservative(vp, {3.5, 1.5}, {3.5, 8.5},
                               [&](int x, int y) { pixels.insert({x, y}); });
  for (int y = 1; y <= 8; ++y) {
    EXPECT_TRUE(pixels.count({3, y})) << y;
  }
}

TEST(SegmentConservativeTest, NeverMissesCellsTouchedByDiagonal) {
  // Conservativeness: every cell whose closed box the segment intersects
  // must be emitted.
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 a{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    const Vec2 b{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    PixelSet pixels;
    RasterizeSegmentConservative(vp, a, b,
                                 [&](int x, int y) { pixels.insert({x, y}); });
    for (int y = 0; y < 10; ++y) {
      for (int x = 0; x < 10; ++x) {
        if (geometry::SegmentIntersectsBox(vp.PixelCell(x, y), a, b)) {
          EXPECT_TRUE(pixels.count({x, y}))
              << "missed cell " << x << "," << y << " for segment " << a
              << "-" << b;
        }
      }
    }
  }
}

TEST(SegmentConservativeTest, OffscreenSegmentEmitsNothing) {
  const Viewport vp(BoundingBox(0, 0, 10, 10), 10, 10);
  int count = 0;
  RasterizeSegmentConservative(vp, {20, 20}, {30, 30},
                               [&](int, int) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(PolygonBoundaryTest, SeparatesInteriorFromBoundary) {
  const Viewport vp(BoundingBox(0, 0, 16, 16), 16, 16);
  const Polygon rect(Ring{{2.5, 2.5}, {13.5, 2.5}, {13.5, 13.5}, {2.5, 13.5}});
  PixelSet boundary;
  RasterizePolygonBoundary(vp, rect,
                           [&](int x, int y) { boundary.insert({x, y}); });
  // Interior pixel well away from edges is not boundary.
  EXPECT_FALSE(boundary.count({8, 8}));
  // A pixel the edge passes through is boundary.
  EXPECT_TRUE(boundary.count({2, 8}));
  EXPECT_TRUE(boundary.count({8, 2}));
  // Conservative guarantee: every non-boundary covered pixel's cell is fully
  // inside the polygon.
  const PixelSet covered = PolygonScanPixels(vp, rect);
  for (const auto& [x, y] : covered) {
    if (boundary.count({x, y})) continue;
    const BoundingBox cell = vp.PixelCell(x, y);
    EXPECT_TRUE(geometry::PolygonContainsBox(rect, cell))
        << "non-boundary covered cell not fully inside at " << x << "," << y;
  }
}

}  // namespace
}  // namespace urbane::raster
