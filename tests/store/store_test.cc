// UST1 block store: round trip, streaming writer, zone-map fidelity, block
// cache pin/unpin/eviction (including concurrent access — run under TSan),
// and prune-aware cursor iteration.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "store/block_cache.h"
#include "store/block_cursor.h"
#include "store/store_reader.h"
#include "store/store_writer.h"
#include "testing/test_worlds.h"
#include "util/random.h"

namespace urbane::store {
namespace {

using Row = std::tuple<float, float, std::int64_t, float>;

std::vector<Row> SortedRows(const data::PointTable& table) {
  std::vector<Row> rows;
  rows.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    rows.emplace_back(table.x(i), table.y(i), table.t(i),
                      table.attribute(i, 0));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string TempStorePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StoreWriterTest, RoundTripPreservesRowMultiset) {
  const data::PointTable table = testing::MakeUniformPoints(5000, 41);
  const std::string path = TempStorePath("roundtrip.ust");
  StoreWriterOptions options;
  options.block_rows = 512;
  auto stats = WritePointStore(table, path, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_written, table.size());
  EXPECT_EQ(stats->blocks_written, (table.size() + 511) / 512);

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->row_count(), table.size());
  EXPECT_EQ(reader->schema(), table.schema());
  auto copy = reader->Materialize();
  ASSERT_TRUE(copy.ok());
  // The writer Morton-permutes rows, so compare as multisets.
  EXPECT_EQ(SortedRows(*copy), SortedRows(table));
  std::remove(path.c_str());
}

TEST(StoreWriterTest, ZoneMapsMatchRecomputedBlockExtents) {
  const data::PointTable table = testing::MakeUniformPoints(3000, 42);
  const std::string path = TempStorePath("zonemaps.ust");
  StoreWriterOptions options;
  options.block_rows = 256;
  ASSERT_TRUE(WritePointStore(table, path, options).ok());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto stored = reader->Materialize();
  ASSERT_TRUE(stored.ok());
  for (const core::BlockZoneMap& zm : reader->zone_maps().blocks()) {
    float min_x = stored->x(zm.row_begin), max_x = min_x;
    float min_y = stored->y(zm.row_begin), max_y = min_y;
    std::int64_t min_t = stored->t(zm.row_begin), max_t = min_t;
    float min_v = stored->attribute(zm.row_begin, 0), max_v = min_v;
    for (std::uint64_t i = zm.row_begin; i < zm.row_end(); ++i) {
      min_x = std::min(min_x, stored->x(i));
      max_x = std::max(max_x, stored->x(i));
      min_y = std::min(min_y, stored->y(i));
      max_y = std::max(max_y, stored->y(i));
      min_t = std::min(min_t, stored->t(i));
      max_t = std::max(max_t, stored->t(i));
      min_v = std::min(min_v, stored->attribute(i, 0));
      max_v = std::max(max_v, stored->attribute(i, 0));
    }
    EXPECT_EQ(zm.min_x, min_x);
    EXPECT_EQ(zm.max_x, max_x);
    EXPECT_EQ(zm.min_y, min_y);
    EXPECT_EQ(zm.max_y, max_y);
    EXPECT_EQ(zm.min_t, min_t);
    EXPECT_EQ(zm.max_t, max_t);
    EXPECT_EQ(zm.attr_min[0], min_v);
    EXPECT_EQ(zm.attr_max[0], max_v);
  }
  std::remove(path.c_str());
}

TEST(StoreWriterTest, StreamingMultiBatchAppendMatchesOneShot) {
  const data::PointTable table = testing::MakeUniformPoints(4000, 43);
  const std::string path = TempStorePath("streaming.ust");
  StoreWriterOptions options;
  options.block_rows = 300;
  options.sort_batch_rows = 700;  // forces several spill flushes
  auto writer = StoreWriter::Create(path, table.schema(), options);
  ASSERT_TRUE(writer.ok());
  // Feed the table in uneven chunks.
  std::size_t at = 0;
  for (const std::size_t chunk : {100, 900, 1, 1500, 1499}) {
    data::PointTable batch(table.schema());
    for (std::size_t i = 0; i < chunk; ++i, ++at) {
      ASSERT_TRUE(batch
                      .AppendRow(table.x(at), table.y(at), table.t(at),
                                 {table.attribute(at, 0)})
                      .ok());
    }
    ASSERT_TRUE(writer->Append(batch).ok());
  }
  ASSERT_EQ(at, table.size());
  auto stats = writer->Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_written, table.size());

  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto copy = reader->Materialize();
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(SortedRows(*copy), SortedRows(table));
  std::remove(path.c_str());
}

TEST(StoreWriterTest, AbandonedWriterLeavesNoFiles) {
  const std::string path = TempStorePath("abandoned.ust");
  {
    auto writer = StoreWriter::Create(
        path, data::Schema(std::vector<std::string>{"v"}));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(testing::MakeUniformPoints(100, 44)).ok());
    // No Finish: destructor must clean up spills and never publish `path`.
  }
  EXPECT_FALSE(StoreReader::Open(path).ok());
  std::FILE* spill = std::fopen((path + ".col0.tmp").c_str(), "rb");
  EXPECT_EQ(spill, nullptr);
  if (spill != nullptr) std::fclose(spill);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(StoreWriterTest, MisuseIsRejected) {
  const std::string path = TempStorePath("misuse.ust");
  auto writer = StoreWriter::Create(
      path, data::Schema(std::vector<std::string>{"v"}));
  ASSERT_TRUE(writer.ok());
  // Schema mismatch.
  data::PointTable other{data::Schema(std::vector<std::string>{"w"})};
  EXPECT_FALSE(writer->Append(other).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_FALSE(writer->Append(data::PointTable(
                                  data::Schema(std::vector<std::string>{"v"})))
                   .ok());
  EXPECT_FALSE(writer->Finish().ok());
  std::remove(path.c_str());
}

TEST(StoreReaderTest, MappedTableIsZeroCopyWithCachedExtents) {
  const data::PointTable table = testing::MakeUniformPoints(2000, 45);
  const std::string path = TempStorePath("mapped.ust");
  StoreWriterOptions options;
  options.block_rows = 128;
  ASSERT_TRUE(WritePointStore(table, path, options).ok());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader->mapped());
  auto view = reader->MappedTable();
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->is_view());
  EXPECT_EQ(view->size(), table.size());
  auto owned = reader->Materialize();
  ASSERT_TRUE(owned.ok());
  // Cached extents (zone-map union) must be bit-exact with the O(n) scan.
  const auto view_bounds = view->Bounds();
  const auto owned_bounds = owned->Bounds();
  EXPECT_EQ(view_bounds.min_x, owned_bounds.min_x);
  EXPECT_EQ(view_bounds.max_x, owned_bounds.max_x);
  EXPECT_EQ(view_bounds.min_y, owned_bounds.min_y);
  EXPECT_EQ(view_bounds.max_y, owned_bounds.max_y);
  EXPECT_EQ(view->TimeRange(), owned->TimeRange());
  // And the mapped rows themselves are identical.
  for (std::size_t i = 0; i < owned->size(); i += 97) {
    EXPECT_EQ(view->x(i), owned->x(i));
    EXPECT_EQ(view->t(i), owned->t(i));
    EXPECT_EQ(view->attribute(i, 0), owned->attribute(i, 0));
  }
  std::remove(path.c_str());
}

TEST(StoreReaderTest, PreadModeServesBlocksWithoutMapping) {
  const data::PointTable table = testing::MakeUniformPoints(1500, 46);
  const std::string path = TempStorePath("pread.ust");
  StoreWriterOptions options;
  options.block_rows = 200;
  ASSERT_TRUE(WritePointStore(table, path, options).ok());
  StoreReaderOptions read_options;
  read_options.use_mmap = false;
  auto reader = StoreReader::Open(path, read_options);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->mapped());
  EXPECT_FALSE(reader->MappedTable().ok());
  auto copy = reader->Materialize();
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(SortedRows(*copy), SortedRows(table));
  EXPECT_FALSE(reader->ReadBlock(reader->block_count()).ok());
  std::remove(path.c_str());
}

TEST(StoreReaderTest, EmptyStoreRoundTrips) {
  const std::string path = TempStorePath("empty.ust");
  data::PointTable empty{data::Schema(std::vector<std::string>{"v"})};
  ASSERT_TRUE(WritePointStore(empty, path).ok());
  auto reader = StoreReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->row_count(), 0u);
  EXPECT_EQ(reader->block_count(), 0u);
  auto view = reader->MappedTable();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->size(), 0u);
  std::remove(path.c_str());
}

class BlockCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Test-unique filename: ctest runs each TEST_F as its own process
    // against the same TempDir, so a shared name races under -j.
    path_ = ::testing::TempDir() + "/cache_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ust";
    const data::PointTable table = testing::MakeUniformPoints(1000, 47);
    StoreWriterOptions options;
    options.block_rows = 100;  // 10 blocks
    ASSERT_TRUE(WritePointStore(table, path_, options).ok());
    StoreReaderOptions read_options;
    read_options.use_mmap = false;
    auto reader = StoreReader::Open(path_, read_options);
    ASSERT_TRUE(reader.ok());
    reader_ = std::make_unique<StoreReader>(std::move(*reader));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::unique_ptr<StoreReader> reader_;
};

TEST_F(BlockCacheTest, HitsMissesAndEviction) {
  BlockCacheOptions options;
  options.capacity_blocks = 2;
  BlockCache cache(reader_.get(), options);
  { auto p = cache.Pin(0); ASSERT_TRUE(p.ok()); }
  { auto p = cache.Pin(1); ASSERT_TRUE(p.ok()); }
  { auto p = cache.Pin(0); ASSERT_TRUE(p.ok()); }  // hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  { auto p = cache.Pin(2); ASSERT_TRUE(p.ok()); }  // evicts LRU (block 1)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.resident_blocks(), 2u);
  { auto p = cache.Pin(0); ASSERT_TRUE(p.ok()); }  // 0 was MRU: still a hit
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().blocks_read, cache.stats().misses);
}

TEST_F(BlockCacheTest, PinnedBlocksSurviveOverCapacity) {
  BlockCacheOptions options;
  options.capacity_blocks = 1;
  BlockCache cache(reader_.get(), options);
  auto p0_or = cache.Pin(0);
  ASSERT_TRUE(p0_or.ok());
  auto p1_or = cache.Pin(1);
  ASSERT_TRUE(p1_or.ok());
  BlockCache::PinnedBlock p0 = std::move(*p0_or);
  BlockCache::PinnedBlock p1 = std::move(*p1_or);
  // Both pinned: nothing evictable even though capacity is 1.
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.resident_blocks(), 2u);
  const float x0 = p0->xs[0];
  p0 = BlockCache::PinnedBlock();
  p1 = BlockCache::PinnedBlock();
  // Unpinning shrinks back to capacity.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.resident_blocks(), 1u);
  auto again = cache.Pin(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->xs[0], x0);
}

TEST_F(BlockCacheTest, ConcurrentPinsAreCoherent) {
  BlockCacheOptions options;
  options.capacity_blocks = 3;  // smaller than the working set: churn
  BlockCache cache(reader_.get(), options);
  const std::size_t blocks = reader_->block_count();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < 200; ++i) {
        const auto b = static_cast<std::size_t>(
            rng.NextInt(0, static_cast<int>(blocks) - 1));
        auto pinned = cache.Pin(b);
        if (!pinned.ok()) {
          ++failures;
          continue;
        }
        const StoreBlock& block = **pinned;
        if (block.row_begin != b * 100 || block.row_count() == 0) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 200u);
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(BlockCacheTest, CursorPrunesAndVisitsAscending) {
  BlockCache cache(reader_.get());
  // A window covering a corner of the (Morton-clustered) space: some blocks
  // must be pruned, and no matching row may be lost.
  core::FilterSpec filter;
  filter.spatial_window = geometry::BoundingBox(0.0, 0.0, 25.0, 25.0);
  BlockCursor cursor(*reader_, cache, filter);
  EXPECT_EQ(cursor.blocks_total(), reader_->block_count());
  EXPECT_GT(cursor.blocks_pruned(), 0u);

  std::uint64_t visited_rows = 0;
  std::uint64_t matches_in_visited = 0;
  std::uint64_t last_row_begin = 0;
  bool first = true;
  for (; !cursor.Done(); cursor.Advance()) {
    auto pinned = cursor.Pin();
    ASSERT_TRUE(pinned.ok());
    const StoreBlock& block = **pinned;
    if (!first) EXPECT_GT(block.row_begin, last_row_begin);
    first = false;
    last_row_begin = block.row_begin;
    visited_rows += block.row_count();
    for (std::size_t i = 0; i < block.row_count(); ++i) {
      if (block.xs[i] >= 0.0f && block.xs[i] <= 25.0f &&
          block.ys[i] >= 0.0f && block.ys[i] <= 25.0f) {
        ++matches_in_visited;
      }
    }
  }
  // Oracle: count matches over the full table; pruning must not lose any.
  auto all = reader_->Materialize();
  ASSERT_TRUE(all.ok());
  std::uint64_t matches_total = 0;
  for (std::size_t i = 0; i < all->size(); ++i) {
    if (all->x(i) >= 0.0f && all->x(i) <= 25.0f && all->y(i) >= 0.0f &&
        all->y(i) <= 25.0f) {
      ++matches_total;
    }
  }
  EXPECT_EQ(matches_in_visited, matches_total);
  EXPECT_LT(visited_rows, reader_->row_count());
}

}  // namespace
}  // namespace urbane::store
