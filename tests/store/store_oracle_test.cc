// Store-vs-in-memory oracle: every executor x aggregate must produce
// BIT-IDENTICAL results when the points come from disk blocks (mmap view
// with zone-map pruning attached, or the pread streaming scan) instead of
// an owning in-memory table — at 1 and at 4 threads. This is the contract
// that makes the out-of-core path a drop-in substitute: not "close", equal.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/scan_join.h"
#include "core/spatial_aggregation.h"
#include "store/block_cache.h"
#include "store/store_reader.h"
#include "store/store_scan_join.h"
#include "store/store_writer.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::store {
namespace {

struct Oracle {
  std::string path;
  data::RegionSet regions;
  std::unique_ptr<StoreReader> reader;
  data::PointTable view;        // mmap-backed
  data::PointTable materialized;  // owning copy, same row order

  ~Oracle() { std::remove(path.c_str()); }
};

std::unique_ptr<Oracle> MakeOracle(const char* name) {
  auto oracle = std::make_unique<Oracle>();
  oracle->path = ::testing::TempDir() + "/" + name;
  oracle->regions = testing::MakeRandomRegions(10, 0xFEED);
  const data::PointTable table = testing::MakeUniformPoints(20000, 0xBEEF);
  StoreWriterOptions options;
  options.block_rows = 1024;
  EXPECT_TRUE(WritePointStore(table, oracle->path, options).ok());
  auto reader = StoreReader::Open(oracle->path);
  EXPECT_TRUE(reader.ok());
  oracle->reader = std::make_unique<StoreReader>(std::move(*reader));
  auto view = oracle->reader->MappedTable();
  EXPECT_TRUE(view.ok());
  oracle->view = std::move(*view);
  auto owned = oracle->reader->Materialize();
  EXPECT_TRUE(owned.ok());
  oracle->materialized = std::move(*owned);
  return oracle;
}

std::vector<core::AggregateSpec> AllAggregates() {
  return {core::AggregateSpec::Count(), core::AggregateSpec::Sum("v"),
          core::AggregateSpec::Avg("v"), core::AggregateSpec::Min("v"),
          core::AggregateSpec::Max("v")};
}

std::vector<core::FilterSpec> OracleFilters() {
  core::FilterSpec trivial;
  core::FilterSpec window;
  window.spatial_window = geometry::BoundingBox(10.0, 10.0, 35.0, 35.0);
  core::FilterSpec combined;
  combined.spatial_window = geometry::BoundingBox(20.0, 20.0, 80.0, 80.0);
  combined.time_range = core::TimeRange{10000, 50000};
  combined.attribute_ranges.push_back({"v", -5.0, 5.0});
  return {trivial, window, combined};
}

// "Bit-identical" is literal: compare the byte patterns, so two NaNs (AVG
// over an empty region) compare equal while +0.0 vs -0.0 would not.
std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitIdentical(const core::QueryResult& store_result,
                        const core::QueryResult& memory_result,
                        const char* what) {
  ASSERT_EQ(store_result.values.size(), memory_result.values.size()) << what;
  for (std::size_t r = 0; r < store_result.values.size(); ++r) {
    EXPECT_EQ(DoubleBits(store_result.values[r]),
              DoubleBits(memory_result.values[r]))
        << what << " region " << r << ": " << store_result.values[r] << " vs "
        << memory_result.values[r];
    EXPECT_EQ(store_result.counts[r], memory_result.counts[r])
        << what << " region " << r;
  }
}

TEST(StoreOracleTest, EveryMethodAndAggregateBitIdenticalFromDiskBlocks) {
  auto oracle = MakeOracle("oracle_methods.ust");
  ThreadPool pool(4);
  const core::ExecutionMethod methods[] = {
      core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
      core::ExecutionMethod::kBoundedRaster,
      core::ExecutionMethod::kAccurateRaster};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::ExecutionContext exec;
    if (threads > 1) {
      exec.pool = &pool;
      exec.num_threads = threads;
      exec.min_parallel_points = 1;  // 20k rows must actually parallelize
    }
    // The store-backed engine queries the mmap view with zone maps
    // attached; the oracle engine queries an owning copy of the same rows.
    core::SpatialAggregation store_engine(oracle->view, oracle->regions,
                                          core::RasterJoinOptions(),
                                          core::IndexJoinOptions(), exec);
    store_engine.AttachZoneMaps(&oracle->reader->zone_maps());
    core::SpatialAggregation memory_engine(
        oracle->materialized, oracle->regions, core::RasterJoinOptions(),
        core::IndexJoinOptions(), exec);
    for (const core::ExecutionMethod method : methods) {
      for (const core::AggregateSpec& aggregate : AllAggregates()) {
        for (const core::FilterSpec& filter : OracleFilters()) {
          core::AggregationQuery query;
          query.aggregate = aggregate;
          query.filter = filter;
          auto from_store = store_engine.Execute(query, method);
          auto from_memory = memory_engine.Execute(query, method);
          ASSERT_TRUE(from_store.ok()) << from_store.status().ToString();
          ASSERT_TRUE(from_memory.ok()) << from_memory.status().ToString();
          const std::string what =
              std::string(core::ExecutionMethodToString(method)) + "/" +
              core::AggregateKindToString(aggregate.kind) + "/t" +
              std::to_string(threads);
          ExpectBitIdentical(*from_store, *from_memory, what.c_str());
        }
      }
    }
  }
}

TEST(StoreOracleTest, SelectiveFiltersActuallyPruneBlocks) {
  auto oracle = MakeOracle("oracle_prune.ust");
  const auto filters = OracleFilters();
  // The trivial filter prunes nothing; the selective ones must prune.
  const core::PruneResult trivial = oracle->reader->zone_maps().Prune(
      filters[0], oracle->reader->schema());
  EXPECT_EQ(trivial.blocks_pruned, 0u);
  for (std::size_t f = 1; f < filters.size(); ++f) {
    const core::PruneResult prune = oracle->reader->zone_maps().Prune(
        filters[f], oracle->reader->schema());
    EXPECT_GT(prune.blocks_pruned, 0u) << "filter " << f;
    EXPECT_LT(prune.candidates.total_rows(), oracle->reader->row_count())
        << "filter " << f;
  }
}

TEST(StoreOracleTest, StreamingStoreScanMatchesSerialInMemoryScan) {
  auto oracle = MakeOracle("oracle_stream.ust");
  // Re-open in pread mode: the streaming path must not depend on the map.
  StoreReaderOptions read_options;
  read_options.use_mmap = false;
  auto reader = StoreReader::Open(oracle->path, read_options);
  ASSERT_TRUE(reader.ok());
  BlockCacheOptions cache_options;
  cache_options.capacity_blocks = 3;  // much smaller than the block count
  BlockCache cache(&*reader, cache_options);
  auto store_scan = StoreScanJoin::Create(*reader, cache, oracle->regions);
  ASSERT_TRUE(store_scan.ok());
  auto memory_scan =
      core::ScanJoin::Create(oracle->materialized, oracle->regions);
  ASSERT_TRUE(memory_scan.ok());
  for (const core::AggregateSpec& aggregate : AllAggregates()) {
    for (const core::FilterSpec& filter : OracleFilters()) {
      core::AggregationQuery query;
      query.aggregate = aggregate;
      query.filter = filter;
      auto from_store = (*store_scan)->Execute(query);
      core::AggregationQuery direct = query;
      direct.points = &oracle->materialized;
      direct.regions = &oracle->regions;
      auto from_memory = (*memory_scan)->Execute(direct);
      ASSERT_TRUE(from_store.ok()) << from_store.status().ToString();
      ASSERT_TRUE(from_memory.ok()) << from_memory.status().ToString();
      ExpectBitIdentical(*from_store, *from_memory, "store_scan");
      if (!filter.IsTrivial()) {
        EXPECT_GT((*store_scan)->store_stats().blocks_pruned, 0u);
        EXPECT_LT((*store_scan)->store_stats().blocks_scanned,
                  (*store_scan)->store_stats().blocks_total);
      }
    }
  }
}

TEST(StoreOracleTest, ViewBoundsDriveIdenticalCanvases) {
  // Raster executors derive their canvas from Bounds(); the view's cached
  // (zone-map) extents must therefore be bit-exact with the scan, or the
  // raster results above could never match. Check it explicitly so a
  // regression fails here with a readable message.
  auto oracle = MakeOracle("oracle_bounds.ust");
  const geometry::BoundingBox view_bounds = oracle->view.Bounds();
  const geometry::BoundingBox owned_bounds = oracle->materialized.Bounds();
  EXPECT_EQ(view_bounds.min_x, owned_bounds.min_x);
  EXPECT_EQ(view_bounds.min_y, owned_bounds.min_y);
  EXPECT_EQ(view_bounds.max_x, owned_bounds.max_x);
  EXPECT_EQ(view_bounds.max_y, owned_bounds.max_y);
  EXPECT_EQ(oracle->view.TimeRange(), oracle->materialized.TimeRange());
}

}  // namespace
}  // namespace urbane::store
