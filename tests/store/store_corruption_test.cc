// Corrupt-file corpus for the UST1 block store: truncation at every field
// boundary, bad magic / end magic, version skew, oversized counts, and
// zone-map/layout mismatches must all yield a clean IoError naming the
// problem — never UB (this suite is in the sanitizer label so ASan/UBSan
// and TSan builds sweep it too).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "store/format.h"
#include "store/store_reader.h"
#include "store/store_writer.h"
#include "testing/test_worlds.h"
#include "util/csv.h"

namespace urbane::store {
namespace {

std::string WriteSampleStore(const std::string& name, std::size_t rows = 600,
                             std::uint64_t block_rows = 128) {
  const data::PointTable table = testing::MakeUniformPoints(rows, 91);
  const std::string path = ::testing::TempDir() + "/" + name;
  StoreWriterOptions options;
  options.block_rows = block_rows;
  EXPECT_TRUE(WritePointStore(table, path, options).ok());
  return path;
}

std::string ReadAll(const std::string& path) {
  auto content = ReadFileToString(path);
  EXPECT_TRUE(content.ok());
  return content.ok() ? *content : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  ASSERT_TRUE(WriteStringToFile(bytes, path).ok());
}

class StoreTruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(StoreTruncationTest, EveryStrictPrefixRejected) {
  // Parameter-unique filename: ctest runs each instance as its own process
  // against the same TempDir, so a shared name races under -j.
  const std::string path =
      WriteSampleStore("trunc_" + std::to_string(GetParam()) + ".ust");
  const std::string bytes = ReadAll(path);
  const std::size_t keep =
      bytes.size() * static_cast<std::size_t>(GetParam()) / 100;
  WriteAll(path, bytes.substr(0, keep));
  const auto reader = StoreReader::Open(path);
  EXPECT_FALSE(reader.ok()) << "kept " << keep << " of " << bytes.size();
  if (!reader.ok()) {
    EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Fractions, StoreTruncationTest,
                         ::testing::Values(0, 1, 5, 15, 40, 70, 95, 99));

TEST(StoreCorruptionTest, TruncationAtEveryFieldBoundaryOfHeaderAndTrailer) {
  const std::string path = WriteSampleStore("trunc_fields.ust");
  const std::string bytes = ReadAll(path);
  // Header field boundaries: magic, version, row_count, block_rows,
  // block_count, attr_count, name len, name, data_offset; plus trailer
  // boundaries at the end of the file.
  const std::size_t cuts[] = {0,  4,  8,  16, 24,
                              32, 40, 48, 49, bytes.size() - kTrailerBytes,
                              bytes.size() - 4, bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    WriteAll(path, bytes.substr(0, cut));
    const auto reader = StoreReader::Open(path);
    EXPECT_FALSE(reader.ok()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, BadMagicNamesFoundAndExpected) {
  const std::string path = WriteSampleStore("badmagic.ust");
  std::string bytes = ReadAll(path);
  bytes[0] = 'X';
  WriteAll(path, bytes);
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("bad magic"), std::string::npos);
  EXPECT_NE(reader.status().message().find("XST1"), std::string::npos);
  EXPECT_NE(reader.status().message().find("UST1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, BadEndMagicRejected) {
  const std::string path = WriteSampleStore("badend.ust");
  std::string bytes = ReadAll(path);
  bytes[bytes.size() - 1] = '?';
  WriteAll(path, bytes);
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("end magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, VersionSkewRejectedWithActionableMessage) {
  const std::string path = WriteSampleStore("version.ust");
  std::string bytes = ReadAll(path);
  bytes[4] = 9;  // version lives right after the magic
  WriteAll(path, bytes);
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("unsupported store version"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, OversizedRowCountRejectedWithoutAllocation) {
  const std::string path = WriteSampleStore("rowcount.ust");
  std::string bytes = ReadAll(path);
  const std::uint64_t absurd = ~0ULL >> 1;
  std::memcpy(&bytes[8], &absurd, sizeof(absurd));  // row_count field
  WriteAll(path, bytes);
  EXPECT_FALSE(StoreReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, OversizedAttributeNameLengthRejected) {
  const std::string path = WriteSampleStore("namelen.ust");
  std::string bytes = ReadAll(path);
  const std::uint64_t absurd = 1ULL << 50;
  std::memcpy(&bytes[40], &absurd, sizeof(absurd));  // first name length
  WriteAll(path, bytes);
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("count"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, ZoneMapRowCountMismatchRejected) {
  const std::string path = WriteSampleStore("zonemap.ust");
  std::string bytes = ReadAll(path);
  // The trailer's footer_offset locates the first zone-map record; bump its
  // row_count so the blocks no longer tile [0, rows).
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, &bytes[bytes.size() - kTrailerBytes],
              sizeof(footer_offset));
  std::uint64_t zm_rows = 0;
  std::memcpy(&zm_rows, &bytes[footer_offset + 8], sizeof(zm_rows));
  zm_rows += 7;
  std::memcpy(&bytes[footer_offset + 8], &zm_rows, sizeof(zm_rows));
  WriteAll(path, bytes);
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, FooterOffsetMismatchRejected) {
  const std::string path = WriteSampleStore("footer.ust");
  std::string bytes = ReadAll(path);
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, &bytes[bytes.size() - kTrailerBytes],
              sizeof(footer_offset));
  footer_offset += kSectionAlignment;
  std::memcpy(&bytes[bytes.size() - kTrailerBytes], &footer_offset,
              sizeof(footer_offset));
  WriteAll(path, bytes);
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("footer offset"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, HeaderByteFlipSweepNeverCrashes) {
  // Flip every byte of the header region one at a time. Each mutant must
  // either open (flip hit padding or a value-neutral bit... it can't here —
  // every header byte is load-bearing except name characters) or fail with
  // a clean status; either way, touching the data must be safe.
  const std::string path = WriteSampleStore("bitflip.ust", 300, 64);
  const std::string bytes = ReadAll(path);
  const std::size_t header_end = 64;
  for (std::size_t at = 0; at < header_end; ++at) {
    std::string mutant = bytes;
    mutant[at] = static_cast<char>(mutant[at] ^ 0x40);
    WriteAll(path, mutant);
    const auto reader = StoreReader::Open(path);
    if (reader.ok()) {
      const auto copy = reader->Materialize();
      if (copy.ok()) {
        EXPECT_EQ(copy->size(), reader->row_count());
      }
    }
  }
  std::remove(path.c_str());
}

TEST(StoreCorruptionTest, NotAStoreFileRejected) {
  const std::string path = ::testing::TempDir() + "/not_a_store.ust";
  WriteAll(path, "this is not a UST1 file at all");
  const auto reader = StoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(StoreReader::Open(::testing::TempDir() + "/missing.ust").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urbane::store
