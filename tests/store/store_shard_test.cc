// Sharding over the out-of-core store: shard boundaries snap to block
// boundaries (align_rows = block_rows), so a shard is a run of whole
// blocks and composes with zone-map pruning. The cases a cursor can get
// wrong live here: a shard whose blocks are all pruned (empty candidate
// set), a shard holding exactly one block, and more shards than blocks
// (trailing empty shards). Every one must merge to the serial answer.
#include <gtest/gtest.h>

#include <cstdio>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/scan_join.h"
#include "core/spatial_aggregation.h"
#include "shard/sharded_executor.h"
#include "store/store_reader.h"
#include "store/store_writer.h"
#include "testing/test_worlds.h"
#include "util/thread_pool.h"

namespace urbane::store {
namespace {

struct ShardStore {
  std::string path;
  data::RegionSet regions;
  std::unique_ptr<StoreReader> reader;
  data::PointTable view;  // mmap-backed

  ~ShardStore() { std::remove(path.c_str()); }
};

// Dyadic attribute values (k/256) keep every double sum exact, so the
// sharded float SUM/AVG is literally bit-identical to serial — the same
// trick the in-memory oracle uses, now over disk blocks.
std::unique_ptr<ShardStore> MakeShardStore(const std::string& name,
                                           std::uint64_t block_rows = 1024) {
  auto store = std::make_unique<ShardStore>();
  store->path = ::testing::TempDir() + "/" + name;
  store->regions = testing::MakeRandomRegions(6, 0x51AB);
  const data::PointTable table = testing::MakeDyadicPoints(10000, 0xB10C);
  StoreWriterOptions options;
  options.block_rows = block_rows;
  EXPECT_TRUE(WritePointStore(table, store->path, options).ok());
  auto reader = StoreReader::Open(store->path);
  EXPECT_TRUE(reader.ok());
  store->reader = std::make_unique<StoreReader>(std::move(*reader));
  auto view = store->reader->MappedTable();
  EXPECT_TRUE(view.ok());
  store->view = std::move(*view);
  return store;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectBitIdentical(const core::QueryResult& sharded,
                        const core::QueryResult& serial,
                        const std::string& what) {
  ASSERT_EQ(sharded.size(), serial.size()) << what;
  for (std::size_t r = 0; r < serial.size(); ++r) {
    const bool both_nan =
        std::isnan(sharded.values[r]) && std::isnan(serial.values[r]);
    EXPECT_TRUE(both_nan ||
                DoubleBits(sharded.values[r]) == DoubleBits(serial.values[r]))
        << what << " region " << r;
    EXPECT_EQ(sharded.counts[r], serial.counts[r]) << what << " region " << r;
  }
}

TEST(StoreShardTest, BlockAlignedShardsMatchSerialOnStoreView) {
  auto store = MakeShardStore("shard_aligned.ust");
  const std::uint64_t block_rows =
      store->reader->zone_maps().blocks().front().row_count;
  ThreadPool pool(4);
  auto serial = core::ScanJoin::Create(store->view, store->regions);
  ASSERT_TRUE(serial.ok());

  for (const std::size_t m : {2u, 4u, 8u}) {
    shard::ShardedExecutorOptions options;
    options.num_shards = m;
    options.align_rows = block_rows;
    options.pool = &pool;
    auto sharded = shard::ShardedExecutor::Create(
        store->view, store->regions, core::ExecutionMethod::kScan, options);
    ASSERT_TRUE(sharded.ok());
    for (const core::AggregateSpec& aggregate :
         {core::AggregateSpec::Count(), core::AggregateSpec::Sum("v"),
          core::AggregateSpec::Avg("v"), core::AggregateSpec::Min("v")}) {
      core::AggregationQuery query;
      query.points = &store->view;
      query.regions = &store->regions;
      query.aggregate = aggregate;
      auto sharded_result = (*sharded)->Execute(query);
      auto serial_result = (*serial)->Execute(query);
      ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();
      ASSERT_TRUE(serial_result.ok());
      ExpectBitIdentical(*sharded_result, *serial_result,
                         "m=" + std::to_string(m));
    }
  }
}

TEST(StoreShardTest, ZoneMapPruningCanEmptyAShardEntirely) {
  auto store = MakeShardStore("shard_pruned.ust");
  const std::uint64_t block_rows =
      store->reader->zone_maps().blocks().front().row_count;

  // A tight spatial window: the store is Morton-clustered, so the window's
  // candidate blocks are a small contiguous-ish subset and at least one
  // shard of a 4-way block-aligned split holds NO candidate block — the
  // empty-cursor path.
  core::FilterSpec filter;
  filter.spatial_window = geometry::BoundingBox(5.0, 5.0, 15.0, 15.0);
  const core::PruneResult prune =
      store->reader->zone_maps().Prune(filter, store->reader->schema());
  ASSERT_GT(prune.blocks_pruned, 0u) << "window not selective enough";

  const shard::ShardPlan plan = shard::MakeShardPlan(
      store->reader->row_count(), 4, block_rows);
  bool some_shard_fully_pruned = false;
  for (const core::RowRange& s : plan.shards) {
    if (shard::IntersectCandidates(&prune.candidates, s).empty()) {
      some_shard_fully_pruned = true;
    }
  }
  EXPECT_TRUE(some_shard_fully_pruned)
      << "the test world no longer produces an empty shard; tighten the "
         "window";

  ThreadPool pool(4);
  shard::ShardedExecutorOptions options;
  options.num_shards = 4;
  options.align_rows = block_rows;
  options.pool = &pool;
  auto sharded = shard::ShardedExecutor::Create(
      store->view, store->regions, core::ExecutionMethod::kScan, options);
  ASSERT_TRUE(sharded.ok());
  auto serial = core::ScanJoin::Create(store->view, store->regions);
  ASSERT_TRUE(serial.ok());

  core::AggregationQuery query;
  query.points = &store->view;
  query.regions = &store->regions;
  query.aggregate = core::AggregateSpec::Avg("v");
  query.filter = filter;
  query.candidate_ranges = &prune.candidates;
  auto sharded_result = (*sharded)->Execute(query);
  auto serial_result = (*serial)->Execute(query);
  ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();
  ASSERT_TRUE(serial_result.ok());
  ExpectBitIdentical(*sharded_result, *serial_result, "pruned shards");
}

TEST(StoreShardTest, OneShardPerBlockAndMoreShardsThanBlocks) {
  // Small store: 10000 rows in 4096-row blocks = 3 blocks. One shard per
  // block exercises the single-block cursor; 8 shards over 3 blocks forces
  // empty trailing shards through the whole scatter-gather path.
  auto store = MakeShardStore("shard_per_block.ust", /*block_rows=*/4096);
  const auto& blocks = store->reader->zone_maps().blocks();
  const std::uint64_t block_rows = blocks.front().row_count;
  ASSERT_GE(blocks.size(), 3u);
  auto serial = core::ScanJoin::Create(store->view, store->regions);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);

  for (const std::size_t m : {blocks.size(), std::size_t{8}}) {
    shard::ShardedExecutorOptions options;
    options.num_shards = m;
    options.align_rows = block_rows;
    options.pool = &pool;
    auto sharded = shard::ShardedExecutor::Create(
        store->view, store->regions, core::ExecutionMethod::kScan, options);
    ASSERT_TRUE(sharded.ok());
    core::AggregationQuery query;
    query.points = &store->view;
    query.regions = &store->regions;
    query.aggregate = core::AggregateSpec::Sum("v");
    auto sharded_result = (*sharded)->Execute(query);
    auto serial_result = (*serial)->Execute(query);
    ASSERT_TRUE(sharded_result.ok()) << sharded_result.status().ToString();
    ASSERT_TRUE(serial_result.ok());
    ExpectBitIdentical(*sharded_result, *serial_result,
                       "m=" + std::to_string(m));
  }
}

TEST(StoreShardTest, FacadeShardsBlockAlignedOverStoreEngine) {
  // The facade path the server uses: engine over the mmap view with zone
  // maps attached, set_num_shards, every method. Results must match the
  // same engine unsharded — pruning, sharding, and the executor zoo all
  // composed.
  auto store = MakeShardStore("shard_facade.ust");
  core::SpatialAggregation engine(store->view, store->regions);
  engine.AttachZoneMaps(&store->reader->zone_maps());

  core::FilterSpec window;
  window.spatial_window = geometry::BoundingBox(10.0, 10.0, 60.0, 60.0);
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Avg("v");
  query.filter = window;

  std::vector<core::QueryResult> unsharded;
  const core::ExecutionMethod methods[] = {
      core::ExecutionMethod::kScan, core::ExecutionMethod::kIndexJoin,
      core::ExecutionMethod::kBoundedRaster,
      core::ExecutionMethod::kAccurateRaster};
  for (const core::ExecutionMethod method : methods) {
    auto result = engine.Execute(query, method);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    unsharded.push_back(std::move(*result));
  }

  engine.set_num_shards(4);
  for (std::size_t i = 0; i < std::size(methods); ++i) {
    auto result = engine.Execute(query, methods[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectBitIdentical(*result, unsharded[i],
                       core::ExecutionMethodToString(methods[i]));
  }
}

}  // namespace
}  // namespace urbane::store
