// urbane_cli — interactive / scriptable shell over the Urbane engine.
//
//   ./build/tools/urbane_cli                 # interactive REPL
//   ./build/tools/urbane_cli -c "gen taxi t 100000; gen regions h neighborhoods; sql SELECT COUNT(*) FROM t, h"
//   ./build/tools/urbane_cli < script.txt    # batch mode
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>

#include "urbane/cli.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  urbane::app::CommandInterpreter interpreter;
  if (argc >= 3 && std::strcmp(argv[1], "-c") == 0) {
    // Semicolon-separated one-shot commands.
    for (const auto command : urbane::SplitString(argv[2], ';')) {
      if (!interpreter.Execute(std::string(command), std::cout)) {
        break;
      }
    }
    return 0;
  }
  if (argc > 1) {
    std::cerr << "usage: urbane_cli [-c \"cmd; cmd; ...\"]\n";
    return 2;
  }
  const bool interactive = isatty(0);
  if (interactive) {
    std::cout << "urbane_cli — type 'help' for commands\n";
  }
  std::string line;
  while ((!interactive || (std::cout << "urbane> " << std::flush)) &&
         std::getline(std::cin, line)) {
    if (!interpreter.Execute(line, std::cout)) {
      break;
    }
  }
  return 0;
}
