#!/usr/bin/env bash
# Sanitizer / quick-check gate (see CONTRIBUTING.md).
#
# Default mode is the TSan gate for the concurrent query path: builds the
# test suite with -DURBANE_SANITIZE=thread and runs the suites that
# exercise cross-thread behavior:
#   * the parallel-executor determinism suite (parallel == serial),
#   * the shared-engine concurrency tests (N sessions on one facade),
#   * the QueryCache unit tests (sharded LRU under mixed traffic),
#   * the facade cache tests (stale-ε regression included),
#   * the obs metrics/trace concurrency tests (threads vs serial oracle),
#   * the telemetry pipeline suites (event-journal MPSC ring producers vs
#     drainer, slow-query recorder, exporter socket round-trip),
#   * the query-server suites (concurrent HTTP round trips, admission
#     control, graceful drain, per-request deadlines) and the net substrate.
# Any data race aborts the run: TSAN_OPTIONS makes warnings fatal.
#
# `--fast` instead builds a plain (unsanitized) tree and runs only the
# suites labeled `fast` in tests/CMakeLists.txt — the seconds-scale
# inner-loop gate.
#
# Usage: tools/check.sh [--fast] [extra ctest args...]
#   BUILD_DIR=build-tsan  override the build directory (build-fast in --fast)
#   JOBS=N                override the build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

MODE=tsan
if [[ "${1:-}" == "--fast" ]]; then
  MODE=fast
  shift
fi

if [[ "${MODE}" == "fast" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-fast}
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}" \
    --target util_test geometry_test raster_test index_test data_test \
             obs_test obs_pipeline_test net_test
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L fast "$@"
  echo "fast check OK"
  exit 0
fi

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "${BUILD_DIR}" -S . \
  -DURBANE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target core_test obs_test obs_pipeline_test net_test server_test

TSAN_OPTIONS="halt_on_error=1 abort_on_error=1${TSAN_OPTIONS:+ ${TSAN_OPTIONS}}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R 'ParallelDeterminism|EngineConcurrency|QueryCache|SpatialAggregation|MetricsConcurrency|ObservabilityDeterminism|EventJournal|SlowQuery|TelemetryExporter|QueryServer|QueryControl|Socket|HttpRequestParser' \
  "$@"

echo "tsan check OK"
