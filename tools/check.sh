#!/usr/bin/env bash
# TSan gate for the concurrent query path (see CONTRIBUTING.md).
#
# Builds the test suite with -DURBANE_SANITIZE=thread and runs the suites
# that exercise cross-thread behavior:
#   * the parallel-executor determinism suite (parallel == serial),
#   * the shared-engine concurrency tests (N sessions on one facade),
#   * the QueryCache unit tests (sharded LRU under mixed traffic),
#   * the facade cache tests (stale-ε regression included).
# Any data race aborts the run: TSAN_OPTIONS makes warnings fatal.
#
# Usage: tools/check.sh [extra ctest args...]
#   BUILD_DIR=build-tsan  override the build directory
#   JOBS=N                override the build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}

cmake -B "${BUILD_DIR}" -S . \
  -DURBANE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target core_test

TSAN_OPTIONS="halt_on_error=1 abort_on_error=1${TSAN_OPTIONS:+ ${TSAN_OPTIONS}}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R 'ParallelDeterminism|EngineConcurrency|QueryCache|SpatialAggregation' \
  "$@"

echo "tsan check OK"
