#!/usr/bin/env bash
# Sanitizer / quick-check gate (see CONTRIBUTING.md).
#
# Default mode is the TSan gate for the concurrent query path: builds the
# test suite with -DURBANE_SANITIZE=thread and runs the suites that
# exercise cross-thread behavior:
#   * the parallel-executor determinism suite (parallel == serial),
#   * the shared-engine concurrency tests (N sessions on one facade),
#   * the QueryCache unit tests (sharded LRU under mixed traffic),
#   * the facade cache tests (stale-ε regression included),
#   * the obs metrics/trace concurrency tests (threads vs serial oracle),
#   * the telemetry pipeline suites (event-journal MPSC ring producers vs
#     drainer, slow-query recorder, exporter socket round-trip),
#   * the query-server suites (concurrent HTTP round trips, admission
#     control, graceful drain, per-request deadlines) and the net substrate,
#   * the block-store suites (`store` label): the BlockCache pin/evict/
#     load-coalescing paths under concurrent readers, plus the corrupt-file
#     corpus so the hardened I/O layer is swept by the sanitizer too,
#   * the sharded scatter-gather suites (`shard` label): the shard-merge
#     oracle across pool sizes, the adversarial completion-order
#     interleaving harness, fault injection, and the facade/server
#     surfaces — per-shard slot publication and the Batch::Wait fence are
#     exactly the kind of contract TSan can falsify.
# Any data race aborts the run: TSAN_OPTIONS makes warnings fatal.
#
# `--fast` instead builds a plain (unsanitized) tree and runs only the
# suites labeled `fast` in tests/CMakeLists.txt — the seconds-scale
# inner-loop gate. The fast gate then re-runs the `simd` label (kernel
# tables, tiled rasterizer, raster-executor bit-identity) once per
# URBANE_SIMD level — off, sse2 and, when the CPU has it, avx2 — so every
# dispatchable code path is exercised even though `auto` would pick only
# the widest one. Levels the CPU lacks clamp down, so the loop is safe on
# any machine.
#
# The TSan job pins URBANE_SIMD=off: the sanitizer gate is about
# cross-thread interleavings, which are identical at every level by the
# bit-identity contract, and the scalar path keeps the instrumented build
# debuggable.
#
# Usage: tools/check.sh [--fast] [extra ctest args...]
#   BUILD_DIR=build-tsan  override the build directory (build-fast in --fast)
#   JOBS=N                override the build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

MODE=tsan
if [[ "${1:-}" == "--fast" ]]; then
  MODE=fast
  shift
fi

if [[ "${MODE}" == "fast" ]]; then
  BUILD_DIR=${BUILD_DIR:-build-fast}
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}" \
    --target util_test geometry_test raster_test simd_test index_test \
             data_test obs_test obs_pipeline_test net_test store_test \
             shard_unit_test shard_test server_shard_test \
             profile_test server_profile_test \
             ingest_unit_test ingest_test server_ingest_test
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L fast "$@"
  # The full shard conformance gate (oracle, property, interleave, fault,
  # store/server surfaces) — slow-labeled suites included on purpose: the
  # merge contract is this repo's current frontier.
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L shard "$@"
  # The query-profile gate (DESIGN.md §12): traceparent corpus, profile
  # goldens, and the HTTP propagation suite (slow-labeled, so -L fast
  # above does not already cover all of it).
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L profile "$@"
  # The streaming-ingest gate (DESIGN.md §13): WAL corruption corpus,
  # LiveTable recovery, the ingest-equivalence oracle (every lifecycle
  # stage bit-identical to a stop-the-world rebuild), and the HTTP ingest
  # surface (slow-labeled, so -L fast above does not already cover it).
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -L ingest "$@"
  SIMD_LEVELS="off sse2"
  if grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
    SIMD_LEVELS="${SIMD_LEVELS} avx2"
  fi
  for level in ${SIMD_LEVELS}; do
    echo "== simd suite @ URBANE_SIMD=${level} =="
    URBANE_SIMD="${level}" \
      ctest --test-dir "${BUILD_DIR}" --output-on-failure -L simd "$@"
  done
  echo "fast check OK"
  exit 0
fi

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "${BUILD_DIR}" -S . \
  -DURBANE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target core_test obs_test obs_pipeline_test net_test server_test \
           store_test shard_unit_test shard_test server_shard_test \
           profile_test server_profile_test \
           ingest_unit_test ingest_test server_ingest_test

URBANE_SIMD=off \
TSAN_OPTIONS="halt_on_error=1 abort_on_error=1${TSAN_OPTIONS:+ ${TSAN_OPTIONS}}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -R 'ParallelDeterminism|EngineConcurrency|QueryCache|SpatialAggregation|MetricsConcurrency|ObservabilityDeterminism|EventJournal|SlowQuery|TelemetryExporter|QueryServer|QueryControl|Socket|HttpRequestParser|BlockCache|StoreCorruption|StoreTruncation' \
  "$@"

# The adversarial-interleaving merge suite and the rest of the shard layer
# under TSan: hostile completion orders + instrumented synchronization is
# the strongest check we have that merge-order independence is real.
URBANE_SIMD=off \
TSAN_OPTIONS="halt_on_error=1 abort_on_error=1${TSAN_OPTIONS:+ ${TSAN_OPTIONS}}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L shard "$@"

# The profile plumbing under TSan: per-shard wall/CPU slots are written on
# pool workers and folded on the coordinator after the gather fence, and
# the ProfileStore takes concurrent inserts from server workers — both
# claims the instrumented build should be allowed to falsify.
URBANE_SIMD=off \
TSAN_OPTIONS="halt_on_error=1 abort_on_error=1${TSAN_OPTIONS:+ ${TSAN_OPTIONS}}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L profile "$@"

# The ingest write path under TSan: Append/Flush/Compact race Snapshot and
# the LiveEngine's refresh + scoped cache invalidation; the WAL writer and
# the component-swap publication are exactly the cross-thread contracts an
# instrumented build should be allowed to falsify.
URBANE_SIMD=off \
TSAN_OPTIONS="halt_on_error=1 abort_on_error=1${TSAN_OPTIONS:+ ${TSAN_OPTIONS}}" \
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L ingest "$@"

echo "tsan check OK"
