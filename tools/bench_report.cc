// bench_report — aggregate bench harness JSON snapshots into a single
// BENCH_TRAJECTORY.json and compare against a committed baseline.
//
// Every bench harness run with URBANE_BENCH_CSV set writes a sibling
// `<bench>.json` embedding its result table and the metrics-registry
// snapshot ("urbane.metrics.v1"). This tool collects those files into one
// trajectory document ("urbane.bench_trajectory.v1") with per-histogram
// latency summaries (count/mean/p50/p95/p99), and — when a baseline
// trajectory is given or committed at the default path — prints a
// per-figure latency delta table and exits non-zero if any tracked
// histogram's mean regressed past the threshold.
//
// Usage:
//   bench_report [--dir <dir>] [--out <path>] [--baseline <path>]
//                [--threshold <pct>] [files.json ...]
//
// Defaults: --dir ., --out BENCH_TRAJECTORY.json, --threshold 25,
// --baseline bench/BASELINE_TRAJECTORY.json (compared only if readable).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "data/json.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

using urbane::Status;
using urbane::StatusOr;

struct BenchEntry {
  std::string name;        // bench table name, e.g. "fig8_interactive_session"
  std::string source;      // file the snapshot came from
  double scale = 1.0;
  double threads = 1.0;
  // The bench's result table (verbatim cells). Lets non-histogram results
  // — the load generator's throughput / client-side percentiles — land in
  // the trajectory next to the registry histograms.
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  urbane::obs::MetricsSnapshot metrics;
};

StatusOr<BenchEntry> LoadBenchJson(const std::string& path) {
  URBANE_ASSIGN_OR_RETURN(std::string text, urbane::ReadFileToString(path));
  URBANE_ASSIGN_OR_RETURN(urbane::data::JsonValue root,
                          urbane::data::ParseJson(text));
  if (!root.is_object()) {
    return Status::InvalidArgument(path + ": not a JSON object");
  }
  BenchEntry entry;
  entry.source = path;
  if (const auto* name = root.Find("name"); name != nullptr && name->is_string()) {
    entry.name = name->AsString();
  } else {
    entry.name = std::filesystem::path(path).stem().string();
  }
  if (const auto* scale = root.Find("scale");
      scale != nullptr && scale->is_number()) {
    entry.scale = scale->AsNumber();
  }
  if (const auto* threads = root.Find("threads");
      threads != nullptr && threads->is_number()) {
    entry.threads = threads->AsNumber();
  }
  if (const auto* columns = root.Find("columns");
      columns != nullptr && columns->is_array()) {
    for (const urbane::data::JsonValue& column : columns->AsArray()) {
      if (column.is_string()) entry.columns.push_back(column.AsString());
    }
  }
  if (const auto* rows = root.Find("rows");
      rows != nullptr && rows->is_array()) {
    for (const urbane::data::JsonValue& row : rows->AsArray()) {
      if (!row.is_array()) continue;
      std::vector<std::string> cells;
      for (const urbane::data::JsonValue& cell : row.AsArray()) {
        cells.push_back(cell.is_string() ? cell.AsString() : cell.Dump(-1));
      }
      entry.rows.push_back(std::move(cells));
    }
  }
  const auto* metrics = root.Find("metrics");
  if (metrics == nullptr) {
    return Status::InvalidArgument(path + ": no \"metrics\" snapshot");
  }
  URBANE_ASSIGN_OR_RETURN(entry.metrics,
                          urbane::obs::MetricsSnapshot::FromJson(*metrics));
  return entry;
}

urbane::data::JsonValue TrajectoryJson(const std::vector<BenchEntry>& entries) {
  namespace data = urbane::data;
  data::JsonValue::Object root;
  root.emplace_back("schema", data::JsonValue("urbane.bench_trajectory.v1"));
  data::JsonValue::Array bench_array;
  for (const BenchEntry& entry : entries) {
    data::JsonValue::Object bench;
    bench.emplace_back("name", data::JsonValue(entry.name));
    bench.emplace_back("source", data::JsonValue(entry.source));
    bench.emplace_back("scale", data::JsonValue(entry.scale));
    bench.emplace_back("threads", data::JsonValue(entry.threads));
    data::JsonValue::Array histogram_array;
    for (const urbane::obs::HistogramSnapshot& histogram :
         entry.metrics.histograms) {
      if (histogram.count == 0) continue;
      data::JsonValue::Object summary;
      summary.emplace_back("name", data::JsonValue(histogram.name));
      summary.emplace_back(
          "count", data::JsonValue(static_cast<double>(histogram.count)));
      summary.emplace_back("mean", data::JsonValue(histogram.Mean()));
      summary.emplace_back("p50", data::JsonValue(histogram.Quantile(0.50)));
      summary.emplace_back("p95", data::JsonValue(histogram.Quantile(0.95)));
      summary.emplace_back("p99", data::JsonValue(histogram.Quantile(0.99)));
      histogram_array.emplace_back(std::move(summary));
    }
    bench.emplace_back("histograms",
                       data::JsonValue(std::move(histogram_array)));
    data::JsonValue::Array counter_array;
    for (const urbane::obs::CounterSnapshot& counter : entry.metrics.counters) {
      data::JsonValue::Object one;
      one.emplace_back("name", data::JsonValue(counter.name));
      one.emplace_back("value",
                       data::JsonValue(static_cast<double>(counter.value)));
      counter_array.emplace_back(std::move(one));
    }
    bench.emplace_back("counters", data::JsonValue(std::move(counter_array)));
    if (!entry.rows.empty()) {
      data::JsonValue::Object table;
      data::JsonValue::Array columns;
      for (const std::string& column : entry.columns) {
        columns.emplace_back(column);
      }
      table.emplace_back("columns", data::JsonValue(std::move(columns)));
      data::JsonValue::Array rows;
      for (const auto& row : entry.rows) {
        data::JsonValue::Array cells;
        for (const std::string& cell : row) {
          cells.emplace_back(cell);
        }
        rows.emplace_back(std::move(cells));
      }
      table.emplace_back("rows", data::JsonValue(std::move(rows)));
      bench.emplace_back("table", data::JsonValue(std::move(table)));
    }
    bench_array.emplace_back(std::move(bench));
  }
  root.emplace_back("benches", data::JsonValue(std::move(bench_array)));
  return data::JsonValue(std::move(root));
}

struct BaselineHistogram {
  std::string bench;
  std::string name;
  double mean = 0.0;
  double p99 = 0.0;
};

StatusOr<std::vector<BaselineHistogram>> LoadBaseline(
    const std::string& path) {
  URBANE_ASSIGN_OR_RETURN(std::string text, urbane::ReadFileToString(path));
  URBANE_ASSIGN_OR_RETURN(urbane::data::JsonValue root,
                          urbane::data::ParseJson(text));
  const auto* benches = root.Find("benches");
  if (benches == nullptr || !benches->is_array()) {
    return Status::InvalidArgument(path + ": no \"benches\" array");
  }
  std::vector<BaselineHistogram> out;
  for (const urbane::data::JsonValue& bench : benches->AsArray()) {
    const auto* bench_name = bench.Find("name");
    const auto* histograms = bench.Find("histograms");
    if (bench_name == nullptr || !bench_name->is_string() ||
        histograms == nullptr || !histograms->is_array()) {
      continue;
    }
    for (const urbane::data::JsonValue& histogram : histograms->AsArray()) {
      const auto* name = histogram.Find("name");
      const auto* mean = histogram.Find("mean");
      if (name == nullptr || !name->is_string() || mean == nullptr ||
          !mean->is_number()) {
        continue;
      }
      BaselineHistogram base;
      base.bench = bench_name->AsString();
      base.name = name->AsString();
      base.mean = mean->AsNumber();
      if (const auto* p99 = histogram.Find("p99");
          p99 != nullptr && p99->is_number()) {
        base.p99 = p99->AsNumber();
      }
      out.push_back(std::move(base));
    }
  }
  return out;
}

// fig8 --profile-overhead writes a fig8_profile_overhead table with raw
// totals in the `total_s` column; the on-vs-off delta is the price of
// per-request attribution and is gated here, independent of --threshold:
// profiles must stay (near) free even where latency is allowed to drift.
constexpr double kProfileOverheadGatePct = 2.0;

/// Returns the profile-on overhead percentage from a fig8_profile_overhead
/// entry, or false when the entry/columns are missing or unparsable.
bool ProfileOverheadPct(const BenchEntry& entry, double* pct) {
  const auto column = [&](const char* name) -> int {
    for (std::size_t c = 0; c < entry.columns.size(); ++c) {
      if (entry.columns[c] == name) return static_cast<int>(c);
    }
    return -1;
  };
  const int mode_col = column("profile");
  const int total_col = column("total_s");
  if (mode_col < 0 || total_col < 0) return false;
  double off = 0.0;
  double on = 0.0;
  for (const auto& row : entry.rows) {
    if (static_cast<int>(row.size()) <= std::max(mode_col, total_col)) {
      continue;
    }
    const double total = std::strtod(row[total_col].c_str(), nullptr);
    if (row[mode_col] == "off") off = total;
    if (row[mode_col] == "on") on = total;
  }
  if (off <= 0.0 || on <= 0.0) return false;
  *pct = 100.0 * (on - off) / off;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir <dir>] [--out <path>] [--baseline <path>] "
               "[--threshold <pct>] [files.json ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = ".";
  std::string out_path = "BENCH_TRAJECTORY.json";
  std::string baseline_path = "bench/BASELINE_TRAJECTORY.json";
  bool baseline_explicit = false;
  double threshold_pct = 25.0;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      baseline_explicit = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold_pct = std::strtod(argv[++i], nullptr);
      if (threshold_pct <= 0.0) {
        std::fprintf(stderr, "--threshold expects a positive percentage\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  // No explicit files: sweep the directory for sibling bench snapshots.
  if (files.empty()) {
    std::error_code ec;
    for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
      if (!item.is_regular_file()) continue;
      const std::filesystem::path& path = item.path();
      if (path.extension() != ".json") continue;
      // Skip our own outputs.
      const std::string stem = path.stem().string();
      if (stem == "BENCH_TRAJECTORY" || stem == "BASELINE_TRAJECTORY") {
        continue;
      }
      files.push_back(path.string());
    }
    if (ec) {
      std::fprintf(stderr, "cannot read directory %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(files.begin(), files.end());
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "no bench JSON files found in %s (run a bench with "
                 "URBANE_BENCH_CSV set first)\n",
                 dir.c_str());
    return 2;
  }

  std::vector<BenchEntry> entries;
  for (const std::string& file : files) {
    StatusOr<BenchEntry> entry = LoadBenchJson(file);
    if (!entry.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", file.c_str(),
                   entry.status().ToString().c_str());
      continue;
    }
    entries.push_back(std::move(*entry));
  }
  if (entries.empty()) {
    std::fprintf(stderr, "no parseable bench snapshots\n");
    return 2;
  }
  std::sort(entries.begin(), entries.end(),
            [](const BenchEntry& a, const BenchEntry& b) {
              return a.name < b.name;
            });

  const urbane::data::JsonValue trajectory = TrajectoryJson(entries);
  if (const Status status =
          urbane::WriteStringToFile(trajectory.Dump(2) + "\n", out_path);
      !status.ok()) {
    std::fprintf(stderr, "write %s: %s\n", out_path.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s (%zu benches)\n", out_path.c_str(), entries.size());

  // Profile-overhead gate: applies whenever a fig8 --profile-overhead
  // snapshot is part of the sweep.
  int profile_gate_failures = 0;
  for (const BenchEntry& entry : entries) {
    if (entry.name != "fig8_profile_overhead") continue;
    double pct = 0.0;
    if (!ProfileOverheadPct(entry, &pct)) {
      std::fprintf(stderr, "%s: fig8_profile_overhead table lacks usable "
                           "profile/total_s columns\n",
                   entry.source.c_str());
      ++profile_gate_failures;
      continue;
    }
    const bool failed = pct > kProfileOverheadGatePct;
    if (failed) ++profile_gate_failures;
    std::printf("profile overhead (fig8, on vs off): %+.2f%% "
                "(gate < %.1f%%)%s\n",
                pct, kProfileOverheadGatePct, failed ? "  FAILED" : "");
  }

  // Baseline comparison.
  StatusOr<std::vector<BaselineHistogram>> baseline =
      LoadBaseline(baseline_path);
  if (!baseline.ok()) {
    if (baseline_explicit) {
      std::fprintf(stderr, "baseline %s: %s\n", baseline_path.c_str(),
                   baseline.status().ToString().c_str());
      return 2;
    }
    std::printf("no baseline at %s; skipping regression check\n",
                baseline_path.c_str());
    return profile_gate_failures > 0 ? 1 : 0;
  }

  std::printf("\n%-28s %-34s %12s %12s %8s\n", "bench", "histogram",
              "baseline", "current", "delta");
  int regressions = 0;
  int compared = 0;
  for (const BenchEntry& entry : entries) {
    for (const urbane::obs::HistogramSnapshot& histogram :
         entry.metrics.histograms) {
      if (histogram.count == 0) continue;
      const auto it = std::find_if(
          baseline->begin(), baseline->end(),
          [&](const BaselineHistogram& base) {
            return base.bench == entry.name && base.name == histogram.name;
          });
      if (it == baseline->end() || it->mean <= 0.0) continue;
      ++compared;
      const double mean = histogram.Mean();
      const double delta_pct = 100.0 * (mean - it->mean) / it->mean;
      const bool regressed = delta_pct > threshold_pct;
      if (regressed) ++regressions;
      std::printf("%-28s %-34s %11.4gs %11.4gs %+7.1f%%%s\n",
                  entry.name.c_str(), histogram.name.c_str(), it->mean, mean,
                  delta_pct, regressed ? "  REGRESSED" : "");
    }
  }
  if (compared == 0) {
    std::printf("(no overlapping histograms with the baseline)\n");
    return profile_gate_failures > 0 ? 1 : 0;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "\n%d histogram(s) regressed more than %.1f%% vs %s\n",
                 regressions, threshold_pct, baseline_path.c_str());
    return 1;
  }
  std::printf("\nno regressions beyond %.1f%% vs %s\n", threshold_pct,
              baseline_path.c_str());
  return profile_gate_failures > 0 ? 1 : 0;
}
